"""Command-line interface: ``repro <command> ...`` or ``python -m repro``.

Commands
--------

``validate``  check a data graph against a schema (Definition 2.1)
``satisfiable``  type correctness of a query w.r.t. a schema (Section 3.1)
``check``  partial type checking for a SELECT-variable assignment
``infer``  type inference for the SELECT variables (Section 3.3)
``feedback``  compute the feedback query (Section 4.1)
``evaluate``  run a query on a data graph (Definition 2.3)
``classify``  report the Table-2 cell of a (schema, query) pair
``transform``  apply / type-check a Skolem transformation (Section 4.3)
``dot``  emit Graphviz DOT for a data graph or a schema graph
``diff``  typed change-set + migration compatibility between two schemas
(see ``docs/schema-delta.md``)
``serve``  run the typed-query daemon (see ``docs/service.md``)
``fuzz``  differential-test the decision procedures (see ``docs/testing.md``)
``batch``  run one operation over many NDJSON items, compiling the
schema once (see ``docs/service.md``)
``warm``  pre-bake compiled artifacts for a schema corpus into the
persistent artifact store (see ``docs/architecture.md``)

Schemas may be given as ScmDL text (``--schema``) or as a DTD
(``--dtd``); data graphs as Table-1 text (``--data``) or XML (``--xml``).

Machine use
-----------

Every command takes ``--json``, which replaces the human output with the
same JSON envelope the typed-query service returns (one envelope per
invocation, on stdout).  Exit codes are uniform across commands:

* ``0`` — the question was decided with a positive answer
  (valid / satisfiable / well-typed / results exist);
* ``1`` — decided with a negative answer;
* ``2`` — usage or parse error (bad flags, missing files, syntax errors).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Tuple

from .data import from_xml, parse_data
from .query import evaluate, parse_query, query_to_string
from .schema import find_type_assignment, parse_dtd, parse_schema
from .typing import check_types, classify, infer_types, is_satisfiable

#: The uniform exit codes (mirrored in the envelope ``meta.exit_code``).
EXIT_OK = 0
EXIT_NEGATIVE = 1
EXIT_USAGE = 2

#: A handler's return value: (exit code, JSON-able result payload).
Outcome = Tuple[int, dict]


class UsageError(Exception):
    """A bad invocation: missing inputs, unreadable files, parse errors."""


def _load_schema(args: argparse.Namespace):
    if args.dtd:
        with open(args.dtd) as handle:
            return parse_dtd(handle.read(), wrap=bool(getattr(args, "wrap", False)))
    if args.schema:
        with open(args.schema) as handle:
            return parse_schema(handle.read())
    raise UsageError("provide --schema FILE or --dtd FILE")


def _load_data(args: argparse.Namespace):
    if getattr(args, "xml", None):
        with open(args.xml) as handle:
            return from_xml(handle.read())
    if getattr(args, "data", None):
        with open(args.data) as handle:
            return parse_data(handle.read())
    raise UsageError("provide --data FILE or --xml FILE")


def _load_query(args: argparse.Namespace):
    with open(args.query) as handle:
        return parse_query(handle.read())


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--schema", help="ScmDL schema file")
    parser.add_argument("--dtd", help="DTD file")
    parser.add_argument(
        "--wrap",
        action="store_true",
        help="with --dtd: add the synthetic document root (matches XML input)",
    )


def cmd_validate(args: argparse.Namespace) -> Outcome:
    schema = _load_schema(args)
    graph = _load_data(args)
    assignment = find_type_assignment(graph, schema)
    if assignment is None:
        if not args.json:
            print("INVALID: no type assignment exists")
        return EXIT_NEGATIVE, {"valid": False, "assignment": None}
    if not args.json:
        print("VALID")
        if args.verbose:
            for oid, tid in assignment.items():
                print(f"  {oid}: {tid}")
    return EXIT_OK, {"valid": True, "assignment": dict(assignment)}


def cmd_satisfiable(args: argparse.Namespace) -> Outcome:
    schema = _load_schema(args)
    query = _load_query(args)
    verdict = is_satisfiable(query, schema)
    result: dict = {"satisfiable": verdict}
    if not args.json:
        print("SATISFIABLE" if verdict else "UNSATISFIABLE")
    if verdict and args.witness:
        from .data import data_to_string
        from .typing import WitnessError, find_witness

        try:
            witness = find_witness(query, schema)
        except WitnessError as error:
            result["witness"] = None
            result["witness_error"] = str(error)
            if not args.json:
                print(f"(no witness constructed: {error})")
        else:
            result["witness"] = data_to_string(witness) if witness else None
            if witness is not None and not args.json:
                print("witness instance:")
                print(data_to_string(witness))
    return (EXIT_OK if verdict else EXIT_NEGATIVE), result


def cmd_check(args: argparse.Namespace) -> Outcome:
    schema = _load_schema(args)
    query = _load_query(args)
    try:
        assignment = dict(pair.split("=", 1) for pair in args.assign)
    except ValueError:
        raise UsageError("assignments must be VAR=TYPE pairs") from None
    verdict = check_types(query, schema, assignment)
    if not args.json:
        print("OK" if verdict else "FAIL")
    code = EXIT_OK if verdict else EXIT_NEGATIVE
    return code, {"well_typed": verdict, "total": False}


def cmd_infer(args: argparse.Namespace) -> Outcome:
    schema = _load_schema(args)
    query = _load_query(args)
    results = infer_types(query, schema)
    assignments = [dict(assignment) for assignment in results]
    if not args.json:
        if not results:
            print("(no satisfiable type assignment)")
        for assignment in results:
            rendered = ", ".join(f"{k}={v}" for k, v in assignment.items())
            print(rendered or "(boolean query: satisfiable)")
    code = EXIT_OK if results else EXIT_NEGATIVE
    return code, {"assignments": assignments, "count": len(assignments)}


def cmd_feedback(args: argparse.Namespace) -> Outcome:
    from .apps import UnsatisfiableQueryError, feedback_query

    schema = _load_schema(args)
    query = _load_query(args)
    try:
        tightened = feedback_query(query, schema)
    except UnsatisfiableQueryError as error:
        if not args.json:
            print(f"UNSATISFIABLE: {error}")
        return EXIT_NEGATIVE, {
            "satisfiable": False,
            "query": None,
            "reason": str(error),
        }
    text = query_to_string(tightened)
    if not args.json:
        print(text)
    return EXIT_OK, {"satisfiable": True, "query": text}


def cmd_evaluate(args: argparse.Namespace) -> Outcome:
    graph = _load_data(args)
    query = _load_query(args)
    results = evaluate(query, graph, limit=args.limit)
    if not args.json:
        for binding in results:
            print(", ".join(f"{k}={v}" for k, v in binding.items()) or "(match)")
        print(f"-- {len(results)} result(s)")
    return EXIT_OK, {"bindings": results, "count": len(results)}


def cmd_transform(args: argparse.Namespace) -> Outcome:
    from .apps import check_transformation, infer_output_schema, parse_transform
    from .data import data_to_string
    from .schema import schema_to_string

    with open(args.transform) as handle:
        transform = parse_transform(handle.read())
    if args.infer or args.target:
        schema = _load_schema(args)
    if args.infer:
        inferred = infer_output_schema(transform, schema)
        text = schema_to_string(inferred)
        if not args.json:
            print(text)
        return EXIT_OK, {"schema": text}
    if args.target:
        with open(args.target) as handle:
            target = parse_schema(handle.read())
        verdict = check_transformation(transform, schema, target)
        if not args.json:
            print("OK" if verdict else "FAIL")
        code = EXIT_OK if verdict else EXIT_NEGATIVE
        return code, {"well_typed": verdict}
    graph = _load_data(args)
    text = data_to_string(transform.apply(graph))
    if not args.json:
        print(text)
    return EXIT_OK, {"data": text}


def cmd_dot(args: argparse.Namespace) -> Outcome:
    from .data import graph_to_dot, schema_to_dot

    if args.schema or args.dtd:
        text = schema_to_dot(_load_schema(args))
    elif args.data or args.xml:
        text = graph_to_dot(_load_data(args))
    else:
        raise UsageError("provide --schema/--dtd or --data/--xml")
    if not args.json:
        print(text)
    return EXIT_OK, {"dot": text}


def cmd_classify(args: argparse.Namespace) -> Outcome:
    import dataclasses

    schema = _load_schema(args)
    query = _load_query(args)
    cell = classify(query, schema)
    if not args.json:
        print(f"schema row:    {cell.schema_row}")
        print(f"query column:  {cell.query_column}")
        print(f"prediction:    {cell.combined_complexity}")
        print(f"DTD-:          {cell.schema_is_dtd_minus}")
        print(f"DTD+:          {cell.schema_is_dtd_plus}")
        print(f"join width:    {cell.query_join_width}")
    result = dataclasses.asdict(cell)
    result["polynomial"] = cell.polynomial
    return EXIT_OK, result


def _load_schema_file(path: str, wrap: bool):
    """Parse one schema file; ``*.dtd`` parses as DTD, else ScmDL."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".dtd"):
        return parse_dtd(text, wrap=wrap)
    return parse_schema(text)


def cmd_diff(args: argparse.Namespace) -> Outcome:
    from .engine import Engine
    from .schema import POLICIES, analyze_migration, diff_schemas

    if args.policy not in POLICIES:
        raise UsageError(f"--policy must be one of {POLICIES}, got {args.policy!r}")
    old = _load_schema_file(args.old, wrap=bool(args.wrap))
    new = _load_schema_file(args.new, wrap=bool(args.wrap))

    queries = []
    if args.queries:
        with open(args.queries) as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    item = json.loads(line)
                except ValueError:
                    # Bare query text is accepted alongside NDJSON objects.
                    item = line
                if isinstance(item, dict):
                    item = item.get("query")
                if not isinstance(item, str) or not item.strip():
                    raise UsageError(
                        f"{args.queries}:{line_no}: expected a query string "
                        'or {"query": ...} object'
                    )
                queries.append(item)

    engine_old = Engine(backend=args.backend)
    engine_new = Engine(backend=args.backend)
    delta = diff_schemas(old, new, engine=engine_new)
    report = analyze_migration(
        old,
        new,
        queries=queries,
        policy=args.policy,
        engine_old=engine_old,
        engine_new=engine_new,
        delta=delta,
    )
    # The payload is deliberately backend-free: both automata backends
    # must produce byte-identical envelopes (CI compares them with cmp).
    result = report.to_dict()
    if not args.json:
        print(f"old: {delta.old_fingerprint}")
        print(f"new: {delta.new_fingerprint}")
        print(f"compatibility: {delta.compatibility} (composed: {delta.composed})")
        if delta.identical:
            print("(schemas are identical)")
        for change in delta.changes:
            print(f"  {change.describe()}")
        if report.queries:
            print(f"queries: {report.counts}")
            for query in report.queries:
                print(f"  [{query.status:8s}] {query.query}")
                if query.counterexample:
                    print(f"      counterexample: {' '.join(query.counterexample)}")
        print(f"policy {args.policy}: {'ACCEPT' if report.accepted else 'REJECT'}")
    return (EXIT_OK if report.accepted else EXIT_NEGATIVE), result


def cmd_fuzz(args: argparse.Namespace) -> Outcome:
    from .oracle import SECTIONS, run_fuzz

    sections = None
    if args.sections:
        sections = [name.strip() for name in args.sections.split(",") if name.strip()]
        unknown = [name for name in sections if name not in SECTIONS]
        if unknown:
            raise UsageError(
                f"unknown sections {unknown}; choose from {sorted(SECTIONS)}"
            )
    if args.budget < 1:
        raise UsageError(f"--budget must be positive, got {args.budget}")
    report = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        sections=sections,
        max_len=args.max_len,
        backend=args.backend,
    )
    result = report.to_dict()
    if not args.json:
        print(f"backend: {report.backend}")
        for name in report.sections:
            skipped = report.skipped.get(name, 0)
            note = f" ({skipped} skipped)" if skipped else ""
            print(f"{name}: {report.cases.get(name, 0)} cases{note}")
        if report.ok:
            print(f"OK: no discrepancies (seed={report.seed})")
        else:
            print(f"FOUND {len(report.discrepancies)} discrepancies:")
            for disc in report.discrepancies:
                print(
                    f"  [{disc.section}/{disc.check}] case {disc.case}: "
                    f"{disc.detail}"
                )
                for key, value in disc.inputs.items():
                    print(f"      {key} = {value}")
    return (EXIT_OK if report.ok else EXIT_NEGATIVE), result


def cmd_batch(args: argparse.Namespace) -> Outcome:
    from .batch import BatchPlan, read_ndjson, results_to_ndjson, run_batch

    schema_text = None
    syntax = "scmdl"
    if args.dtd:
        with open(args.dtd) as handle:
            schema_text = handle.read()
        syntax = "dtd"
    elif args.schema:
        with open(args.schema) as handle:
            schema_text = handle.read()
    elif args.operation != "evaluate":
        raise UsageError("provide --schema FILE or --dtd FILE")

    if args.input in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(args.input) as handle:
            text = handle.read()
    items = read_ndjson(text)
    if not items:
        raise UsageError("no items: input must carry one JSON object per line")

    try:
        plan = BatchPlan(
            operation=args.operation,
            items=tuple(items),
            schema_text=schema_text,
            syntax=syntax,
            wrap=bool(args.wrap),
            backend=args.backend,
        )
        outcome = run_batch(
            plan,
            executor=args.executor,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=_resolve_store(args) if args.executor == "process" else None,
        )
    except ValueError as error:
        raise UsageError(str(error)) from None

    ndjson = results_to_ndjson(outcome.results)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(ndjson)
    result: dict = {"summary": outcome.summary}
    if not args.json:
        if not args.output:
            sys.stdout.write(ndjson)
        summary = outcome.summary
        print(
            f"-- {summary['items']} item(s): {summary['ok']} ok, "
            f"{summary['errors']} error(s) in {summary['elapsed_s']}s "
            f"({summary['items_per_s']} items/s, {summary['executor']})",
            file=sys.stderr,
        )
    elif not args.output:
        result["results"] = outcome.results
    code = EXIT_OK if outcome.summary["errors"] == 0 else EXIT_NEGATIVE
    return code, result


def _resolve_store(args: argparse.Namespace, required: bool = False):
    """Build the ArtifactStore named by --cache-dir / $REPRO_CACHE_DIR.

    Returns None when neither names a directory (persistent caching is
    strictly opt-in), unless ``required`` — then it falls back to the
    user-level default cache directory.
    """
    import os as _os

    from .engine import CACHE_DIR_ENV_VAR, ArtifactStore, default_cache_dir

    cache_dir = getattr(args, "cache_dir", None) or _os.environ.get(CACHE_DIR_ENV_VAR)
    if cache_dir is None:
        if not required:
            return None
        cache_dir = default_cache_dir()
    return ArtifactStore(root=cache_dir, backend=getattr(args, "backend", None))


def cmd_warm(args: argparse.Namespace) -> Outcome:
    from .engine import Engine, EngineArtifact
    from .service.registry import prewarm

    store = _resolve_store(args, required=True)
    sources = []  # (label, schema, syntax)
    for path in args.schemas:
        with open(path) as handle:
            text = handle.read()
        if path.endswith(".dtd"):
            sources.append((path, parse_dtd(text, wrap=bool(args.wrap)), "dtd"))
        else:
            sources.append((path, parse_schema(text), "scmdl"))
    if args.generate:
        from .workloads import schema_corpus

        for index, schema in enumerate(schema_corpus(args.generate, seed=args.seed)):
            sources.append((f"generated[{index}]", schema, "scmdl"))
    if not sources:
        raise UsageError("nothing to warm: give schema files and/or --generate N")

    def bake(schema) -> EngineArtifact:
        engine = Engine(backend=args.backend)
        prewarm(schema, engine)
        return EngineArtifact.capture(engine, schema)

    reports = []
    written = hits = nondeterministic = 0
    for label, schema, syntax in sources:
        fingerprint = schema.fingerprint()
        hit = store.get(fingerprint) is not None
        report = {
            "source": label,
            "fingerprint": fingerprint,
            "types": len(list(schema.tids())),
            "outcome": "hit" if hit else "written",
        }
        if hit and not args.check:
            hits += 1
            reports.append(report)
            continue
        artifact = bake(schema)
        data = artifact.to_bytes()
        if args.check:
            # Determinism gate: re-run the whole compile pipeline and
            # require byte-identical pickles.  (Within one process; across
            # processes byte equality additionally needs a pinned
            # PYTHONHASHSEED — frozensets pickle in hash order.)
            deterministic = bake(schema).to_bytes() == data
            report["deterministic"] = deterministic
            if not deterministic:
                nondeterministic += 1
        if hit:
            hits += 1
        else:
            store.put(artifact, syntax=syntax, data=data)
            written += 1
            report["bytes"] = len(data)
            report["entries"] = len(artifact)
        reports.append(report)

    result = {
        "cache_dir": str(store.root),
        "backend": store.backend,
        "schemas_total": len(sources),
        "written": written,
        "hits": hits,
        "checked": bool(args.check),
        "nondeterministic": nondeterministic,
        "schemas": reports,
        "store": store.stats(),
    }
    if not args.json:
        for report in reports:
            extra = ""
            if "deterministic" in report:
                extra = (
                    "  deterministic"
                    if report["deterministic"]
                    else "  NON-DETERMINISTIC"
                )
            print(
                f"{report['outcome']:8s} {report['fingerprint'][:12]} "
                f"({report['types']} types) {report['source']}{extra}"
            )
        print(
            f"-- {len(sources)} schema(s): {written} written, {hits} hit(s) "
            f"in {store.dir}"
        )
        if args.check:
            print(
                f"-- determinism: {nondeterministic} non-deterministic artifact(s)"
            )
    code = EXIT_NEGATIVE if nondeterministic else EXIT_OK
    return code, result


def cmd_serve(args: argparse.Namespace) -> Outcome:
    from .service import SchemaRegistry, ServiceLimits, serve

    limits = ServiceLimits(
        default_deadline_s=args.deadline,
        max_deadline_s=max(args.deadline, args.max_deadline),
        max_body_bytes=args.max_body_bytes,
    )
    if args.workers:
        # Pool mode: each worker builds its own registry over the shared
        # store, so the frontend holds no registry at all.
        from .service.pool import serve_pool

        store = _resolve_store(args)
        serve_pool(
            host=args.host,
            port=args.port,
            workers=args.workers,
            store_dir=store.dir if store is not None else None,
            backend=getattr(args, "backend", None),
            limits=limits,
            max_schemas=args.max_schemas,
        )
        return EXIT_OK, {"served": True}
    store = _resolve_store(args)
    registry = SchemaRegistry(max_schemas=args.max_schemas, store=store)
    if store is not None and not args.json:
        restored = sum(
            1 for entry in registry.entries() if entry.info.get("restored")
        )
        print(
            f"artifact store at {store.dir}: {restored} schema(s) restored",
            file=sys.stderr,
        )
    serve(
        host=args.host,
        port=args.port,
        registry=registry,
        limits=limits,
        verbose=args.verbose,
    )
    return EXIT_OK, {"served": True}


def cmd_replay(args: argparse.Namespace) -> Outcome:
    from .replay import ReplayConfig, SLOSpec, run_replay

    if args.slo_file:
        slo = SLOSpec.from_file(args.slo_file)
    else:
        slo = SLOSpec(
            p95_ms=args.slo_p95_ms,
            p99_ms=args.slo_p99_ms,
            error_rate=args.slo_error_rate,
            min_rps=args.slo_min_rps,
        )
    domains = (
        [name.strip() for name in args.domains.split(",") if name.strip()]
        if args.domains
        else None
    )
    config = ReplayConfig(
        host=args.host,
        port=args.port,
        seed=args.seed,
        duration_s=args.duration,
        mix=args.mix,
        domains=domains,
        concurrency=args.concurrency,
        rate=args.rate,
        scenario=args.scenario,
        slo=slo,
        output=args.output,
    )
    exit_code, report = run_replay(config)
    if not args.json:
        totals = report["totals"]
        print(
            f"replay: {totals['requests']} requests in "
            f"{report['duration_s']}s ({totals['rps']} rps), "
            f"error_rate={totals['error_rate']}, "
            f"5xx={totals['errors_5xx']}, 4xx={totals['errors_4xx']}"
        )
        for endpoint, block in sorted(report["endpoints"].items()):
            latency = block["latency_ms"]
            print(
                f"  {endpoint:<12} n={block['requests']:<6} "
                f"p50={latency['p50']}ms p95={latency['p95']}ms "
                f"p99={latency['p99']}ms max={latency['max']}ms"
            )
        for violation in report["slo"]["violations"]:
            print(
                f"  SLO VIOLATION [{violation['scope']}] "
                f"{violation['metric']}={violation['measured']} "
                f"(bound {violation['threshold']})",
                file=sys.stderr,
            )
        if config.output:
            print(f"report written to {config.output}")
    # The replay gate owns this command's exit semantics: 0 = pass,
    # 1 = degraded (server errors within SLO), 2 = SLO violation.
    return exit_code, report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type inference for queries on semistructured data "
        "(Milo & Suciu, PODS 1999)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the compilation-engine cache counters after the command",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, handler, **kwargs) -> argparse.ArgumentParser:
        sub = commands.add_parser(name, **kwargs)
        sub.add_argument(
            "--json",
            action="store_true",
            help="emit the service's JSON result envelope instead of text",
        )
        sub.set_defaults(handler=handler)
        return sub

    validate = add_command(
        "validate", cmd_validate, help="validate data against a schema"
    )
    _add_schema_options(validate)
    validate.add_argument("--data", help="data graph file (Table-1 syntax)")
    validate.add_argument("--xml", help="XML document file")
    validate.add_argument("--verbose", action="store_true")

    satisfiable = add_command(
        "satisfiable", cmd_satisfiable, help="type correctness of a query"
    )
    _add_schema_options(satisfiable)
    satisfiable.add_argument("query", help="query file")
    satisfiable.add_argument(
        "--witness",
        action="store_true",
        help="also print a conforming witness instance (join-free ordered queries)",
    )

    check = add_command("check", cmd_check, help="partial type checking")
    _add_schema_options(check)
    check.add_argument("query", help="query file")
    check.add_argument(
        "assign", nargs="+", help="assignments VAR=TYPE for SELECT variables"
    )

    infer = add_command(
        "infer", cmd_infer, help="type inference for SELECT variables"
    )
    _add_schema_options(infer)
    infer.add_argument("query", help="query file")

    feedback = add_command(
        "feedback", cmd_feedback, help="compute the feedback query"
    )
    _add_schema_options(feedback)
    feedback.add_argument("query", help="query file")

    evaluate_cmd = add_command("evaluate", cmd_evaluate, help="run a query on data")
    evaluate_cmd.add_argument("query", help="query file")
    evaluate_cmd.add_argument("--data", help="data graph file")
    evaluate_cmd.add_argument("--xml", help="XML document file")
    evaluate_cmd.add_argument("--limit", type=int, default=None)

    transform_cmd = add_command(
        "transform", cmd_transform, help="apply / type-check a Skolem transformation"
    )
    _add_schema_options(transform_cmd)
    transform_cmd.add_argument("transform", help="transformation file (WHERE + CONSTRUCT)")
    transform_cmd.add_argument("--data", help="input data graph to transform")
    transform_cmd.add_argument("--xml", help="input XML document to transform")
    transform_cmd.add_argument(
        "--infer", action="store_true", help="print the inferred output schema"
    )
    transform_cmd.add_argument(
        "--target", help="output schema file to type-check against"
    )

    dot_cmd = add_command(
        "dot", cmd_dot, help="emit Graphviz DOT for data or a schema"
    )
    _add_schema_options(dot_cmd)
    dot_cmd.add_argument("--data", help="data graph file")
    dot_cmd.add_argument("--xml", help="XML document file")

    classify_cmd = add_command(
        "classify", cmd_classify, help="report the Table-2 cell"
    )
    _add_schema_options(classify_cmd)
    classify_cmd.add_argument("query", help="query file")

    diff_cmd = add_command(
        "diff",
        cmd_diff,
        help="typed change-set and migration compatibility between two schemas",
    )
    diff_cmd.add_argument(
        "old", help="current schema file (*.dtd parses as DTD, else ScmDL)"
    )
    diff_cmd.add_argument(
        "new", help="candidate schema file (*.dtd parses as DTD, else ScmDL)"
    )
    diff_cmd.add_argument(
        "--queries",
        default=None,
        help="NDJSON file of registered queries to re-typecheck against both "
        'schemas (bare strings or {"query": ...} objects, one per line)',
    )
    diff_cmd.add_argument(
        "--policy",
        default="compatible",
        help="acceptance policy: any, compatible, or strict (default: compatible)",
    )
    diff_cmd.add_argument(
        "--wrap",
        action="store_true",
        help="for *.dtd inputs: add the synthetic document root",
    )
    diff_cmd.add_argument(
        "--backend",
        choices=("nfa", "compiled"),
        default=None,
        help="automata backend for the analysis engines; the JSON envelope "
        "is byte-identical across backends "
        "(default: REPRO_BACKEND env var, then 'compiled')",
    )

    fuzz_cmd = add_command(
        "fuzz",
        cmd_fuzz,
        help="differential-test the decision procedures against oracles",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0, help="base seed (cases derive from it)"
    )
    fuzz_cmd.add_argument(
        "--budget",
        type=int,
        default=200,
        help="total number of cases, split across sections",
    )
    fuzz_cmd.add_argument(
        "--sections",
        default=None,
        help="comma-separated subset: automata,containment,eval,"
        "conformance,compiled,backend,delta",
    )
    fuzz_cmd.add_argument(
        "--max-len",
        type=int,
        default=None,
        help="word-length bound for the automata/containment/compiled oracles",
    )
    fuzz_cmd.add_argument(
        "--backend",
        choices=("nfa", "compiled"),
        default=None,
        help="automata backend the production procedures run on "
        "(default: REPRO_BACKEND env var, then 'compiled')",
    )

    batch_cmd = add_command(
        "batch",
        cmd_batch,
        help="run one operation over many NDJSON items, compiling the schema once",
    )
    _add_schema_options(batch_cmd)
    batch_cmd.add_argument(
        "operation",
        choices=("conforms", "satisfiable", "check", "infer", "classify", "evaluate"),
        help="the decision procedure to run on every item",
    )
    batch_cmd.add_argument(
        "--input",
        default=None,
        help="NDJSON items file, one JSON object per line (default: stdin)",
    )
    batch_cmd.add_argument(
        "--output",
        default=None,
        help="write per-item NDJSON envelopes here instead of stdout",
    )
    batch_cmd.add_argument(
        "--executor",
        choices=("sequential", "thread", "process"),
        default="thread",
        help="how to fan the items out (default: thread)",
    )
    batch_cmd.add_argument(
        "--workers", type=int, default=None, help="worker threads/processes"
    )
    batch_cmd.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="items per process-pool chunk (default: auto)",
    )
    batch_cmd.add_argument(
        "--backend",
        choices=("nfa", "compiled"),
        default=None,
        help="automata backend for the batch engines "
        "(default: REPRO_BACKEND env var, then 'compiled')",
    )
    batch_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact store; process-pool workers load the "
        "compiled schema from here instead of receiving pickled bytes "
        "(default: $REPRO_CACHE_DIR if set, else disabled)",
    )

    warm_cmd = add_command(
        "warm",
        cmd_warm,
        help="pre-bake compiled artifacts for a schema corpus into the store",
    )
    warm_cmd.add_argument(
        "schemas",
        nargs="*",
        help="schema files (*.dtd parses as DTD, anything else as ScmDL)",
    )
    warm_cmd.add_argument(
        "--generate",
        type=int,
        default=0,
        metavar="N",
        help="also warm N schemas from the deterministic workload corpus",
    )
    warm_cmd.add_argument(
        "--seed", type=int, default=0, help="seed for --generate (default 0)"
    )
    warm_cmd.add_argument(
        "--wrap",
        action="store_true",
        help="for *.dtd inputs: add the synthetic document root",
    )
    warm_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="store directory (default: $REPRO_CACHE_DIR, else ~/.cache/repro)",
    )
    warm_cmd.add_argument(
        "--backend",
        choices=("nfa", "compiled"),
        default=None,
        help="automata backend to bake for "
        "(default: REPRO_BACKEND env var, then 'compiled')",
    )
    warm_cmd.add_argument(
        "--check",
        action="store_true",
        help="re-bake every artifact and fail (exit 1) unless the compile "
        "pipeline is byte-deterministic",
    )

    serve_cmd = add_command(
        "serve", cmd_serve, help="run the typed-query HTTP daemon"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8421)
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool mode: route requests by schema fingerprint to N "
        "persistent worker processes behind an async frontend "
        "(0 = single-process threaded mode)",
    )
    serve_cmd.add_argument(
        "--max-schemas",
        type=int,
        default=64,
        help="LRU bound on resident compiled schemas",
    )
    serve_cmd.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds",
    )
    serve_cmd.add_argument(
        "--max-deadline",
        type=float,
        default=120.0,
        help="largest per-request deadline a client may ask for",
    )
    serve_cmd.add_argument(
        "--max-body-bytes",
        type=int,
        default=1 << 20,
        help="reject request bodies larger than this",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    serve_cmd.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact store: registrations persist compiled "
        "artifacts here and a restarted daemon restores them "
        "(default: $REPRO_CACHE_DIR if set, else disabled)",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=("nfa", "compiled"),
        default=None,
        help="automata backend for the artifact store "
        "(default: REPRO_BACKEND env var, then 'compiled')",
    )

    replay_cmd = add_command(
        "replay",
        cmd_replay,
        help="drive a running daemon with multi-domain traffic and gate "
        "the measured latencies/error rate on SLO thresholds",
    )
    replay_cmd.add_argument("--host", default="127.0.0.1")
    replay_cmd.add_argument("--port", type=int, default=8421)
    replay_cmd.add_argument("--seed", type=int, default=0)
    replay_cmd.add_argument(
        "--duration", type=float, default=10.0, help="run length in seconds"
    )
    replay_cmd.add_argument(
        "--mix",
        default="default",
        help="traffic mix: a preset name or 'op=weight,...' "
        "over satisfiable/check/infer/evaluate/batch",
    )
    replay_cmd.add_argument(
        "--domains",
        default=None,
        help="comma-separated domain names (default: all ten)",
    )
    replay_cmd.add_argument(
        "--concurrency", type=int, default=4, help="worker threads"
    )
    replay_cmd.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop target rps (default: closed loop)",
    )
    replay_cmd.add_argument(
        "--scenario",
        choices=("steady", "cache-pressure"),
        default="steady",
        help="'cache-pressure' registers more schemas than the registry "
        "LRU bound to exercise eviction + artifact-store reload",
    )
    replay_cmd.add_argument(
        "--slo-p95-ms", type=float, default=None, help="per-endpoint p95 bound"
    )
    replay_cmd.add_argument(
        "--slo-p99-ms", type=float, default=None, help="per-endpoint p99 bound"
    )
    replay_cmd.add_argument(
        "--slo-error-rate",
        type=float,
        default=None,
        help="max fraction of 5xx/transport failures",
    )
    replay_cmd.add_argument(
        "--slo-min-rps", type=float, default=None, help="min overall throughput"
    )
    replay_cmd.add_argument(
        "--slo-file",
        default=None,
        help="JSON SLO spec (overrides the --slo-* flags)",
    )
    replay_cmd.add_argument(
        "--output",
        default="BENCH_replay.json",
        help="report path ('' to skip writing)",
    )

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = args.command
    wants_json = bool(getattr(args, "json", False))
    try:
        status, result = args.handler(args)
    except (UsageError, OSError, ValueError, SyntaxError) as error:
        # ValueError/SyntaxError cover every parse error in the package
        # (lexer, schema, DTD, XML, query, data syntax).
        if wants_json:
            from .service.envelope import as_service_error, error_envelope

            envelope = error_envelope(command, as_service_error(error))
            envelope["meta"]["exit_code"] = EXIT_USAGE
            print(json.dumps(envelope, indent=2))
        else:
            print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if wants_json:
        from .service.envelope import ok_envelope

        envelope = ok_envelope(command, result, meta={"exit_code": status})
        print(json.dumps(envelope, indent=2))
    if getattr(args, "cache_stats", False):
        from .engine import get_default_engine

        print(get_default_engine().stats(), file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
