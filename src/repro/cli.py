"""Command-line interface: ``repro <command> ...`` or ``python -m repro``.

Commands
--------

``validate``  check a data graph against a schema (Definition 2.1)
``satisfiable``  type correctness of a query w.r.t. a schema (Section 3.1)
``check``  partial type checking for a SELECT-variable assignment
``infer``  type inference for the SELECT variables (Section 3.3)
``feedback``  compute the feedback query (Section 4.1)
``evaluate``  run a query on a data graph (Definition 2.3)
``classify``  report the Table-2 cell of a (schema, query) pair
``transform``  apply / type-check a Skolem transformation (Section 4.3)
``dot``  emit Graphviz DOT for a data graph or a schema graph

Schemas may be given as ScmDL text (``--schema``) or as a DTD
(``--dtd``); data graphs as Table-1 text (``--data``) or XML (``--xml``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .data import from_xml, parse_data
from .query import evaluate, parse_query, query_to_string
from .schema import find_type_assignment, parse_dtd, parse_schema
from .typing import check_types, classify, infer_types, is_satisfiable


def _load_schema(args: argparse.Namespace):
    if args.dtd:
        with open(args.dtd) as handle:
            return parse_dtd(handle.read(), wrap=bool(getattr(args, "wrap", False)))
    if args.schema:
        with open(args.schema) as handle:
            return parse_schema(handle.read())
    raise SystemExit("provide --schema FILE or --dtd FILE")


def _load_data(args: argparse.Namespace):
    if getattr(args, "xml", None):
        with open(args.xml) as handle:
            return from_xml(handle.read())
    if getattr(args, "data", None):
        with open(args.data) as handle:
            return parse_data(handle.read())
    raise SystemExit("provide --data FILE or --xml FILE")


def _load_query(args: argparse.Namespace):
    with open(args.query) as handle:
        return parse_query(handle.read())


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--schema", help="ScmDL schema file")
    parser.add_argument("--dtd", help="DTD file")
    parser.add_argument(
        "--wrap",
        action="store_true",
        help="with --dtd: add the synthetic document root (matches XML input)",
    )


def cmd_validate(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    graph = _load_data(args)
    assignment = find_type_assignment(graph, schema)
    if assignment is None:
        print("INVALID: no type assignment exists")
        return 1
    print("VALID")
    if args.verbose:
        for oid, tid in assignment.items():
            print(f"  {oid}: {tid}")
    return 0


def cmd_satisfiable(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    query = _load_query(args)
    verdict = is_satisfiable(query, schema)
    print("SATISFIABLE" if verdict else "UNSATISFIABLE")
    if verdict and args.witness:
        from .data import data_to_string
        from .typing import WitnessError, find_witness

        try:
            witness = find_witness(query, schema)
        except WitnessError as error:
            print(f"(no witness constructed: {error})")
        else:
            if witness is not None:
                print("witness instance:")
                print(data_to_string(witness))
    return 0 if verdict else 1


def cmd_check(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    query = _load_query(args)
    assignment = dict(pair.split("=", 1) for pair in args.assign)
    verdict = check_types(query, schema, assignment)
    print("OK" if verdict else "FAIL")
    return 0 if verdict else 1


def cmd_infer(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    query = _load_query(args)
    results = infer_types(query, schema)
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        if not results:
            print("(no satisfiable type assignment)")
        for assignment in results:
            rendered = ", ".join(f"{k}={v}" for k, v in assignment.items())
            print(rendered or "(boolean query: satisfiable)")
    return 0 if results else 1


def cmd_feedback(args: argparse.Namespace) -> int:
    from .apps import UnsatisfiableQueryError, feedback_query

    schema = _load_schema(args)
    query = _load_query(args)
    try:
        tightened = feedback_query(query, schema)
    except UnsatisfiableQueryError as error:
        print(f"UNSATISFIABLE: {error}")
        return 1
    print(query_to_string(tightened))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_data(args)
    query = _load_query(args)
    results = evaluate(query, graph, limit=args.limit)
    for binding in results:
        print(", ".join(f"{k}={v}" for k, v in binding.items()) or "(match)")
    print(f"-- {len(results)} result(s)")
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    from .apps import check_transformation, infer_output_schema, parse_transform
    from .data import data_to_string
    from .schema import schema_to_string

    with open(args.transform) as handle:
        transform = parse_transform(handle.read())
    if args.infer or args.target:
        schema = _load_schema(args)
    if args.infer:
        inferred = infer_output_schema(transform, schema)
        print(schema_to_string(inferred))
        return 0
    if args.target:
        with open(args.target) as handle:
            target = parse_schema(handle.read())
        verdict = check_transformation(transform, schema, target)
        print("OK" if verdict else "FAIL")
        return 0 if verdict else 1
    graph = _load_data(args)
    print(data_to_string(transform.apply(graph)))
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from .data import graph_to_dot, schema_to_dot

    if args.schema or args.dtd:
        print(schema_to_dot(_load_schema(args)))
        return 0
    if args.data or args.xml:
        print(graph_to_dot(_load_data(args)))
        return 0
    raise SystemExit("provide --schema/--dtd or --data/--xml")


def cmd_classify(args: argparse.Namespace) -> int:
    schema = _load_schema(args)
    query = _load_query(args)
    cell = classify(query, schema)
    print(f"schema row:    {cell.schema_row}")
    print(f"query column:  {cell.query_column}")
    print(f"prediction:    {cell.combined_complexity}")
    print(f"DTD-:          {cell.schema_is_dtd_minus}")
    print(f"DTD+:          {cell.schema_is_dtd_plus}")
    print(f"join width:    {cell.query_join_width}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Type inference for queries on semistructured data "
        "(Milo & Suciu, PODS 1999)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the compilation-engine cache counters after the command",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="validate data against a schema")
    _add_schema_options(validate)
    validate.add_argument("--data", help="data graph file (Table-1 syntax)")
    validate.add_argument("--xml", help="XML document file")
    validate.add_argument("--verbose", action="store_true")
    validate.set_defaults(handler=cmd_validate)

    satisfiable = commands.add_parser(
        "satisfiable", help="type correctness of a query"
    )
    _add_schema_options(satisfiable)
    satisfiable.add_argument("query", help="query file")
    satisfiable.add_argument(
        "--witness",
        action="store_true",
        help="also print a conforming witness instance (join-free ordered queries)",
    )
    satisfiable.set_defaults(handler=cmd_satisfiable)

    check = commands.add_parser("check", help="partial type checking")
    _add_schema_options(check)
    check.add_argument("query", help="query file")
    check.add_argument(
        "assign", nargs="+", help="assignments VAR=TYPE for SELECT variables"
    )
    check.set_defaults(handler=cmd_check)

    infer = commands.add_parser("infer", help="type inference for SELECT variables")
    _add_schema_options(infer)
    infer.add_argument("query", help="query file")
    infer.add_argument("--json", action="store_true")
    infer.set_defaults(handler=cmd_infer)

    feedback = commands.add_parser("feedback", help="compute the feedback query")
    _add_schema_options(feedback)
    feedback.add_argument("query", help="query file")
    feedback.set_defaults(handler=cmd_feedback)

    evaluate_cmd = commands.add_parser("evaluate", help="run a query on data")
    evaluate_cmd.add_argument("query", help="query file")
    evaluate_cmd.add_argument("--data", help="data graph file")
    evaluate_cmd.add_argument("--xml", help="XML document file")
    evaluate_cmd.add_argument("--limit", type=int, default=None)
    evaluate_cmd.set_defaults(handler=cmd_evaluate)

    transform_cmd = commands.add_parser(
        "transform", help="apply / type-check a Skolem transformation"
    )
    _add_schema_options(transform_cmd)
    transform_cmd.add_argument("transform", help="transformation file (WHERE + CONSTRUCT)")
    transform_cmd.add_argument("--data", help="input data graph to transform")
    transform_cmd.add_argument("--xml", help="input XML document to transform")
    transform_cmd.add_argument(
        "--infer", action="store_true", help="print the inferred output schema"
    )
    transform_cmd.add_argument(
        "--target", help="output schema file to type-check against"
    )
    transform_cmd.set_defaults(handler=cmd_transform)

    dot_cmd = commands.add_parser("dot", help="emit Graphviz DOT for data or a schema")
    _add_schema_options(dot_cmd)
    dot_cmd.add_argument("--data", help="data graph file")
    dot_cmd.add_argument("--xml", help="XML document file")
    dot_cmd.set_defaults(handler=cmd_dot)

    classify_cmd = commands.add_parser("classify", help="report the Table-2 cell")
    _add_schema_options(classify_cmd)
    classify_cmd.add_argument("query", help="query file")
    classify_cmd.set_defaults(handler=cmd_classify)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    status = args.handler(args)
    if getattr(args, "cache_stats", False):
        from .engine import get_default_engine

        print(get_default_engine().stats(), file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
