"""Shippable compiled artifacts: the engine cache as a pickle payload.

The batch process executor used to ship *schema text* to its workers,
each of which re-parsed and re-compiled every automaton from scratch.
With the compile pipeline (NFA → subset → Hopcroft → tables) the
expensive part of that work is process-independent data: dense integer
transition tables, interned alphabets, schema-graph edge sets.  An
:class:`EngineArtifact` captures exactly those cache entries from a
parent engine and installs them into a fresh worker engine, so workers
start with hot caches instead of cold compilers.

Only *shippable* kinds are captured (:data:`SHIPPABLE_KINDS`): values
that are pure data, identical in any process, and cheap to pickle.
Runner wrappers, reachability objects, and raw NFAs stay behind — they
are either rebuilt trivially or hold process-local references.

The byte format is versioned (:data:`ARTIFACT_VERSION`); a worker
refuses a payload from a different version rather than guessing at its
layout.  Schema fingerprints are recomputed on unpickle (they are a pure
function of the definitions), which is what makes the shipped cache keys
match the keys a worker computes locally.
"""

from __future__ import annotations

import pickle
from typing import Dict, Hashable, Optional

from .core import Engine, resolve_backend

#: Bump when the captured payload layout (or the pickle format of any
#: shipped value type) changes incompatibly.
ARTIFACT_VERSION = 1


class ArtifactError(ValueError):
    """A compiled-artifact payload that cannot be trusted.

    Raised by :meth:`EngineArtifact.from_bytes` for truncated bytes, a
    foreign pickle layout, or a version this process does not speak.  A
    ``ValueError`` subclass, so the CLI maps it to exit 2 and the service
    envelope layer to HTTP 400 without special-casing — a corrupt payload
    is a bad input, never a daemon crash.
    """

#: Cache kinds whose values are process-independent pure data.
SHIPPABLE_KINDS = frozenset(
    {
        "schema-alphabet",
        "inhabited",
        "possible-edges",
        "compiled-path",
        "compiled-content",
        "compiled-content-restricted",
        "compiled-trace",
    }
)


def _shippable(key: Hashable) -> bool:
    return (
        isinstance(key, tuple)
        and bool(key)
        and isinstance(key[0], str)
        and key[0] in SHIPPABLE_KINDS
    )


class EngineArtifact:
    """A schema plus the compiled cache entries derived from it.

    Build with :meth:`capture` in the parent process, move as bytes via
    :meth:`to_bytes` / :meth:`from_bytes`, and :meth:`install` into the
    worker's engine.
    """

    __slots__ = ("backend", "schema", "entries")

    def __init__(self, backend: str, schema, entries: Dict[Hashable, object]):
        self.backend = resolve_backend(backend)
        self.schema = schema
        self.entries = entries

    @classmethod
    def capture(cls, engine: Engine, schema) -> "EngineArtifact":
        """Snapshot the shippable entries currently in ``engine``'s cache.

        Entries are stored in a key-sorted order so that two captures of
        the same compiled state pickle to identical bytes within one
        process, regardless of the order the cache happened to fill in
        (``repro warm --check`` relies on this to verify determinism).
        """
        entries = engine.cache.snapshot(_shippable)
        ordered = {key: entries[key] for key in sorted(entries, key=repr)}
        return cls(engine.backend, schema, ordered)

    def fingerprint(self) -> str:
        """The carried schema's fingerprint (the store's key for us)."""
        return self.schema.fingerprint()

    def install(self, engine: Optional[Engine] = None) -> Engine:
        """Seed the artifact into ``engine`` (a fresh one by default)."""
        if engine is None:
            engine = Engine(backend=self.backend)
        engine.cache.seed(self.entries)
        return engine

    def to_bytes(self) -> bytes:
        return pickle.dumps(
            {
                "version": ARTIFACT_VERSION,
                "backend": self.backend,
                "schema": self.schema,
                "entries": self.entries,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EngineArtifact":
        """Rebuild an artifact from bytes, refusing anything suspect.

        Raises:
            ArtifactError: on a truncated or otherwise unpicklable
                payload, a payload of the wrong shape, or a version this
                process does not speak.  Never lets a raw ``pickle`` /
                ``KeyError`` escape: corrupt bytes are a *diagnosed*
                rejection, not a stack trace.
        """
        try:
            payload = pickle.loads(data)
        except Exception as error:  # pickle raises a small zoo of types
            raise ArtifactError(
                f"engine artifact payload is corrupt or truncated "
                f"({type(error).__name__}: {error})"
            ) from None
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"engine artifact payload has the wrong shape "
                f"(expected a dict, got {type(payload).__name__})"
            )
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"engine artifact version mismatch: payload says {version!r}, "
                f"this process speaks {ARTIFACT_VERSION}"
            )
        from ..schema.model import Schema  # lazy: schema imports automata

        try:
            backend = payload["backend"]
            schema = payload["schema"]
            entries = payload["entries"]
        except KeyError as error:
            raise ArtifactError(
                f"engine artifact payload is missing field {error}"
            ) from None
        if not isinstance(schema, Schema):
            raise ArtifactError(
                f"engine artifact schema field holds "
                f"{type(schema).__name__}, not a Schema"
            )
        if not isinstance(entries, dict):
            raise ArtifactError(
                f"engine artifact entries field holds "
                f"{type(entries).__name__}, not a dict"
            )
        try:
            return cls(backend, schema, entries)
        except Exception as error:  # resolve_backend: unknown backend
            raise ArtifactError(str(error)) from None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"EngineArtifact(backend={self.backend!r}, "
            f"schema={self.schema.root!r}, entries={len(self.entries)})"
        )


def prewarm_schema(engine: Engine, schema) -> None:
    """Compile everything schema-derived that workers will need.

    Forces the schema graph, the inhabited set, and — on the compiled
    backend — the content tables of every collection type, so a
    subsequent :meth:`EngineArtifact.capture` has the full per-schema
    working set to ship.
    """
    engine.symbol_alphabet(schema)
    engine.inhabited_types(schema)
    engine.possible_edges(schema)
    for type_def in schema:
        if type_def.is_atomic:
            continue
        if engine.backend == "compiled":
            engine.compiled_content(schema, type_def.tid)
            engine.compiled_restricted_content(schema, type_def.tid)
        else:
            engine.content_nfa(schema, type_def.tid)
            engine.restricted_content_nfa(schema, type_def.tid)
