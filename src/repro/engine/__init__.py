"""The shared compilation engine (see ``docs/architecture.md``).

Hash-consed regexes (:mod:`repro.automata.syntax`) and schema
fingerprints (:meth:`repro.schema.model.Schema.fingerprint`) give every
automata construction a cheap, stable cache key; :class:`Engine` memoizes
the constructions behind those keys in a bounded, instrumented
:class:`EngineCache`.  Every layer of the package accepts an optional
``engine=`` handle and falls back to the module default returned by
:func:`get_default_engine`.
"""

from .artifact import ARTIFACT_VERSION, EngineArtifact, prewarm_schema
from .cache import CacheStats, EngineCache, KindStats
from .core import (
    BACKENDS,
    BACKEND_ENV_VAR,
    Engine,
    get_default_engine,
    resolve_backend,
    set_default_engine,
)

__all__ = [
    "ARTIFACT_VERSION",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "CacheStats",
    "Engine",
    "EngineArtifact",
    "EngineCache",
    "KindStats",
    "get_default_engine",
    "prewarm_schema",
    "resolve_backend",
    "set_default_engine",
]
