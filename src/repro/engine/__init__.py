"""The shared compilation engine (see ``docs/architecture.md``).

Hash-consed regexes (:mod:`repro.automata.syntax`) and schema
fingerprints (:meth:`repro.schema.model.Schema.fingerprint`) give every
automata construction a cheap, stable cache key; :class:`Engine` memoizes
the constructions behind those keys in a bounded, instrumented
:class:`EngineCache`.  Every layer of the package accepts an optional
``engine=`` handle and falls back to the module default returned by
:func:`get_default_engine`.
"""

from .artifact import ARTIFACT_VERSION, ArtifactError, EngineArtifact, prewarm_schema
from .cache import CacheStats, EngineCache, KindStats
from .core import (
    BACKENDS,
    BACKEND_ENV_VAR,
    Engine,
    get_default_engine,
    resolve_backend,
    set_default_engine,
)
from .store import (
    CACHE_DIR_ENV_VAR,
    DEFAULT_MAX_BYTES,
    ArtifactStore,
    default_cache_dir,
    version_tag,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "CACHE_DIR_ENV_VAR",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "Engine",
    "EngineArtifact",
    "EngineCache",
    "KindStats",
    "default_cache_dir",
    "get_default_engine",
    "prewarm_schema",
    "resolve_backend",
    "set_default_engine",
    "version_tag",
]
