"""Persistent fingerprint-keyed store of compiled engine artifacts.

The decision procedures are pure functions of the schema, so their
compiled form (dense transition tables, inhabited sets, schema graphs —
everything an :class:`~repro.engine.EngineArtifact` carries) is cacheable
*forever*: across requests, across daemon restarts, across process-pool
workers.  :class:`ArtifactStore` is that cache's durable tier.

Layout
------

One artifact per registered schema, keyed by the schema fingerprint::

    <cache-dir>/<version-tag>/<backend>/<fingerprint>.art    pickle payload
    <cache-dir>/<version-tag>/<backend>/<fingerprint>.json   index sidecar

The version tag folds together :data:`~repro.automata.compiled.PICKLE_VERSION`,
:data:`~repro.engine.artifact.ARTIFACT_VERSION`, and the library version,
so *invalidation is structural*: a process that speaks a different pickle
layout simply looks in a different directory and never reads a stale
blob.  Opening a store reaps superseded version directories — only
names matching the tag scheme, only versions strictly older than this
process, and only when unused for :data:`SWEEP_GRACE_SECONDS` — and
counts their blobs as invalidations.  Anything else under the cache
root (say, the rest of ``~/.cache`` if the user points the store at a
shared directory) is never touched.

The JSON sidecar records the schema hash, backend, entry count, byte
size, and creation time — enough for ``repro warm`` and ``/stats`` to
describe the store without unpickling anything.

Durability rules
----------------

* **Atomic writes.**  Payloads land via tmp-file + ``os.replace``, so a
  concurrent reader never observes a half-written artifact and two
  processes warming the same schema race benignly (last writer wins with
  byte-identical content).
* **Corruption is a miss, never a crash.**  A truncated, foreign, or
  stale blob bumps the ``corrupt`` counter, is deleted, and reads as a
  miss; the caller recompiles exactly as if the store were cold.
* **Bounded size.**  ``max_bytes`` caps the payload bytes per
  ``<version-tag>/<backend>`` directory; the least-recently-*used*
  artifact (mtime order — hits refresh mtime) is evicted first.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import __version__ as _library_version
from ..automata.compiled import PICKLE_VERSION
from .artifact import ARTIFACT_VERSION, ArtifactError, EngineArtifact
from .core import resolve_backend

#: Environment variable naming the cache directory (CLI/daemon default).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Default size bound per <version>/<backend> directory (payload bytes).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Version directories used within this window are never swept, so an
#: older-version process sharing the cache root keeps its artifacts.
SWEEP_GRACE_SECONDS = 24 * 60 * 60

#: The only directory names the sweeper will ever touch.  Anything else
#: under the cache root — a user's unrelated data if they point
#: ``$REPRO_CACHE_DIR`` at a shared directory like ``~/.cache`` — is not
#: ours and must never be deleted.
_TAG_RE = re.compile(r"^pickle(\d+)-art(\d+)-lib(.+)$")


def _tag_sort_key(name: str) -> Optional[Tuple]:
    """A comparable version key for a tag-shaped directory name.

    Returns None for names that don't follow the version-tag scheme.
    Library version parts compare numerically where they are numeric
    (``lib1.10.0`` > ``lib1.9.0``) and lexically otherwise, with every
    non-numeric part ordering after every numeric one so mixed tags
    still compare deterministically.
    """
    match = _TAG_RE.match(name)
    if match is None:
        return None
    lib = tuple(
        (0, int(part), "") if part.isdigit() else (1, 0, part)
        for part in match.group(3).split(".")
    )
    return (int(match.group(1)), int(match.group(2)), lib)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def version_tag() -> str:
    """The directory name under which this process's artifacts live."""
    return f"pickle{PICKLE_VERSION}-art{ARTIFACT_VERSION}-lib{_library_version}"


class ArtifactStore:
    """A bounded, versioned, corruption-tolerant on-disk artifact cache.

    Args:
        root: cache directory (default: :func:`default_cache_dir`).
        backend: automata backend whose artifacts this store holds
            (resolved like :class:`~repro.engine.Engine`'s backend).
        max_bytes: payload-byte bound for this store's directory; the
            oldest-mtime artifact is evicted once a put would exceed it.
        sweep_stale: reap superseded version directories at open time
            (tag-named, strictly older, unused past the grace window;
            counted as invalidations).

    Thread-safe: one lock guards the counters and the eviction scan;
    file-level atomicity (``os.replace``) covers cross-process races.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        backend: Optional[str] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        sweep_stale: bool = True,
    ):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root) if root is not None else default_cache_dir()
        self.backend = resolve_backend(backend)
        self.max_bytes = max_bytes
        self.tag = version_tag()
        self.dir = self.root / self.tag / self.backend
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0
        self._evictions = 0
        self._invalidations = 0
        self._deletes = 0
        if sweep_stale:
            self._sweep_stale_versions()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.art"

    def _meta_path(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Versioned invalidation
    # ------------------------------------------------------------------

    def _sweep_stale_versions(self) -> None:
        """Reap version directories superseded by this process's version.

        Every ``.art`` blob removed counts as one invalidation: it was a
        valid artifact under some other pickle/library version, and no
        process of *this* version could ever load it.

        Three guards keep the sweep from destroying anything that is not
        provably ours and dead:

        * only directories *named* like a version tag are candidates —
          a cache root pointed at a shared directory (``~/.cache``) has
          its unrelated subdirectories left strictly alone;
        * only tags strictly *older* than this process's version are
          reaped, so a newer deployment warming the same root is never
          clobbered by an old daemon;
        * a directory used within :data:`SWEEP_GRACE_SECONDS` is kept —
          a still-running older-version process sharing the root keeps
          its artifacts instead of losing them on every open here.
        """
        current = _tag_sort_key(self.tag)
        cutoff = time.time() - SWEEP_GRACE_SECONDS
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        for child in children:
            if child.name == self.tag or not child.is_dir():
                continue
            key = _tag_sort_key(child.name)
            if key is None or current is None or not key < current:
                continue  # not a version dir of ours, or not superseded
            blobs = list(child.glob("*/*.art"))
            try:
                newest = max(
                    [child.stat().st_mtime]
                    + [blob.stat().st_mtime for blob in blobs]
                )
            except OSError:
                continue  # racing its owner; leave it for next time
            if newest > cutoff:
                continue  # recently used — an older version is still live
            stale = len(blobs)
            try:
                shutil.rmtree(child)
            except OSError:
                continue
            with self._lock:
                self._invalidations += stale

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[EngineArtifact]:
        """The stored artifact for ``fingerprint``, or None on a miss.

        A hit refreshes the blob's mtime (the LRU recency signal).  Any
        unreadable, undecodable, or mismatched blob is deleted, counted
        under ``corrupt``, and reported as a miss — the store never
        raises on bad disk state.
        """
        path = self.path_for(fingerprint)
        try:
            data = path.read_bytes()
        except OSError:
            with self._lock:
                self._misses += 1
            return None
        try:
            artifact = EngineArtifact.from_bytes(data)
            if artifact.backend != self.backend:
                raise ArtifactError(
                    f"stored artifact speaks backend {artifact.backend!r}, "
                    f"store expects {self.backend!r}"
                )
            if artifact.fingerprint() != fingerprint:
                raise ArtifactError(
                    f"stored artifact fingerprint {artifact.fingerprint()!r} "
                    f"does not match its key {fingerprint!r}"
                )
        except Exception:
            # ArtifactError covers the diagnosed corruptions, but a blob
            # that unpickles into the right *shape* with wrong field
            # types (a non-Schema ``schema``, say) surfaces as whatever
            # the validation above tripped over — still a miss, never a
            # crash, per the store's contract.
            self._discard(fingerprint)
            with self._lock:
                self._corrupt += 1
                self._misses += 1
            return None
        now = time.time()
        try:
            os.utime(path, (now, now))
        except OSError:
            pass  # recency refresh is best-effort
        with self._lock:
            self._hits += 1
        return artifact

    def contains(self, fingerprint: str) -> bool:
        """Whether a blob exists under this key (no validity check)."""
        return self.path_for(fingerprint).exists()

    def __contains__(self, fingerprint: str) -> bool:
        return self.contains(fingerprint)

    def fingerprints(self) -> List[str]:
        """Stored keys, least-recently-used first (mtime order)."""
        blobs = []
        for path in self.dir.glob("*.art"):
            try:
                blobs.append((path.stat().st_mtime, path.stem))
            except OSError:
                continue  # racing eviction/put
        return [stem for _, stem in sorted(blobs)]

    def __len__(self) -> int:
        return len(list(self.dir.glob("*.art")))

    def meta(self, fingerprint: str) -> Dict[str, object]:
        """The JSON index sidecar for ``fingerprint`` ({} if unreadable)."""
        try:
            payload = json.loads(self._meta_path(fingerprint).read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(
        self,
        artifact: EngineArtifact,
        syntax: str = "scmdl",
        data: Optional[bytes] = None,
    ) -> Path:
        """Persist ``artifact`` atomically; returns the blob path.

        ``data`` lets a caller that already serialized the artifact (for
        a determinism check, say) avoid pickling twice.  The write goes
        tmp-file + ``os.replace`` so readers and racing writers only ever
        observe complete payloads; the sidecar is written after the blob
        (it is advisory — a missing sidecar never blocks a load).
        """
        if artifact.backend != self.backend:
            raise ValueError(
                f"artifact speaks backend {artifact.backend!r}, "
                f"store holds {self.backend!r}"
            )
        fingerprint = artifact.fingerprint()
        payload = data if data is not None else artifact.to_bytes()
        path = self.path_for(fingerprint)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        index = {
            "fingerprint": fingerprint,
            "backend": self.backend,
            "syntax": syntax,
            "schema_root": artifact.schema.root,
            "entries": len(artifact),
            "bytes": len(payload),
            "created_at": time.time(),
            "pickle_version": PICKLE_VERSION,
            "artifact_version": ARTIFACT_VERSION,
            "library_version": _library_version,
        }
        meta_tmp = self._meta_path(fingerprint).with_suffix(f".jtmp-{os.getpid()}")
        meta_tmp.write_text(json.dumps(index, indent=2) + "\n")
        os.replace(meta_tmp, self._meta_path(fingerprint))
        with self._lock:
            self._puts += 1
        self._enforce_bound(keep=fingerprint)
        return path

    def delete(self, fingerprint: str) -> bool:
        """Explicitly drop a stored artifact (schema unregistered/migrated).

        Returns True when a blob existed under the key.  Counted under
        ``deletes`` — distinct from ``evictions`` (LRU bound pressure)
        and ``corrupt`` (failed reads), so ``/stats`` can tell a caller's
        retention decision apart from the store's own housekeeping.
        """
        existed = self.contains(fingerprint)
        self._discard(fingerprint)
        if existed:
            with self._lock:
                self._deletes += 1
        return existed

    def _discard(self, fingerprint: str) -> None:
        for path in (self.path_for(fingerprint), self._meta_path(fingerprint)):
            try:
                path.unlink()
            except OSError:
                pass

    def _enforce_bound(self, keep: Optional[str] = None) -> None:
        """Evict oldest-mtime artifacts until payload bytes fit the bound.

        ``keep`` names a fingerprint that is never evicted — the blob a
        ``put()`` just wrote, so the Path it returns stays valid even
        when that single payload exceeds ``max_bytes`` on its own (the
        bound is then overshot by one artifact rather than lied about
        with a dangling path).
        """
        blobs = []
        total = 0
        for path in self.dir.glob("*.art"):
            try:
                stat = path.stat()
            except OSError:
                continue
            blobs.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        blobs.sort()
        for _, size, path in blobs:
            if total <= self.max_bytes:
                break
            if path.stem == keep:
                continue
            self._discard(path.stem)
            total -= size
            with self._lock:
                self._evictions += 1

    def clear(self) -> int:
        """Drop every artifact in this store's directory; returns the count."""
        dropped = 0
        for path in list(self.dir.glob("*.art")):
            self._discard(path.stem)
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters plus the current on-disk footprint."""
        total = 0
        count = 0
        for path in self.dir.glob("*.art"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        with self._lock:
            return {
                "dir": str(self.dir),
                "backend": self.backend,
                "version_tag": self.tag,
                "artifacts": count,
                "bytes": total,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "corrupt": self._corrupt,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "deletes": self._deletes,
            }

    def __repr__(self) -> str:
        return (
            f"ArtifactStore(dir={str(self.dir)!r}, backend={self.backend!r}, "
            f"artifacts={len(self)})"
        )
