"""The memoizing cache behind the compilation engine.

:class:`EngineCache` is a bounded LRU map from structured keys to computed
artifacts (compiled NFAs, schema graphs, trace products, ...).  Keys are
tuples whose first element is a short *kind* string (``"thompson"``,
``"content-nfa"``, ``"trace-product"``, ...) followed by hashable
ingredients — typically a schema fingerprint and a hash-consed regex.
Hash-consing (:mod:`repro.automata.syntax`) makes regex keys O(1) to hash,
and schema fingerprints (:meth:`repro.schema.model.Schema.fingerprint`)
stand in for whole schemas, so equal inputs share cache lines no matter
which layer asks.

The cache keeps hit/miss/eviction counters, both globally and per kind,
so benchmarks can report speedups honestly (see
``benchmarks/bench_engine_cache.py``).  The LRU bound keeps long-running
processes memory-safe: the default of 4096 entries comfortably holds the
working set of every workload in this repository while bounding worst-case
growth.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple


@dataclass(frozen=True)
class KindStats:
    """Hit/miss counters for one key kind."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of an :class:`EngineCache`'s counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_entries: int
    by_kind: Dict[str, KindStats] = field(default_factory=dict)

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def __str__(self) -> str:
        lines = [
            f"EngineCache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%}), {self.size}/{self.max_entries} entries, "
            f"{self.evictions} evictions"
        ]
        for kind in sorted(self.by_kind):
            stats = self.by_kind[kind]
            lines.append(f"  {kind}: {stats.hits} hits / {stats.misses} misses")
        return "\n".join(lines)


class EngineCache:
    """A bounded, instrumented LRU cache for compiled automata artifacts.

    Args:
        max_entries: LRU bound; the least recently used entry is evicted
            once the cache would exceed it.  ``None`` disables the bound
            (only sensible for short-lived processes and tests).
    """

    def __init__(self, max_entries: Optional[int] = 4096):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._kind_hits: Dict[str, int] = {}
        self._kind_misses: Dict[str, int] = {}
        # Reentrant because compute() callbacks routinely consult the cache
        # under *different* keys (a trace product asking for its component
        # NFAs).  Holding the lock across compute() serializes computation
        # within one cache, which is intentional: it guarantees each key is
        # computed at most once ("single flight") and keeps the LRU and the
        # counters exact under the threaded service, where concurrency comes
        # from the one-engine-per-registered-schema layout rather than from
        # parallel computes inside a single engine.
        self._lock = threading.RLock()

    @staticmethod
    def _kind_of(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return "other"

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Return the cached value for ``key``, computing and storing on miss.

        ``compute`` may itself consult the cache under *different* keys
        (e.g. a trace product computing its component NFAs); re-entrant
        lookups under the same key are the caller's bug, not supported.

        Thread-safe: the cache lock is held for the whole call, including
        ``compute``, so concurrent callers of the same key block until the
        first finishes and then take a hit on the stored value.
        """
        kind = self._kind_of(key)
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
            value = compute()
            self._data[key] = value
            self._data.move_to_end(key)
            if self.max_entries is not None:
                while len(self._data) > self.max_entries:
                    self._data.popitem(last=False)
                    self._evictions += 1
            return value

    def snapshot(self, predicate: Callable[[Hashable], bool]) -> Dict[Hashable, object]:
        """A shallow copy of the entries whose key satisfies ``predicate``.

        Used by :mod:`repro.engine.artifact` to capture shippable compiled
        artifacts; values are shared, not copied — callers must treat them
        as immutable (as all engine artifacts are).
        """
        with self._lock:
            return {key: value for key, value in self._data.items() if predicate(key)}

    def seed(self, entries: Dict[Hashable, object]) -> int:
        """Install precomputed entries; returns how many were new.

        Counters are untouched — seeded entries are not misses (nothing was
        computed here) and not hits (nothing asked yet).  Existing keys win
        over seeded ones, so a live cache is never clobbered.
        """
        with self._lock:
            added = 0
            for key, value in entries.items():
                if key in self._data:
                    continue
                self._data[key] = value
                added += 1
            if self.max_entries is not None:
                while len(self._data) > self.max_entries:
                    self._data.popitem(last=False)
                    self._evictions += 1
            return added

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop all entries (counters are kept; use a new cache to reset)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """A snapshot of hit/miss/eviction counters, total and per kind."""
        with self._lock:
            kinds = set(self._kind_hits) | set(self._kind_misses)
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                max_entries=self.max_entries if self.max_entries is not None else -1,
                by_kind={
                    kind: KindStats(
                        hits=self._kind_hits.get(kind, 0),
                        misses=self._kind_misses.get(kind, 0),
                    )
                    for kind in kinds
                },
            )

    def __repr__(self) -> str:
        return (
            f"EngineCache(size={len(self._data)}, max_entries={self.max_entries}, "
            f"hits={self._hits}, misses={self._misses})"
        )
