"""The shared compilation engine: compile-once / reuse-many automata.

Every algorithm in this reproduction — conformance (Definition 2.1), the
traces technique (Section 3.4), the feedback queries and the adaptive
optimizer (Section 4) — bottoms out in the same automata constructions:
Thompson compilation, schema-graph reachability, content-model
restriction, trace products.  :class:`Engine` is the single place those
constructions happen; results are memoized in an :class:`EngineCache`
keyed on schema fingerprints and hash-consed regexes, so repeated calls
from any layer (or from different layers on equal inputs) reuse one
compiled artifact.

A module-level default engine backs every public API that does not pass
an explicit ``engine=`` handle, which is why all pre-engine call sites
keep working unchanged — and get the caching for free.

This module deliberately imports only the ``automata`` layer at module
scope; everything above it (schemas, reachability) is imported lazily
inside methods so that consumer modules may import the engine at module
scope without cycles.
"""

from __future__ import annotations

import os
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from ..automata.compiled import CompiledDFA, NFARunner, compile_nfa
from ..automata.nfa import NFA, thompson as _thompson
from ..automata.syntax import Regex, Symbol
from .cache import CacheStats, EngineCache

#: The automata backends an engine can run its decision walks on.
BACKENDS: Tuple[str, ...] = ("nfa", "compiled")

#: Environment override for the default backend (worker processes and
#: benchmarks set it so child engines inherit the parent's choice).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Either side of the runner contract (see repro.automata.compiled):
#: step() returns None when the walk dies, never a falsy state.
Runner = Union[CompiledDFA, NFARunner]


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend or fall back to env / the default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "compiled"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {', '.join(BACKENDS)})"
        )
    return backend


class Engine:
    """A handle bundling a memoizing cache with the automata constructions.

    Construct one per long-lived server (or share the module default);
    pass it via the ``engine=`` parameter that every consumer API accepts.
    All artifacts an engine returns are treated as immutable by every
    consumer in this package — callers adding their own uses must copy
    before mutating.
    """

    def __init__(
        self,
        cache: Optional[EngineCache] = None,
        max_entries: Optional[int] = 4096,
        backend: Optional[str] = None,
        store=None,
    ):
        self.cache = cache if cache is not None else EngineCache(max_entries)
        #: Which automata implementation the decision procedures walk:
        #: ``"compiled"`` (minimized table-driven DFAs, the default) or
        #: ``"nfa"`` (the legacy subset simulation, kept for differential
        #: testing).  Resolution order: explicit argument, then the
        #: ``REPRO_BACKEND`` environment variable, then ``"compiled"``.
        self.backend = resolve_backend(backend)
        #: Optional :class:`repro.engine.store.ArtifactStore` backing this
        #: engine's per-schema compiles (the durable tier behind the
        #: in-memory cache; see :meth:`warm_from_store`).
        self.store = store

    # ------------------------------------------------------------------
    # Generic regex compilation
    # ------------------------------------------------------------------

    def thompson(self, regex: Regex, alphabet: Iterable[Symbol]) -> NFA:
        """Memoized Thompson construction.

        Hash-consed regexes make the ``(regex, alphabet)`` key O(1) to
        hash; equal regexes compiled against equal alphabets share one NFA
        no matter where in the stack the request originates.
        """
        alphabet = frozenset(alphabet)
        key = ("thompson", regex, alphabet)
        return self.cache.get_or_compute(key, lambda: _thompson(regex, alphabet))

    # ------------------------------------------------------------------
    # Per-schema derived data (keyed on the schema fingerprint)
    # ------------------------------------------------------------------

    def symbol_alphabet(self, schema) -> FrozenSet[Tuple[str, str]]:
        """The schema's ``(label, tid)`` alphabet, computed once."""
        key = ("schema-alphabet", schema.fingerprint())
        return self.cache.get_or_compute(key, schema.symbol_alphabet)

    def content_nfa(self, schema, tid: str) -> NFA:
        """The content NFA of collection type ``tid`` over the schema alphabet."""
        key = ("content-nfa", schema.fingerprint(), tid)

        def build() -> NFA:
            type_def = schema.type(tid)
            if type_def.regex is None:
                from ..schema.model import SchemaError

                raise SchemaError(f"type {tid!r} is atomic and has no regex")
            return _thompson(type_def.regex, self.symbol_alphabet(schema))

        return self.cache.get_or_compute(key, build)

    def restricted_content_nfa(self, schema, tid: str) -> NFA:
        """The content NFA of ``tid`` with arcs to uninhabited targets dropped.

        This is the automaton every instance-level argument runs on (a
        conforming instance can only realize inhabited child types); it is
        what conformance support checks, the satisfiability word search,
        the trace construction, and the adaptive optimizer all consumed —
        each building its own copy before this engine existed.
        """
        key = ("restricted-content-nfa", schema.fingerprint(), tid)

        def build() -> NFA:
            from ..schema.model import _restrict_to_targets

            return _restrict_to_targets(
                self.content_nfa(schema, tid), self.inhabited_types(schema)
            )

        return self.cache.get_or_compute(key, build)

    def inhabited_types(self, schema) -> FrozenSet[str]:
        """Type ids with at least one finite conforming instance."""
        key = ("inhabited", schema.fingerprint())

        def build() -> FrozenSet[str]:
            from ..schema.model import _compute_inhabited

            return _compute_inhabited(schema, self)

        return self.cache.get_or_compute(key, build)

    def possible_edges(self, schema):
        """The schema graph Γ(S): per type, the realizable ``(label, tid)`` pairs."""
        key = ("possible-edges", schema.fingerprint())

        def build():
            from ..schema.model import _compute_possible_edges

            return _compute_possible_edges(schema, self)

        return self.cache.get_or_compute(key, build)

    def reachable_types(self, schema) -> FrozenSet[str]:
        """Types reachable from the schema root through Γ(S), computed once."""
        key = ("reachable", schema.fingerprint())
        return self.cache.get_or_compute(key, lambda: schema.reachable_types(self))

    def reach(self, schema):
        """A :class:`repro.typing.reach.SchemaReach` shared per schema.

        All consumers handed the same engine share one reachability
        object (and therefore its product-completion caches) for equal
        schemas.
        """
        key = ("reach", schema.fingerprint())

        def build():
            from ..typing.reach import SchemaReach

            return SchemaReach(schema, engine=self)

        return self.cache.get_or_compute(key, build)

    # ------------------------------------------------------------------
    # The compile pipeline (NFA → subset → Hopcroft → tables)
    # ------------------------------------------------------------------

    def compiled_path(self, regex: Regex, alphabet: Iterable[Symbol]) -> CompiledDFA:
        """A path regex lowered to a minimized transition table."""
        alphabet = frozenset(alphabet)
        key = ("compiled-path", regex, alphabet)
        return self.cache.get_or_compute(
            key, lambda: compile_nfa(self.thompson(regex, alphabet))
        )

    def compiled_content(self, schema, tid: str) -> CompiledDFA:
        """The (unrestricted) content model of ``tid`` as a compiled DFA.

        This is the automaton conformance membership and witness runs
        execute on.
        """
        key = ("compiled-content", schema.fingerprint(), tid)
        return self.cache.get_or_compute(
            key, lambda: compile_nfa(self.content_nfa(schema, tid))
        )

    def compiled_restricted_content(self, schema, tid: str) -> CompiledDFA:
        """The inhabited-restricted content model of ``tid``, compiled.

        The satisfiability word search runs on this table; the pipeline's
        dead-state pruning means every offered symbol can still complete
        a content word.
        """
        key = ("compiled-content-restricted", schema.fingerprint(), tid)
        return self.cache.get_or_compute(
            key, lambda: compile_nfa(self.restricted_content_nfa(schema, tid))
        )

    def compiled_trace(self, schema, root_tid: str, arm_count: int) -> CompiledDFA:
        """``Tr(S)`` rooted at ``root_tid``, compiled (Section 3.4)."""
        key = ("compiled-trace", schema.fingerprint(), root_tid, arm_count)

        def build() -> CompiledDFA:
            from ..typing.traces import schema_trace_nfa

            return compile_nfa(schema_trace_nfa(schema, root_tid, arm_count, engine=self))

        return self.cache.get_or_compute(key, build)

    # ------------------------------------------------------------------
    # Backend-resolved runners (None-is-dead walk contract)
    # ------------------------------------------------------------------

    def path_runner(self, regex: Regex, alphabet: Iterable[Symbol]) -> Runner:
        """A walkable automaton for a path regex on this engine's backend."""
        alphabet = frozenset(alphabet)
        if self.backend == "compiled":
            return self.compiled_path(regex, alphabet)
        key = ("path-runner", regex, alphabet)
        return self.cache.get_or_compute(
            key, lambda: NFARunner(self.thompson(regex, alphabet))
        )

    def content_runner(self, schema, tid: str, restricted: bool = True) -> Runner:
        """A walkable content automaton for ``tid`` on this backend."""
        if self.backend == "compiled":
            if restricted:
                return self.compiled_restricted_content(schema, tid)
            return self.compiled_content(schema, tid)
        key = ("content-runner", schema.fingerprint(), tid, restricted)
        build_nfa = (
            self.restricted_content_nfa if restricted else self.content_nfa
        )
        return self.cache.get_or_compute(
            key, lambda: NFARunner(build_nfa(schema, tid))
        )

    # ------------------------------------------------------------------
    # The durable tier (memory miss → store hit → install)
    # ------------------------------------------------------------------

    def warm_from_store(self, schema) -> bool:
        """Load-through: seed this engine from the attached artifact store.

        Returns True when the schema's compiled working set is resident
        afterwards — either it already was (memory hit, the store is not
        touched) or the store held a valid artifact and its entries were
        installed.  False means a genuine cold compile is needed (and, if
        a store is attached, that its miss counter was bumped).
        """
        fingerprint = schema.fingerprint()
        if ("inhabited", fingerprint) in self.cache:
            return True
        if self.store is None:
            return False
        artifact = self.store.get(fingerprint)
        if artifact is None:
            return False
        self.cache.seed(artifact.entries)
        return True

    def persist_to_store(self, schema, syntax: str = "scmdl"):
        """Capture this engine's compiled state for ``schema`` into the store.

        No-op (returns None) without an attached store; otherwise returns
        the blob path.  Call after a cold compile so the next process —
        daemon restart, pool worker, ``repro warm`` consumer — starts warm.
        """
        if self.store is None:
            return None
        from .artifact import EngineArtifact

        return self.store.put(EngineArtifact.capture(self, schema), syntax=syntax)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Snapshot of the underlying cache counters."""
        return self.cache.stats()

    def __repr__(self) -> str:
        return f"Engine({self.cache!r})"


#: The process-wide default engine used whenever ``engine=None``.
_default_engine = Engine()


def get_default_engine() -> Engine:
    """The module-level default engine (shared by all default-argument calls)."""
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Replace the default engine; returns the previous one.

    Useful for long-running services that want a custom LRU bound, and
    for tests that need isolated counters.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
