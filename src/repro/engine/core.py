"""The shared compilation engine: compile-once / reuse-many automata.

Every algorithm in this reproduction — conformance (Definition 2.1), the
traces technique (Section 3.4), the feedback queries and the adaptive
optimizer (Section 4) — bottoms out in the same automata constructions:
Thompson compilation, schema-graph reachability, content-model
restriction, trace products.  :class:`Engine` is the single place those
constructions happen; results are memoized in an :class:`EngineCache`
keyed on schema fingerprints and hash-consed regexes, so repeated calls
from any layer (or from different layers on equal inputs) reuse one
compiled artifact.

A module-level default engine backs every public API that does not pass
an explicit ``engine=`` handle, which is why all pre-engine call sites
keep working unchanged — and get the caching for free.

This module deliberately imports only the ``automata`` layer at module
scope; everything above it (schemas, reachability) is imported lazily
inside methods so that consumer modules may import the engine at module
scope without cycles.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from ..automata.nfa import NFA, thompson as _thompson
from ..automata.syntax import Regex, Symbol
from .cache import CacheStats, EngineCache


class Engine:
    """A handle bundling a memoizing cache with the automata constructions.

    Construct one per long-lived server (or share the module default);
    pass it via the ``engine=`` parameter that every consumer API accepts.
    All artifacts an engine returns are treated as immutable by every
    consumer in this package — callers adding their own uses must copy
    before mutating.
    """

    def __init__(self, cache: Optional[EngineCache] = None, max_entries: Optional[int] = 4096):
        self.cache = cache if cache is not None else EngineCache(max_entries)

    # ------------------------------------------------------------------
    # Generic regex compilation
    # ------------------------------------------------------------------

    def thompson(self, regex: Regex, alphabet: Iterable[Symbol]) -> NFA:
        """Memoized Thompson construction.

        Hash-consed regexes make the ``(regex, alphabet)`` key O(1) to
        hash; equal regexes compiled against equal alphabets share one NFA
        no matter where in the stack the request originates.
        """
        alphabet = frozenset(alphabet)
        key = ("thompson", regex, alphabet)
        return self.cache.get_or_compute(key, lambda: _thompson(regex, alphabet))

    # ------------------------------------------------------------------
    # Per-schema derived data (keyed on the schema fingerprint)
    # ------------------------------------------------------------------

    def symbol_alphabet(self, schema) -> FrozenSet[Tuple[str, str]]:
        """The schema's ``(label, tid)`` alphabet, computed once."""
        key = ("schema-alphabet", schema.fingerprint())
        return self.cache.get_or_compute(key, schema.symbol_alphabet)

    def content_nfa(self, schema, tid: str) -> NFA:
        """The content NFA of collection type ``tid`` over the schema alphabet."""
        key = ("content-nfa", schema.fingerprint(), tid)

        def build() -> NFA:
            type_def = schema.type(tid)
            if type_def.regex is None:
                from ..schema.model import SchemaError

                raise SchemaError(f"type {tid!r} is atomic and has no regex")
            return _thompson(type_def.regex, self.symbol_alphabet(schema))

        return self.cache.get_or_compute(key, build)

    def restricted_content_nfa(self, schema, tid: str) -> NFA:
        """The content NFA of ``tid`` with arcs to uninhabited targets dropped.

        This is the automaton every instance-level argument runs on (a
        conforming instance can only realize inhabited child types); it is
        what conformance support checks, the satisfiability word search,
        the trace construction, and the adaptive optimizer all consumed —
        each building its own copy before this engine existed.
        """
        key = ("restricted-content-nfa", schema.fingerprint(), tid)

        def build() -> NFA:
            from ..schema.model import _restrict_to_targets

            return _restrict_to_targets(
                self.content_nfa(schema, tid), self.inhabited_types(schema)
            )

        return self.cache.get_or_compute(key, build)

    def inhabited_types(self, schema) -> FrozenSet[str]:
        """Type ids with at least one finite conforming instance."""
        key = ("inhabited", schema.fingerprint())

        def build() -> FrozenSet[str]:
            from ..schema.model import _compute_inhabited

            return _compute_inhabited(schema, self)

        return self.cache.get_or_compute(key, build)

    def possible_edges(self, schema):
        """The schema graph Γ(S): per type, the realizable ``(label, tid)`` pairs."""
        key = ("possible-edges", schema.fingerprint())

        def build():
            from ..schema.model import _compute_possible_edges

            return _compute_possible_edges(schema, self)

        return self.cache.get_or_compute(key, build)

    def reach(self, schema):
        """A :class:`repro.typing.reach.SchemaReach` shared per schema.

        All consumers handed the same engine share one reachability
        object (and therefore its product-completion caches) for equal
        schemas.
        """
        key = ("reach", schema.fingerprint())

        def build():
            from ..typing.reach import SchemaReach

            return SchemaReach(schema, engine=self)

        return self.cache.get_or_compute(key, build)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Snapshot of the underlying cache counters."""
        return self.cache.stats()

    def __repr__(self) -> str:
        return f"Engine({self.cache!r})"


#: The process-wide default engine used whenever ``engine=None``.
_default_engine = Engine()


def get_default_engine() -> Engine:
    """The module-level default engine (shared by all default-argument calls)."""
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Replace the default engine; returns the previous one.

    Useful for long-running services that want a custom LRU bound, and
    for tests that need isolated counters.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
