"""repro: reproduction of Milo & Suciu, *Type Inference for Queries on
Semistructured Data* (PODS 1999).

The library implements the paper's full stack:

* :mod:`repro.automata` — regular languages over arbitrary symbols
  (Thompson/NFA/DFA, products, containment, bag languages);
* :mod:`repro.data` — ordered-OEM data graphs and the Table-1 data syntax,
  plus the XML encoding of Section 2;
* :mod:`repro.schema` — ScmDL schemas, DTD⁻/DTD⁺ classes, conformance
  (Definition 2.1) and schema subsumption;
* :mod:`repro.query` — patterns and selection queries (Definitions 2.2–2.3)
  with full evaluation semantics;
* :mod:`repro.typing` — the paper's core: traces (Section 3.4),
  satisfiability, total/partial type checking, and type inference, with
  complexity matching Table 2 cell by cell;
* :mod:`repro.apps` — the Section-4 applications: feedback queries,
  the adaptive optimal evaluator A_O, and Skolem-function transformations;
* :mod:`repro.reductions` — the executable 3SAT reductions behind the
  NP-completeness results;
* :mod:`repro.workloads` — synthetic workload generators used by the
  benchmark harness.

Quickstart::

    from repro import parse_schema, parse_query, infer_types

    schema = parse_schema('DOC = [(paper -> PAPER)*]; PAPER = [title -> T]; T = string')
    query = parse_query('SELECT X WHERE Root = [paper.title -> X]')
    for assignment in infer_types(query, schema):
        print(assignment)

Top-level names are loaded lazily so that the subpackages stay importable
in isolation.
"""

from importlib import import_module

__version__ = "1.0.0"

#: Maps public top-level names to the submodule that defines them.
_EXPORTS = {
    "DataGraph": "repro.data",
    "parse_data": "repro.data",
    "data_to_string": "repro.data",
    "from_xml": "repro.data",
    "to_xml": "repro.data",
    "Schema": "repro.schema",
    "parse_schema": "repro.schema",
    "schema_to_string": "repro.schema",
    "parse_dtd": "repro.schema",
    "conforms": "repro.schema",
    "find_type_assignment": "repro.schema",
    "Query": "repro.query",
    "parse_query": "repro.query",
    "query_to_string": "repro.query",
    "evaluate": "repro.query",
    "is_satisfiable": "repro.typing",
    "check_types": "repro.typing",
    "check_total_types": "repro.typing",
    "infer_types": "repro.typing",
    "classify": "repro.typing",
    "feedback_query": "repro.apps",
    "NaiveEvaluator": "repro.apps",
    "AdaptiveEvaluator": "repro.apps",
    "TransformQuery": "repro.apps",
    "parse_transform": "repro.apps",
    "parse_xmlql": "repro.query",
    "find_witness": "repro.typing",
    "subsumes": "repro.schema",
    "from_json": "repro.data",
    "to_json": "repro.data",
    "from_plain_json": "repro.data",
    "graph_to_dot": "repro.data",
    "schema_to_dot": "repro.data",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
