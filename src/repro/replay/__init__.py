"""Replay traffic harness: domain workloads vs. a running daemon.

``repro replay`` drives a live service (threaded or pool tier) with a
weighted traffic mix over the multi-domain corpora, records exact
client-side latency percentiles per endpoint and per domain, compares
the server's bucket-interpolated ``/stats`` percentiles alongside, and
gates the result on declared SLO thresholds (exit 0 = pass,
1 = degraded, 2 = violation).  See ``docs/replay.md``.
"""

from .mix import MIXES, REPLAY_OPERATIONS, TrafficMix, resolve_mix
from .report import ReplayRecorder, SampleSet, exact_percentiles
from .runner import ReplayConfig, run_replay
from .slo import (
    EXIT_DEGRADED,
    EXIT_PASS,
    EXIT_VIOLATION,
    SLOSpec,
    evaluate_slo,
    gate_exit_code,
)

__all__ = [
    "EXIT_DEGRADED",
    "EXIT_PASS",
    "EXIT_VIOLATION",
    "MIXES",
    "REPLAY_OPERATIONS",
    "ReplayConfig",
    "ReplayRecorder",
    "SLOSpec",
    "SampleSet",
    "TrafficMix",
    "evaluate_slo",
    "exact_percentiles",
    "gate_exit_code",
    "resolve_mix",
    "run_replay",
]
