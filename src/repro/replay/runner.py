"""The replay load generator: drive a running daemon with domain traffic.

``repro replay`` (CLI) builds a :class:`ReplayConfig`, and
:func:`run_replay` does the rest: generate the domain corpora, register
their schemas, fan out worker threads in closed-loop (each thread issues
its next request as soon as the last returns) or open-loop mode (paced
arrivals at ``--rate`` rps, so queueing delay is visible instead of
being absorbed by back-pressure), record every sample client-side, then
snapshot the server's ``/stats``, assemble the report, write
``BENCH_replay.json``, and evaluate the SLO gate.

Both serving tiers speak the same HTTP surface, so the runner does not
care whether ``--workers`` was passed to ``repro serve``; the report
just records which tier it hit (from ``/healthz``'s ``mode``).

The ``cache-pressure`` scenario reads the registry LRU bound from
``/stats``, mints *more* distinct schemas than fit (via
:func:`repro.workloads.domains.pressure_variants`), and keeps traffic
uniform across all of them, so the registry continuously evicts and the
``unknown-schema`` 404s force re-registration — which reloads compiled
artifacts from the persistent store (`warm_from_store`) rather than
recompiling.  The report's ``cache_pressure`` block asserts the loop
actually happened: evictions observed, reloads performed, 5xx count.

All deadline arithmetic uses the monotonic clock; the wall clock appears
only in the human-facing ``started_unix`` stamp.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..service.client import ServiceClient
from ..workloads.domains import (
    DOMAIN_NAMES,
    DomainCorpus,
    domain_corpus,
    pressure_variants,
)
from .mix import TrafficMix, resolve_mix
from .report import ReplayRecorder
from .slo import SLOSpec, evaluate_slo, gate_exit_code

#: Rotation of item kinds a ``batch`` request cycles through.
_BATCH_KINDS: Tuple[str, ...] = ("satisfiable", "check", "evaluate")


@dataclass
class ReplayConfig:
    host: str = "127.0.0.1"
    port: int = 8421
    seed: int = 0
    duration_s: float = 10.0
    mix: str = "default"
    domains: Optional[Sequence[str]] = None
    concurrency: int = 4
    #: Target arrival rate in rps (None = closed loop).
    rate: Optional[float] = None
    scenario: str = "steady"
    slo: SLOSpec = field(default_factory=SLOSpec)
    output: Optional[str] = "BENCH_replay.json"
    #: Cache-pressure only: how many schemas beyond the LRU bound.
    pressure_overshoot: int = 8
    request_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive when given")
        if self.scenario not in ("steady", "cache-pressure"):
            raise ValueError(
                f"unknown scenario {self.scenario!r} "
                f"(expected 'steady' or 'cache-pressure')"
            )


class _Workload:
    """The registered corpora plus the seeded per-request draw logic."""

    def __init__(self, corpora: List[DomainCorpus]):
        if not corpora:
            raise ValueError("replay needs at least one domain corpus")
        self.corpora = corpora
        # Zipf mass: a domain's traffic share follows its query-pool size.
        self._cumulative: List[float] = []
        running = 0.0
        for corpus in corpora:
            running += float(len(corpus.queries))
            self._cumulative.append(running)

    def pick_corpus(self, rng) -> DomainCorpus:
        point = rng.random() * self._cumulative[-1]
        for index, bound in enumerate(self._cumulative):
            if point < bound:
                return self.corpora[index]
        return self.corpora[-1]


def _register_all(
    client: ServiceClient, corpora: Sequence[DomainCorpus]
) -> Dict[str, DomainCorpus]:
    """Register every corpus schema; returns fingerprint → corpus."""
    by_fingerprint: Dict[str, DomainCorpus] = {}
    for corpus in corpora:
        result = client.register_schema(corpus.schema_text)
        fingerprint = result["fingerprint"]
        if fingerprint != corpus.fingerprint:
            raise RuntimeError(
                f"fingerprint mismatch for domain {corpus.name!r}: "
                f"client computed {corpus.fingerprint}, server {fingerprint}"
            )
        by_fingerprint[fingerprint] = corpus
    return by_fingerprint


def _build_request(
    operation: str, corpus: DomainCorpus, rng
) -> Tuple[str, str, dict]:
    """One request as ``(endpoint, method_path, payload)``."""
    query = rng.choice(corpus.queries)
    if operation == "satisfiable":
        return "satisfiable", "/satisfiable", {
            "fingerprint": corpus.fingerprint,
            "query": query,
        }
    if operation == "check":
        check_query, assignment = rng.choice(corpus.checks)
        return "check", "/check", {
            "fingerprint": corpus.fingerprint,
            "query": check_query,
            "assignment": dict(assignment),
            "total": False,
        }
    if operation == "infer":
        return "infer", "/infer", {
            "fingerprint": corpus.fingerprint,
            "query": query,
            "limit": 4,
        }
    if operation == "evaluate":
        return "evaluate", "/evaluate", {
            "fingerprint": corpus.fingerprint,
            "query": query,
            "data": rng.choice(corpus.documents),
        }
    if operation == "batch":
        kind = _BATCH_KINDS[rng.randrange(len(_BATCH_KINDS))]
        if kind == "check":
            items = [
                {"query": check_query, "assignment": dict(assignment)}
                for check_query, assignment in corpus.checks[:3]
            ]
        elif kind == "evaluate":
            items = [
                {"query": query, "data": document}
                for document in corpus.documents[:2]
            ]
        else:
            items = [{"query": q} for q in corpus.queries[:3]]
        return "batch", "/batch", {
            "fingerprint": corpus.fingerprint,
            "operation": kind,
            "items": items,
        }
    raise ValueError(f"unknown replay operation {operation!r}")


def _issue(
    client: ServiceClient,
    endpoint: str,
    path: str,
    payload: dict,
    corpus: DomainCorpus,
    recorder: ReplayRecorder,
) -> None:
    """Send one request, recording latency/status; reload on eviction.

    An ``unknown-schema`` 404 means the registry LRU evicted this
    fingerprint (expected under cache pressure): re-register — the
    server restores compiled artifacts from its store — and retry once.
    Both attempts are recorded; transport failures record status ``-1``.
    """
    for attempt in (0, 1):
        started = time.perf_counter()
        try:
            status, envelope = client.request("POST", path, payload)
        except Exception:  # noqa: BLE001 — any transport failure
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            recorder.record(endpoint, corpus.name, -1, elapsed_ms)
            return
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        recorder.record(endpoint, corpus.name, status, elapsed_ms)
        error = envelope.get("error") or {}
        if (
            attempt == 0
            and status == 404
            and error.get("code") == "unknown-schema"
        ):
            try:
                client.register_schema(corpus.schema_text)
            except Exception:  # noqa: BLE001 — count and give up
                return
            recorder.reloads += 1
            continue
        return


def _worker(
    config: ReplayConfig,
    workload: _Workload,
    mix: TrafficMix,
    worker_id: int,
    deadline: float,
    recorder: ReplayRecorder,
) -> None:
    import random

    rng = random.Random(f"replay:{config.seed}:{worker_id}")
    client = ServiceClient(config.host, config.port, timeout=config.request_timeout)
    interval = (
        config.concurrency / config.rate if config.rate is not None else None
    )
    next_arrival = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            if interval is not None:
                if now < next_arrival:
                    time.sleep(min(next_arrival - now, deadline - now))
                    if time.monotonic() >= deadline:
                        break
                # If we fell behind by several intervals, skip forward
                # rather than bursting to catch up.
                next_arrival = max(next_arrival + interval, time.monotonic())
            corpus = workload.pick_corpus(rng)
            operation = mix.pick(rng)
            endpoint, path, payload = _build_request(operation, corpus, rng)
            _issue(client, endpoint, path, payload, corpus, recorder)
    finally:
        client.close()


def run_replay(config: ReplayConfig) -> Tuple[int, dict]:
    """Run one replay; returns ``(gate_exit_code, report)``.

    Writes the report to ``config.output`` (unless ``None``).
    """
    mix = resolve_mix(config.mix)
    client = ServiceClient(config.host, config.port, timeout=config.request_timeout)
    health = client.healthz()
    stats_before = client.stats()

    if config.scenario == "cache-pressure":
        bound = int(stats_before["registry"]["max_schemas"])
        count = bound + max(1, config.pressure_overshoot)
        corpora = pressure_variants(
            count, seed=config.seed, names=config.domains
        )
    else:
        corpora = domain_corpus(seed=config.seed, names=config.domains)
    by_fingerprint = _register_all(client, corpora)
    workload = _Workload(list(by_fingerprint.values()))

    recorders = [ReplayRecorder() for _ in range(config.concurrency)]
    started_unix = time.time()  # human-facing stamp only
    started = time.monotonic()
    deadline = started + config.duration_s
    threads = [
        threading.Thread(
            target=_worker,
            args=(config, workload, mix, worker_id, deadline, recorder),
            name=f"replay-{worker_id}",
            daemon=True,
        )
        for worker_id, recorder in enumerate(recorders)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = max(time.monotonic() - started, 1e-9)

    merged = ReplayRecorder()
    for recorder in recorders:
        merged.merge(recorder)
    stats_after = client.stats()
    client.close()

    report = _build_report(
        config, mix, corpora, merged, elapsed_s, started_unix,
        health, stats_before, stats_after,
    )
    violations = evaluate_slo(config.slo, report)
    exit_code = gate_exit_code(violations, report)
    report["slo"] = {
        "thresholds": config.slo.as_dict(),
        "violations": violations,
        "exit_code": exit_code,
    }
    if config.output:
        with open(config.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return exit_code, report


def _server_endpoint_stats(stats: dict) -> dict:
    """The server-side per-endpoint snapshot, whichever tier answered.

    The threaded tier's request metrics live under ``service``; the pool
    tier's frontend metrics are ``service`` and the merged worker-side
    metrics are ``worker_service`` (the ones with decision latencies).
    """
    worker_service = stats.get("worker_service")
    if isinstance(worker_service, dict) and worker_service.get("endpoints"):
        return worker_service.get("endpoints", {})
    return (stats.get("service") or {}).get("endpoints", {})


def _build_report(
    config: ReplayConfig,
    mix: TrafficMix,
    corpora: List[DomainCorpus],
    merged: ReplayRecorder,
    elapsed_s: float,
    started_unix: float,
    health: dict,
    stats_before: dict,
    stats_after: dict,
) -> dict:
    registry_before = stats_before.get("registry") or {}
    registry_after = stats_after.get("registry") or {}
    totals = merged.totals_block(elapsed_s)
    report = {
        "kind": "replay",
        "started_unix": round(started_unix, 3),
        "duration_s": round(elapsed_s, 3),
        "server_mode": health.get("mode", "unknown"),
        "config": {
            "host": config.host,
            "port": config.port,
            "seed": config.seed,
            "requested_duration_s": config.duration_s,
            "mix": {"name": mix.name, "weights": mix.as_dict()},
            "concurrency": config.concurrency,
            "rate": config.rate,
            "loop": "open" if config.rate is not None else "closed",
            "scenario": config.scenario,
            "domains": sorted({corpus.name for corpus in corpora}),
            "schemas": len(corpora),
        },
        "totals": totals,
        "endpoints": merged.endpoints_block(elapsed_s),
        "domains": merged.domains_block(elapsed_s),
        "server": {
            "endpoints": _server_endpoint_stats(stats_after),
            "registry": registry_after,
        },
    }
    if config.scenario == "cache-pressure":
        evictions = int(registry_after.get("evicted", 0)) - int(
            registry_before.get("evicted", 0)
        )
        store_hits = int(registry_after.get("store_hits", 0)) - int(
            registry_before.get("store_hits", 0)
        )
        report["cache_pressure"] = {
            "registered": len(corpora),
            "lru_bound": int(registry_before.get("max_schemas", 0)),
            "evictions": evictions,
            "store_hits": store_hits,
            "reloads": totals.get("reloads", 0),
            "errors_5xx": totals.get("errors_5xx", 0),
        }
    return report
