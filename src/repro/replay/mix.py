"""Traffic mixes: which endpoints a replay run exercises, and how often.

A :class:`TrafficMix` is a weighted distribution over the replayable
operations.  Named presets cover the common shapes; ad-hoc mixes parse
from ``op=weight`` comma lists (``--mix "satisfiable=6,batch=1"``), so a
benchmark can pin any ratio without code changes.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, Tuple

#: Operations the replay runner knows how to drive.
REPLAY_OPERATIONS: Tuple[str, ...] = (
    "satisfiable",
    "check",
    "infer",
    "evaluate",
    "batch",
)


@dataclass(frozen=True)
class TrafficMix:
    """A weighted distribution over :data:`REPLAY_OPERATIONS`."""

    name: str
    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("a traffic mix needs at least one operation")
        seen = set()
        for operation, weight in self.weights:
            if operation not in REPLAY_OPERATIONS:
                raise ValueError(
                    f"unknown operation {operation!r} in mix {self.name!r} "
                    f"(expected one of {', '.join(REPLAY_OPERATIONS)})"
                )
            if operation in seen:
                raise ValueError(f"duplicate operation {operation!r} in mix")
            if weight < 0:
                raise ValueError(f"negative weight for {operation!r}")
            seen.add(operation)
        if not any(weight > 0 for _op, weight in self.weights):
            raise ValueError(f"mix {self.name!r} has no positive weight")

    def pick(self, rng: random.Random) -> str:
        """One weighted draw (deterministic given the rng state)."""
        cumulative: list = []
        running = 0.0
        for _operation, weight in self.weights:
            running += weight
            cumulative.append(running)
        point = rng.random() * running
        index = bisect.bisect_right(cumulative, point)
        return self.weights[min(index, len(self.weights) - 1)][0]

    def as_dict(self) -> Dict[str, float]:
        return {operation: weight for operation, weight in self.weights}


#: Preset mixes.  ``default`` approximates a type-checking tier fronting
#: an editor: mostly satisfiability probes, a fair share of checks and
#: inference, occasional evaluation and batch jobs.
MIXES: Dict[str, TrafficMix] = {
    "default": TrafficMix(
        "default",
        (
            ("satisfiable", 4.0),
            ("check", 2.0),
            ("infer", 2.0),
            ("evaluate", 1.0),
            ("batch", 1.0),
        ),
    ),
    "read-heavy": TrafficMix(
        "read-heavy",
        (("satisfiable", 6.0), ("check", 3.0), ("infer", 1.0)),
    ),
    "evaluate-heavy": TrafficMix(
        "evaluate-heavy",
        (("evaluate", 5.0), ("satisfiable", 2.0), ("check", 1.0)),
    ),
    "batch-heavy": TrafficMix(
        "batch-heavy",
        (("batch", 4.0), ("satisfiable", 1.0), ("infer", 1.0)),
    ),
}


def resolve_mix(spec: str) -> TrafficMix:
    """A preset name, or an ad-hoc ``op=weight,op=weight`` list."""
    preset = MIXES.get(spec)
    if preset is not None:
        return preset
    if "=" not in spec:
        raise ValueError(
            f"unknown mix {spec!r} (presets: {', '.join(sorted(MIXES))}; "
            f"or pass 'op=weight,...' over {', '.join(REPLAY_OPERATIONS)})"
        )
    weights = []
    for piece in spec.split(","):
        piece = piece.strip()
        if not piece:
            continue
        operation, _eq, raw = piece.partition("=")
        try:
            weight = float(raw)
        except ValueError:
            raise ValueError(f"bad weight {raw!r} for {operation!r}") from None
        weights.append((operation.strip(), weight))
    return TrafficMix("custom", tuple(weights))
