"""Sample aggregation for replay runs: exact client-side percentiles.

The server's ``/stats`` percentiles are bucket-interpolated estimates
(see :func:`repro.service.metrics.bucket_percentiles`); the replay
client holds every recorded sample, so its percentiles are *exact*
(nearest-rank over the sorted latencies).  Reports carry both so drift
between them is visible — a large gap means the histogram buckets are
mis-sized for the workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The exact percentile points reported client-side.
EXACT_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def exact_percentiles(samples_ms: List[float]) -> Dict[str, float]:
    """Nearest-rank percentiles over raw latency samples (ms)."""
    if not samples_ms:
        return {name: 0.0 for name, _q in EXACT_PERCENTILES}
    ordered = sorted(samples_ms)
    result = {}
    for name, q in EXACT_PERCENTILES:
        rank = max(1, math.ceil(q * len(ordered)))
        result[name] = round(ordered[rank - 1], 3)
    return result


@dataclass
class SampleSet:
    """All samples for one (endpoint, domain) traffic cell."""

    latencies_ms: List[float] = field(default_factory=list)
    errors_4xx: int = 0
    errors_5xx: int = 0
    transport_errors: int = 0

    def record(self, status: int, elapsed_ms: float) -> None:
        self.latencies_ms.append(elapsed_ms)
        if status < 0:
            self.transport_errors += 1
        elif 400 <= status < 500:
            self.errors_4xx += 1
        elif status >= 500:
            self.errors_5xx += 1

    def merge(self, other: "SampleSet") -> None:
        self.latencies_ms.extend(other.latencies_ms)
        self.errors_4xx += other.errors_4xx
        self.errors_5xx += other.errors_5xx
        self.transport_errors += other.transport_errors

    @property
    def requests(self) -> int:
        return len(self.latencies_ms)

    def block(self, duration_s: float) -> dict:
        """The JSON block for this cell (counts, rates, percentiles)."""
        requests = self.requests
        failures = self.errors_5xx + self.transport_errors
        total_ms = sum(self.latencies_ms)
        return {
            "requests": requests,
            "errors_4xx": self.errors_4xx,
            "errors_5xx": self.errors_5xx,
            "transport_errors": self.transport_errors,
            "error_rate": round(failures / requests, 6) if requests else 0.0,
            "rps": round(requests / duration_s, 3) if duration_s > 0 else 0.0,
            "latency_ms": {
                "mean": round(total_ms / requests, 3) if requests else 0.0,
                "max": round(max(self.latencies_ms), 3) if requests else 0.0,
                **exact_percentiles(self.latencies_ms),
            },
        }


class ReplayRecorder:
    """Per-thread sample sink, merged once at the end of a run.

    Each worker thread owns one recorder (no locking on the hot path);
    :meth:`merge` folds them together before reporting.
    """

    def __init__(self) -> None:
        self.by_endpoint: Dict[str, SampleSet] = {}
        self.by_domain: Dict[str, Dict[str, SampleSet]] = {}
        self.reloads = 0

    def record(
        self, endpoint: str, domain: str, status: int, elapsed_ms: float
    ) -> None:
        cell = self.by_endpoint.setdefault(endpoint, SampleSet())
        cell.record(status, elapsed_ms)
        domain_cells = self.by_domain.setdefault(domain, {})
        domain_cells.setdefault(endpoint, SampleSet()).record(status, elapsed_ms)

    def merge(self, other: "ReplayRecorder") -> None:
        for endpoint, cell in other.by_endpoint.items():
            self.by_endpoint.setdefault(endpoint, SampleSet()).merge(cell)
        for domain, cells in other.by_domain.items():
            mine = self.by_domain.setdefault(domain, {})
            for endpoint, cell in cells.items():
                mine.setdefault(endpoint, SampleSet()).merge(cell)
        self.reloads += other.reloads

    def totals_block(self, duration_s: float) -> dict:
        combined = SampleSet()
        for cell in self.by_endpoint.values():
            combined.merge(cell)
        block = combined.block(duration_s)
        block["reloads"] = self.reloads
        return block

    def endpoints_block(self, duration_s: float) -> dict:
        return {
            endpoint: cell.block(duration_s)
            for endpoint, cell in sorted(self.by_endpoint.items())
        }

    def domains_block(self, duration_s: float) -> dict:
        return {
            domain: {
                endpoint: cell.block(duration_s)
                for endpoint, cell in sorted(cells.items())
            }
            for domain, cells in sorted(self.by_domain.items())
        }
