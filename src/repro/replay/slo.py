"""SLO thresholds and the replay gate.

A replay run ends by checking its measured report against a declared
:class:`SLOSpec` and mapping the outcome onto three exit codes:

* ``EXIT_PASS`` (0) — every threshold met, no server errors.
* ``EXIT_DEGRADED`` (1) — thresholds met, but the run saw server-side
  (5xx/transport) errors; worth a look, not a gate failure.
* ``EXIT_VIOLATION`` (2) — at least one SLO threshold violated.  CI
  fails on exactly this code.

The 5xx-only error-rate convention is deliberate: the cache-pressure
scenario *expects* ``unknown-schema`` 404s when it probes evicted
fingerprints, and those are the client's cue to re-register (exercising
artifact-store reload) — an SLO that counted 4xx would punish the very
path the scenario exists to cover.  4xx counts are still reported.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

EXIT_PASS = 0
EXIT_DEGRADED = 1
EXIT_VIOLATION = 2


@dataclass(frozen=True)
class SLOSpec:
    """Thresholds the replay gate enforces (``None`` = not enforced).

    ``p95_ms``/``p99_ms`` apply to every endpoint's exact client-side
    percentiles; ``error_rate`` bounds the overall fraction of 5xx +
    transport failures; ``min_rps`` bounds overall achieved throughput.
    Per-endpoint overrides win over the global latency bounds.
    """

    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    error_rate: Optional[float] = None
    min_rps: Optional[float] = None
    per_endpoint: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "error_rate": self.error_rate,
            "min_rps": self.min_rps,
            "per_endpoint": dict(self.per_endpoint),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SLOSpec":
        known = {"p95_ms", "p99_ms", "error_rate", "min_rps", "per_endpoint"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(f"unknown SLO keys: {', '.join(unknown)}")
        return cls(
            p95_ms=raw.get("p95_ms"),
            p99_ms=raw.get("p99_ms"),
            error_rate=raw.get("error_rate"),
            min_rps=raw.get("min_rps"),
            per_endpoint=dict(raw.get("per_endpoint") or {}),
        )

    @classmethod
    def from_file(cls, path: str) -> "SLOSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def evaluate_slo(spec: SLOSpec, report: dict) -> List[dict]:
    """All threshold violations of ``report`` against ``spec``.

    ``report`` is the replay report (see :mod:`repro.replay.report`):
    ``totals`` carries ``rps`` and ``error_rate``; ``endpoints`` maps
    endpoint name to a block with ``latency_ms.p95``/``p99``.
    """
    violations: List[dict] = []
    totals = report.get("totals", {})

    def _violation(scope: str, metric: str, measured: float, bound: float, kind: str):
        violations.append(
            {
                "scope": scope,
                "metric": metric,
                "measured": round(float(measured), 6),
                "threshold": round(float(bound), 6),
                "kind": kind,
            }
        )

    if spec.error_rate is not None:
        measured = float(totals.get("error_rate", 0.0))
        if measured > spec.error_rate:
            _violation("total", "error_rate", measured, spec.error_rate, "max")
    if spec.min_rps is not None:
        measured = float(totals.get("rps", 0.0))
        if measured < spec.min_rps:
            _violation("total", "rps", measured, spec.min_rps, "min")

    for endpoint, block in sorted((report.get("endpoints") or {}).items()):
        latency = block.get("latency_ms", {})
        overrides = spec.per_endpoint.get(endpoint, {})
        for metric, global_bound in (("p95", spec.p95_ms), ("p99", spec.p99_ms)):
            bound = overrides.get(f"{metric}_ms", global_bound)
            if bound is None:
                continue
            measured = float(latency.get(metric, 0.0))
            if measured > bound:
                _violation(endpoint, f"{metric}_ms", measured, bound, "max")
    return violations


def gate_exit_code(violations: List[dict], report: dict) -> int:
    """Map violations + error counts onto the 0/1/2 gate convention."""
    if violations:
        return EXIT_VIOLATION
    totals = report.get("totals", {})
    server_errors = int(totals.get("errors_5xx", 0)) + int(
        totals.get("transport_errors", 0)
    )
    return EXIT_DEGRADED if server_errors else EXIT_PASS
