"""The concurrent, fingerprint-keyed schema registry.

The registry is what turns the engine's memoization into a cross-request
asset: a schema is parsed and compiled **once** at registration — the
paper's per-schema artifacts (symbol alphabet, inhabited types, schema
graph, content NFAs, reachability tables) are pre-warmed into a dedicated
:class:`~repro.engine.Engine` — and every later request addresses it by
its :meth:`~repro.schema.model.Schema.fingerprint`, paying none of that
work again.

Design points:

* **One engine per registered schema.**  Cross-schema requests never
  contend on one cache lock, and evicting a schema frees its compiled
  artifacts in one step (the engine goes with the entry).
* **Bounded + LRU.**  ``max_schemas`` caps resident compiled schemas;
  registering past the bound evicts the least recently *used* entry
  (lookups refresh recency, not just registrations).
* **Thread-safe.**  A single lock guards the map and the counters; the
  expensive parse/pre-warm runs outside the lock, so concurrent
  registrations of distinct schemas proceed in parallel and a racing
  duplicate registration of the same fingerprint resolves to one entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..engine import Engine
from ..schema import Schema, parse_dtd, parse_schema
from ..schema.migrate import MigrationReport, analyze_migration
from .envelope import ServiceError

#: Bound on the per-entry version chain ``GET /schemas/{fp}/history``
#: serves; older predecessors fall off the front.
MAX_HISTORY = 16

#: Bound on the per-entry decision memo (finished endpoint results keyed
#: by the request's (operation, query, pins, ...) tuple; see
#: :meth:`RegisteredSchema.cached_decision`).
DECISION_CACHE_SIZE = 512


class UnknownSchemaError(ServiceError):
    """A request named a fingerprint that is not (or no longer) registered."""

    def __init__(self, fingerprint: str):
        super().__init__(
            f"no schema registered under fingerprint {fingerprint!r} "
            f"(it may have been evicted; re-register it)",
            code="unknown-schema",
            status=404,
            detail={"fingerprint": fingerprint},
        )


@dataclass
class RegisteredSchema:
    """One resident schema: the parsed model plus its dedicated engine."""

    fingerprint: str
    schema: Schema
    engine: Engine
    syntax: str
    registered_at: float
    requests: int = 0
    #: 1 for a fresh registration; each accepted migration bumps it.
    version: int = 1
    #: Bounded chain of superseded predecessors, oldest first (see
    #: :data:`MAX_HISTORY`); each element is a JSON-able snapshot.
    history: List[dict] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)
    #: Finished decision results keyed by the full request tuple.  A
    #: registered schema is immutable (a migration swaps in a *new*
    #: entry), so every decision endpoint is a pure function of its
    #: request — the memo turns the warm path for a repeated request
    #: into one dict lookup instead of thousands of engine-cache probes
    #: (BENCH_service's ``warm_hit_delta`` showed ~1000 cache re-entries
    #: per warm ``/infer``).
    decisions: "OrderedDict[tuple, object]" = field(
        default_factory=OrderedDict, repr=False
    )
    decisions_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    decision_hits: int = 0
    decision_misses: int = 0

    def cached_decision(self, key: tuple, compute):
        """Memoized ``compute()`` keyed by the request tuple ``key``.

        Results are cached only on success (an exception propagates and
        caches nothing) and treated as immutable by every caller — the
        daemon shallow-copies before adding per-request fields.  The memo
        is a bounded LRU (:data:`DECISION_CACHE_SIZE`); hits refresh
        recency.
        """
        with self.decisions_lock:
            if key in self.decisions:
                self.decisions.move_to_end(key)
                self.decision_hits += 1
                return self.decisions[key]
        value = compute()
        with self.decisions_lock:
            if key not in self.decisions:
                self.decision_misses += 1
                self.decisions[key] = value
            while len(self.decisions) > DECISION_CACHE_SIZE:
                self.decisions.popitem(last=False)
        return value

    def describe(self) -> dict:
        """The JSON description ``GET /schemas`` and ``POST /schemas`` return."""
        return {
            "fingerprint": self.fingerprint,
            "syntax": self.syntax,
            "root": self.schema.root,
            "types": sorted(self.schema.tids()),
            "labels": sorted(self.schema.labels()),
            "requests": self.requests,
            "version": self.version,
            **self.info,
        }

    def describe_history(self) -> dict:
        """The JSON payload ``GET /schemas/{fp}/history`` returns."""
        return {
            "fingerprint": self.fingerprint,
            "version": self.version,
            "syntax": self.syntax,
            "root": self.schema.root,
            "history": [dict(snapshot) for snapshot in self.history],
        }


def parse_schema_text(text: str, syntax: str = "scmdl", wrap: bool = False) -> Schema:
    """Parse schema ``text`` in the named surface ``syntax``.

    The one place registration, migration, and the pool frontend (which
    must fingerprint a schema to route the registration to its shard
    owner) agree on what syntaxes exist and how an unknown one fails.
    """
    if syntax == "scmdl":
        return parse_schema(text)
    if syntax == "dtd":
        return parse_dtd(text, wrap=wrap)
    raise ServiceError(
        f"unknown schema syntax {syntax!r} (expected 'scmdl' or 'dtd')",
        code="bad-request",
    )


def prewarm(schema: Schema, engine: Engine) -> int:
    """Compile ``schema``'s per-schema artifacts into ``engine``.

    Runs every construction a decision endpoint will need: the symbol
    alphabet, the inhabited-type set, the schema graph, the reachability
    object, and the (restricted) content automata of every collection
    type — on the compiled backend that means running the full compile
    pipeline (NFA → subset → Hopcroft → tables) per type up front, so no
    request pays a first-touch compile.  Returns the number of cache
    entries the engine holds afterwards, so callers can report how much
    was warmed.
    """
    engine.symbol_alphabet(schema)
    engine.inhabited_types(schema)
    engine.possible_edges(schema)
    engine.reach(schema)
    for tid in schema.tids():
        if not schema.type(tid).is_atomic:
            engine.content_nfa(schema, tid)
            engine.restricted_content_nfa(schema, tid)
            if engine.backend == "compiled":
                engine.compiled_content(schema, tid)
                engine.compiled_restricted_content(schema, tid)
    return len(engine.cache)


class SchemaRegistry:
    """A bounded LRU map from schema fingerprints to compiled schemas.

    With a ``store`` (an :class:`~repro.engine.ArtifactStore`), the
    registry gains a durable tier: every registration persists its
    compiled artifact, and construction *restores* the store's resident
    artifacts — so a daemon restart comes back with every previously
    registered schema already compiled and serves warm-level latency on
    the first request wave (see ``benchmarks/bench_cold_start.py``).
    """

    def __init__(
        self,
        max_schemas: int = 64,
        engine_max_entries: Optional[int] = 4096,
        store=None,
        restore: bool = True,
        restore_filter: Optional[Callable[[str], bool]] = None,
    ):
        if max_schemas <= 0:
            raise ValueError("max_schemas must be positive")
        self.max_schemas = max_schemas
        self.engine_max_entries = engine_max_entries
        self.store = store
        #: Restrict restore-on-construction to fingerprints this predicate
        #: accepts.  Pool workers pass their shard predicate so each worker
        #: warms only the fingerprints it will be routed (plus any explicit
        #: reassignments), instead of every artifact in the shared store.
        self.restore_filter = restore_filter
        self._entries: "OrderedDict[str, RegisteredSchema]" = OrderedDict()
        self._lock = threading.Lock()
        self._registered = 0
        self._reregistered = 0
        self._register_races = 0
        self._evicted = 0
        self._lookups = 0
        self._lookup_misses = 0
        self._restored = 0
        self._store_hits = 0
        self._unregistered = 0
        self._migrations = 0
        self._migrations_rejected = 0
        if store is not None and restore:
            self._restore_from_store()

    def _restore_from_store(self) -> None:
        """Re-install every valid stored artifact as a registered schema.

        Runs at construction (before the server accepts requests), so no
        locking subtleties: most-recently-used artifacts are installed
        last and therefore survive if the store holds more schemas than
        ``max_schemas``.  A corrupt blob is the store's problem (counted
        there, read as a miss) and simply is not restored.
        """
        fingerprints = self.store.fingerprints()  # LRU order, oldest first
        if self.restore_filter is not None:
            fingerprints = [fp for fp in fingerprints if self.restore_filter(fp)]
        if len(fingerprints) > self.max_schemas:
            fingerprints = fingerprints[-self.max_schemas :]
        for fingerprint in fingerprints:
            artifact = self.store.get(fingerprint)
            if artifact is None:
                continue
            engine = Engine(
                max_entries=self.engine_max_entries,
                backend=artifact.backend,
                store=self.store,
            )
            engine.cache.seed(artifact.entries)
            syntax = self.store.meta(fingerprint).get("syntax", "scmdl")
            self._entries[fingerprint] = RegisteredSchema(
                fingerprint=fingerprint,
                schema=artifact.schema,
                engine=engine,
                syntax=syntax if isinstance(syntax, str) else "scmdl",
                registered_at=time.time(),
                info={"warmed_entries": len(engine.cache), "restored": True},
            )
            self._restored += 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, text: str, syntax: str = "scmdl", wrap: bool = False
    ) -> RegisteredSchema:
        """Parse, fingerprint, and pre-warm a schema; return its entry.

        Re-registering a schema that is already resident (same
        fingerprint) is cheap: the existing compiled entry is refreshed in
        LRU order and returned, with none of the automata rebuilt.
        """
        schema = parse_schema_text(text, syntax=syntax, wrap=wrap)
        fingerprint = schema.fingerprint()

        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                self._entries.move_to_end(fingerprint)
                self._reregistered += 1
                return existing

        # Compile outside the lock: registrations of distinct schemas
        # must not serialize on each other's automata construction.
        engine = Engine(max_entries=self.engine_max_entries, store=self.store)
        info: Dict[str, object] = {}
        if engine.warm_from_store(schema):
            # Durable tier hit: the compiled working set was installed
            # from disk; nothing to rebuild, nothing to persist.  This is
            # the path an evicted-then-re-registered schema takes under
            # cache pressure — counted so a replay run can assert the
            # store actually served the reload.
            info["store_hit"] = True
            with self._lock:
                self._store_hits += 1
        else:
            prewarm(schema, engine)
            engine.persist_to_store(schema, syntax=syntax)
        info["warmed_entries"] = len(engine.cache)
        entry = RegisteredSchema(
            fingerprint=fingerprint,
            schema=schema,
            engine=engine,
            syntax=syntax,
            registered_at=time.time(),
            info=info,
        )

        with self._lock:
            racing = self._entries.get(fingerprint)
            if racing is not None:
                # A concurrent register() of the same schema won; keep one
                # entry so counters and cache hits stay coherent.  This
                # thread's parse + pre-warm was duplicate work — count it,
                # so the wasted compile cost is visible in /stats.
                self._entries.move_to_end(fingerprint)
                self._reregistered += 1
                self._register_races += 1
                return racing
            self._entries[fingerprint] = entry
            self._registered += 1
            while len(self._entries) > self.max_schemas:
                self._entries.popitem(last=False)
                self._evicted += 1
            return entry

    # ------------------------------------------------------------------
    # Migration (the version-aware path)
    # ------------------------------------------------------------------

    def migrate(
        self,
        fingerprint: str,
        text: str,
        syntax: str = "scmdl",
        wrap: bool = False,
        queries: tuple = (),
        policy: str = "compatible",
    ) -> tuple:
        """Analyze a migration and, if the policy accepts, swap the entry.

        Parses and pre-warms the candidate schema (same backend as the
        resident entry, artifact persisted through the store), runs
        :func:`repro.schema.migrate.analyze_migration` against the
        resident schema's warm engine, and — only when the report meets
        ``policy`` — atomically replaces the registry entry: the new
        fingerprint takes the old one's slot with ``version + 1`` and the
        predecessor appended to its bounded history chain, and the old
        fingerprint's stored artifact is deleted so a restart restores
        only the migrated schema.

        Returns ``(entry, report)`` where ``entry`` is the new entry on
        acceptance and the (unchanged) resident entry on rejection.

        Raises:
            UnknownSchemaError: if ``fingerprint`` is not resident.
        """
        current = self.get(fingerprint)  # 404s early, refreshes recency

        schema = parse_schema_text(text, syntax=syntax, wrap=wrap)
        new_fingerprint = schema.fingerprint()

        # Compile outside the lock, exactly like register().
        engine = Engine(
            max_entries=self.engine_max_entries,
            backend=current.engine.backend,
            store=self.store,
        )
        store_hit = engine.warm_from_store(schema)
        if not store_hit:
            prewarm(schema, engine)
            engine.persist_to_store(schema, syntax=syntax)

        report = analyze_migration(
            current.schema,
            schema,
            queries=queries,
            policy=policy,
            engine_old=current.engine,
            engine_new=engine,
        )
        if not report.accepted:
            with self._lock:
                self._migrations_rejected += 1
            # Do not leave the rejected candidate's artifact behind: a
            # restart restores every stored blob as a *registered* schema,
            # and the policy just refused this one.  A blob that existed
            # before the analysis (store_hit) is someone else's and stays.
            if self.store is not None and not store_hit:
                if new_fingerprint not in self:
                    self.store.delete(new_fingerprint)
            return current, report
        if new_fingerprint == fingerprint:
            # A no-op migration: nothing to swap, no version bump.
            with self._lock:
                self._migrations += 1
            return current, report

        snapshot = {
            "fingerprint": fingerprint,
            "version": current.version,
            "registered_at": current.registered_at,
            "migrated_at": time.time(),
            "compatibility": report.compatibility,
            "policy": policy,
        }
        entry = RegisteredSchema(
            fingerprint=new_fingerprint,
            schema=schema,
            engine=engine,
            syntax=syntax,
            registered_at=time.time(),
            version=current.version + 1,
            history=(current.history + [snapshot])[-MAX_HISTORY:],
            info={"warmed_entries": len(engine.cache), "migrated_from": fingerprint},
        )
        with self._lock:
            resident = self._entries.pop(fingerprint, None)
            if resident is None:
                # Concurrently unregistered while we analyzed; surface 404.
                raise UnknownSchemaError(fingerprint)
            self._entries[new_fingerprint] = entry
            self._entries.move_to_end(new_fingerprint)
            self._migrations += 1
            while len(self._entries) > self.max_schemas:
                self._entries.popitem(last=False)
                self._evicted += 1
        if self.store is not None:
            self.store.delete(fingerprint)
        return entry, report

    # ------------------------------------------------------------------
    # Lookup / eviction
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> RegisteredSchema:
        """The entry for ``fingerprint``; refreshes LRU recency.

        Raises:
            UnknownSchemaError: if no such schema is resident (404).
        """
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ServiceError(
                "request must name a registered schema 'fingerprint'",
                code="bad-request",
            )
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._lookup_misses += 1
                raise UnknownSchemaError(fingerprint)
            self._entries.move_to_end(fingerprint)
            entry.requests += 1
            return entry

    def evict(self, fingerprint: str, purge_store: bool = False) -> bool:
        """Drop ``fingerprint``; True if it was resident.

        ``purge_store=True`` (what ``DELETE /schemas/{fp}`` passes) also
        deletes the schema's stored artifact, so an unregistered schema
        does not come back compiled on the next restart.  Explicit drops
        are additionally counted under ``unregistered`` — ``evicted``
        keeps covering every removal, LRU pressure included.
        """
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self._evicted += 1
                self._unregistered += 1
        if purge_store and self.store is not None:
            self.store.delete(fingerprint)
        return entry is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def entries(self) -> List[RegisteredSchema]:
        """A recency-ordered (oldest first) snapshot of resident entries."""
        with self._lock:
            return list(self._entries.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Registry counters plus each resident engine's cache counters."""
        with self._lock:
            entries = list(self._entries.values())
            counters = {
                "resident": len(entries),
                "max_schemas": self.max_schemas,
                "registered": self._registered,
                "reregistered": self._reregistered,
                "register_races": self._register_races,
                "evicted": self._evicted,
                "lookups": self._lookups,
                "lookup_misses": self._lookup_misses,
                "restored": self._restored,
                "store_hits": self._store_hits,
                "unregistered": self._unregistered,
                "migrations": self._migrations,
                "migrations_rejected": self._migrations_rejected,
            }
        if self.store is not None:
            counters["store"] = self.store.stats()
        engines = {}
        for entry in entries:
            stats = entry.engine.stats()
            with entry.decisions_lock:
                decisions = {
                    "hits": entry.decision_hits,
                    "misses": entry.decision_misses,
                    "size": len(entry.decisions),
                }
            engines[entry.fingerprint] = {
                "backend": entry.engine.backend,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "decisions": decisions,
                "by_kind": {
                    kind: {"hits": ks.hits, "misses": ks.misses}
                    for kind, ks in sorted(stats.by_kind.items())
                },
            }
        counters["engines"] = engines
        return counters
