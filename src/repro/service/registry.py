"""The concurrent, fingerprint-keyed schema registry.

The registry is what turns the engine's memoization into a cross-request
asset: a schema is parsed and compiled **once** at registration — the
paper's per-schema artifacts (symbol alphabet, inhabited types, schema
graph, content NFAs, reachability tables) are pre-warmed into a dedicated
:class:`~repro.engine.Engine` — and every later request addresses it by
its :meth:`~repro.schema.model.Schema.fingerprint`, paying none of that
work again.

Design points:

* **One engine per registered schema.**  Cross-schema requests never
  contend on one cache lock, and evicting a schema frees its compiled
  artifacts in one step (the engine goes with the entry).
* **Bounded + LRU.**  ``max_schemas`` caps resident compiled schemas;
  registering past the bound evicts the least recently *used* entry
  (lookups refresh recency, not just registrations).
* **Thread-safe.**  A single lock guards the map and the counters; the
  expensive parse/pre-warm runs outside the lock, so concurrent
  registrations of distinct schemas proceed in parallel and a racing
  duplicate registration of the same fingerprint resolves to one entry.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..engine import Engine
from ..schema import Schema, parse_dtd, parse_schema
from .envelope import ServiceError


class UnknownSchemaError(ServiceError):
    """A request named a fingerprint that is not (or no longer) registered."""

    def __init__(self, fingerprint: str):
        super().__init__(
            f"no schema registered under fingerprint {fingerprint!r} "
            f"(it may have been evicted; re-register it)",
            code="unknown-schema",
            status=404,
            detail={"fingerprint": fingerprint},
        )


@dataclass
class RegisteredSchema:
    """One resident schema: the parsed model plus its dedicated engine."""

    fingerprint: str
    schema: Schema
    engine: Engine
    syntax: str
    registered_at: float
    requests: int = 0
    info: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> dict:
        """The JSON description ``GET /schemas`` and ``POST /schemas`` return."""
        return {
            "fingerprint": self.fingerprint,
            "syntax": self.syntax,
            "root": self.schema.root,
            "types": sorted(self.schema.tids()),
            "labels": sorted(self.schema.labels()),
            "requests": self.requests,
            **self.info,
        }


def prewarm(schema: Schema, engine: Engine) -> int:
    """Compile ``schema``'s per-schema artifacts into ``engine``.

    Runs every construction a decision endpoint will need: the symbol
    alphabet, the inhabited-type set, the schema graph, the reachability
    object, and the (restricted) content automata of every collection
    type — on the compiled backend that means running the full compile
    pipeline (NFA → subset → Hopcroft → tables) per type up front, so no
    request pays a first-touch compile.  Returns the number of cache
    entries the engine holds afterwards, so callers can report how much
    was warmed.
    """
    engine.symbol_alphabet(schema)
    engine.inhabited_types(schema)
    engine.possible_edges(schema)
    engine.reach(schema)
    for tid in schema.tids():
        if not schema.type(tid).is_atomic:
            engine.content_nfa(schema, tid)
            engine.restricted_content_nfa(schema, tid)
            if engine.backend == "compiled":
                engine.compiled_content(schema, tid)
                engine.compiled_restricted_content(schema, tid)
    return len(engine.cache)


class SchemaRegistry:
    """A bounded LRU map from schema fingerprints to compiled schemas.

    With a ``store`` (an :class:`~repro.engine.ArtifactStore`), the
    registry gains a durable tier: every registration persists its
    compiled artifact, and construction *restores* the store's resident
    artifacts — so a daemon restart comes back with every previously
    registered schema already compiled and serves warm-level latency on
    the first request wave (see ``benchmarks/bench_cold_start.py``).
    """

    def __init__(
        self,
        max_schemas: int = 64,
        engine_max_entries: Optional[int] = 4096,
        store=None,
        restore: bool = True,
    ):
        if max_schemas <= 0:
            raise ValueError("max_schemas must be positive")
        self.max_schemas = max_schemas
        self.engine_max_entries = engine_max_entries
        self.store = store
        self._entries: "OrderedDict[str, RegisteredSchema]" = OrderedDict()
        self._lock = threading.Lock()
        self._registered = 0
        self._reregistered = 0
        self._register_races = 0
        self._evicted = 0
        self._lookups = 0
        self._lookup_misses = 0
        self._restored = 0
        if store is not None and restore:
            self._restore_from_store()

    def _restore_from_store(self) -> None:
        """Re-install every valid stored artifact as a registered schema.

        Runs at construction (before the server accepts requests), so no
        locking subtleties: most-recently-used artifacts are installed
        last and therefore survive if the store holds more schemas than
        ``max_schemas``.  A corrupt blob is the store's problem (counted
        there, read as a miss) and simply is not restored.
        """
        fingerprints = self.store.fingerprints()  # LRU order, oldest first
        if len(fingerprints) > self.max_schemas:
            fingerprints = fingerprints[-self.max_schemas :]
        for fingerprint in fingerprints:
            artifact = self.store.get(fingerprint)
            if artifact is None:
                continue
            engine = Engine(
                max_entries=self.engine_max_entries,
                backend=artifact.backend,
                store=self.store,
            )
            engine.cache.seed(artifact.entries)
            syntax = self.store.meta(fingerprint).get("syntax", "scmdl")
            self._entries[fingerprint] = RegisteredSchema(
                fingerprint=fingerprint,
                schema=artifact.schema,
                engine=engine,
                syntax=syntax if isinstance(syntax, str) else "scmdl",
                registered_at=time.time(),
                info={"warmed_entries": len(engine.cache), "restored": True},
            )
            self._restored += 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self, text: str, syntax: str = "scmdl", wrap: bool = False
    ) -> RegisteredSchema:
        """Parse, fingerprint, and pre-warm a schema; return its entry.

        Re-registering a schema that is already resident (same
        fingerprint) is cheap: the existing compiled entry is refreshed in
        LRU order and returned, with none of the automata rebuilt.
        """
        if syntax == "scmdl":
            schema = parse_schema(text)
        elif syntax == "dtd":
            schema = parse_dtd(text, wrap=wrap)
        else:
            raise ServiceError(
                f"unknown schema syntax {syntax!r} (expected 'scmdl' or 'dtd')",
                code="bad-request",
            )
        fingerprint = schema.fingerprint()

        with self._lock:
            existing = self._entries.get(fingerprint)
            if existing is not None:
                self._entries.move_to_end(fingerprint)
                self._reregistered += 1
                return existing

        # Compile outside the lock: registrations of distinct schemas
        # must not serialize on each other's automata construction.
        engine = Engine(max_entries=self.engine_max_entries, store=self.store)
        info: Dict[str, object] = {}
        if engine.warm_from_store(schema):
            # Durable tier hit: the compiled working set was installed
            # from disk; nothing to rebuild, nothing to persist.
            info["store_hit"] = True
        else:
            prewarm(schema, engine)
            engine.persist_to_store(schema, syntax=syntax)
        info["warmed_entries"] = len(engine.cache)
        entry = RegisteredSchema(
            fingerprint=fingerprint,
            schema=schema,
            engine=engine,
            syntax=syntax,
            registered_at=time.time(),
            info=info,
        )

        with self._lock:
            racing = self._entries.get(fingerprint)
            if racing is not None:
                # A concurrent register() of the same schema won; keep one
                # entry so counters and cache hits stay coherent.  This
                # thread's parse + pre-warm was duplicate work — count it,
                # so the wasted compile cost is visible in /stats.
                self._entries.move_to_end(fingerprint)
                self._reregistered += 1
                self._register_races += 1
                return racing
            self._entries[fingerprint] = entry
            self._registered += 1
            while len(self._entries) > self.max_schemas:
                self._entries.popitem(last=False)
                self._evicted += 1
            return entry

    # ------------------------------------------------------------------
    # Lookup / eviction
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> RegisteredSchema:
        """The entry for ``fingerprint``; refreshes LRU recency.

        Raises:
            UnknownSchemaError: if no such schema is resident (404).
        """
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ServiceError(
                "request must name a registered schema 'fingerprint'",
                code="bad-request",
            )
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._lookup_misses += 1
                raise UnknownSchemaError(fingerprint)
            self._entries.move_to_end(fingerprint)
            entry.requests += 1
            return entry

    def evict(self, fingerprint: str) -> bool:
        """Drop ``fingerprint``; True if it was resident."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is not None:
                self._evicted += 1
            return entry is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def entries(self) -> List[RegisteredSchema]:
        """A recency-ordered (oldest first) snapshot of resident entries."""
        with self._lock:
            return list(self._entries.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Registry counters plus each resident engine's cache counters."""
        with self._lock:
            entries = list(self._entries.values())
            counters = {
                "resident": len(entries),
                "max_schemas": self.max_schemas,
                "registered": self._registered,
                "reregistered": self._reregistered,
                "register_races": self._register_races,
                "evicted": self._evicted,
                "lookups": self._lookups,
                "lookup_misses": self._lookup_misses,
                "restored": self._restored,
            }
        if self.store is not None:
            counters["store"] = self.store.stats()
        engines = {}
        for entry in entries:
            stats = entry.engine.stats()
            engines[entry.fingerprint] = {
                "backend": entry.engine.backend,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "by_kind": {
                    kind: {"hits": ks.hits, "misses": ks.misses}
                    for kind, ks in sorted(stats.by_kind.items())
                },
            }
        counters["engines"] = engines
        return counters
