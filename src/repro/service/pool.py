"""The multi-process serving tier: a compiler pool behind an async front.

One ``ThreadingHTTPServer`` process caps decision throughput at roughly
one core — the GIL serializes the automata walks no matter how many
threads the registry runs.  This module is the edgedb-style answer: a
**lightweight asyncio frontend** that parses and validates HTTP
requests, answers ``/healthz``, ``/stats``, and registry metadata
locally, and routes every decision request **by schema fingerprint** to
a pool of persistent worker processes.

Topology::

      clients ──HTTP/1.1 keep-alive (pipelining ok)──▶ frontend (asyncio)
                                                          │ fingerprint shard
                                            ┌─────────────┼─────────────┐
                                          pipe           pipe          pipe
                                            │             │             │
                                        worker 0      worker 1      worker N-1
                                       (ServiceState, shard-warmed registry)

Design points, mirroring the edgedb compiler pool:

* **Workers are persistent and warm.**  Each worker owns a full
  :class:`~repro.service.daemon.ServiceState` whose registry restores
  *its shard* of fingerprints from the shared
  :class:`~repro.engine.ArtifactStore` at spawn — so a fresh worker
  (boot or post-crash respawn) answers its first request at warm-path
  latency instead of recompiling schemas.
* **Sticky fingerprint routing.**  ``shard_of(fingerprint)`` assigns
  every schema a home worker; all requests for a fingerprint hit the
  same worker, so its engine cache and decision memo stay hot and no
  compiled artifact is resident twice.  A migration that changes the
  fingerprint pins the new fingerprint to the old one's worker via a
  routing override (the override list is re-applied when that worker is
  respawned).
* **Crash containment.**  A worker dying mid-request answers the
  in-flight request with a structured 503 ``worker-crashed`` envelope,
  and the frontend respawns the worker before accepting further traffic
  for its shard; the respawned worker warms from the artifact store, so
  the next request on the same fingerprint succeeds warm.
* **Merged observability.**  ``/stats`` fans a control op to every
  worker and merges the answers: summed registry counters, the union of
  per-engine cache counters, per-worker liveness/respawn counts, plus
  the frontend's own request metrics.

The frontend itself never runs a decision procedure; its per-request
work is one small JSON parse (for the routing fingerprint) and one pipe
roundtrip, which is what lets worker processes — not the frontend GIL —
set the throughput ceiling.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import tempfile
import threading
import time
import zlib
from http.client import responses as _HTTP_REASONS
from typing import Any, Dict, List, Optional, Tuple

from .daemon import parse_content_length
from .envelope import ServiceError, as_service_error, error_envelope, ok_envelope
from .limits import ServiceLimits
from .metrics import ServiceMetrics

#: Seconds a freshly spawned worker gets to import, warm its shard, and
#: answer the ready handshake.
SPAWN_TIMEOUT_S = 60.0

#: Grace added to the service's max deadline before the frontend
#: declares a silent worker wedged (kills and respawns it).
WORKER_GRACE_S = 30.0


def shard_of(fingerprint: str, num_workers: int) -> int:
    """The home worker index for ``fingerprint``.

    CRC32 rather than ``hash()``: the assignment must be identical in the
    frontend and in every (separately spawned) worker process, and
    ``PYTHONHASHSEED`` randomizes ``hash()`` per process.
    """
    return zlib.crc32(fingerprint.encode("utf-8")) % num_workers


class WorkerCrashed(ServiceError):
    """A pool worker died (or wedged) while holding a request."""

    def __init__(self, worker_id: int, reason: str):
        super().__init__(
            f"pool worker {worker_id} died mid-request ({reason}); "
            f"it has been respawned warm from the artifact store — retry",
            code="worker-crashed",
            status=503,
            detail={"worker": worker_id, "reason": reason},
        )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_main(conn, worker_id: int, num_workers: int, config: dict) -> None:
    """The loop a pool worker runs: recv an op, answer it, repeat.

    Ops (tuples; first element is the op name):

    ``("request", method, path, body)``
        Dispatch through a full :class:`ServiceState`; replies
        ``("response", status, payload_bytes)`` — the envelope is
        JSON-encoded worker-side so N workers serialize in parallel.
    ``("list",)``   → ``("list", [entry descriptions])``
    ``("stats",)``  → ``("stats", {... state stats payload ...})``
    ``("ping", delay_s)`` → ``("pong", pid)`` after sleeping ``delay_s``
        (liveness probe; the crash tests use the delay to hold the
        worker mid-request deterministically).
    ``("shutdown",)`` → ``("bye",)`` and exit.
    """
    # Imports are local so ``spawn`` children pay them once, here, and a
    # traceback during warmup still reaches the handshake below.
    from ..engine import ArtifactStore
    from ..engine.core import BACKEND_ENV_VAR
    from .daemon import ServiceState
    from .registry import SchemaRegistry

    try:
        backend = config.get("backend")
        if backend:
            os.environ[BACKEND_ENV_VAR] = backend
        store = None
        if config.get("store_dir"):
            store = ArtifactStore(root=config["store_dir"], backend=backend)
        extras = frozenset(config.get("extra_fingerprints") or ())

        def shard_filter(fingerprint: str) -> bool:
            return (
                shard_of(fingerprint, num_workers) == worker_id
                or fingerprint in extras
            )

        registry = SchemaRegistry(
            max_schemas=config.get("max_schemas", 64),
            engine_max_entries=config.get("engine_max_entries", 4096),
            store=store,
            restore_filter=shard_filter,
        )
        state = ServiceState(registry=registry, limits=config["limits"])
    except BaseException as error:  # noqa: BLE001 — surface to the frontend
        try:
            conn.send(("failed", f"{type(error).__name__}: {error}"))
        finally:
            return
    conn.send(("ready", os.getpid(), len(registry)))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message[0]
        try:
            if op == "request":
                _, method, path, body = message
                status, envelope = state.handle(method, path, body)
                reply = ("response", status, json.dumps(envelope).encode("utf-8"))
            elif op == "list":
                reply = ("list", [entry.describe() for entry in registry.entries()])
            elif op == "stats":
                payload = state.stats_payload()
                payload["pid"] = os.getpid()
                reply = ("stats", payload)
            elif op == "ping":
                delay = message[1] if len(message) > 1 else 0.0
                if delay:
                    time.sleep(delay)
                reply = ("pong", os.getpid())
            elif op == "shutdown":
                try:
                    conn.send(("bye",))
                finally:
                    break
            else:
                reply = ("error", f"unknown worker op {op!r}")
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break  # frontend went away; nothing left to answer


# ----------------------------------------------------------------------
# The pool (frontend side)
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Frontend-side bookkeeping for one worker process."""

    __slots__ = ("id", "process", "conn", "lock", "pid", "crashes", "requests",
                 "spawned_at")

    def __init__(self, worker_id: int):
        self.id = worker_id
        self.process = None
        self.conn = None
        self.lock = asyncio.Lock()
        self.pid: Optional[int] = None
        self.crashes = 0
        self.requests = 0
        self.spawned_at = 0.0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class CompilerPool:
    """``num_workers`` persistent worker processes plus sticky routing.

    All async methods must run on the frontend's event loop; the sync
    :meth:`spawn_all` / :meth:`terminate_all` run at boot/shutdown when
    no loop is serving.  Per-worker ``asyncio.Lock``s serialize requests
    onto each worker pipe — the pool's concurrency is exactly one
    in-flight decision per worker, the compiler-pool shape.
    """

    def __init__(
        self,
        num_workers: int,
        store_dir: Optional[str],
        backend: Optional[str] = None,
        limits: Optional[ServiceLimits] = None,
        max_schemas: int = 64,
        engine_max_entries: Optional[int] = 4096,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.store_dir = store_dir
        self.backend = backend
        self.limits = limits if limits is not None else ServiceLimits()
        self.max_schemas = max_schemas
        self.engine_max_entries = engine_max_entries
        self.worker_timeout_s = self.limits.max_deadline_s + WORKER_GRACE_S
        # ``spawn`` rather than ``fork``: respawns happen while the
        # frontend runs an event loop plus executor threads, and forking
        # a threaded process is undefined behavior waiting to happen.
        # Workers start warm from the artifact store either way.
        self._ctx = multiprocessing.get_context("spawn")
        self._ensure_child_import_path()
        self._workers = [_WorkerHandle(i) for i in range(num_workers)]
        #: Explicit fingerprint → worker assignments that override
        #: ``shard_of`` (currently: fingerprints created by a migration,
        #: which stay on the predecessor's worker).
        self._routing: Dict[str, int] = {}
        self._respawns = 0
        self._round_robin = itertools.count()

    # -- boot/shutdown (sync) ------------------------------------------

    @staticmethod
    def _ensure_child_import_path() -> None:
        """Make ``repro`` importable in ``spawn`` children.

        The parent may have gotten ``src`` onto ``sys.path`` without
        exporting ``PYTHONPATH`` (pytest ``pythonpath``, editable
        installs); spawned children only inherit the environment.
        """
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = os.environ.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )

    def _worker_config(self, extras: List[str]) -> dict:
        return {
            "store_dir": self.store_dir,
            "backend": self.backend,
            "max_schemas": self.max_schemas,
            "engine_max_entries": self.engine_max_entries,
            "limits": self.limits,
            "extra_fingerprints": extras,
        }

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) ``handle``'s process; blocks until warm."""
        extras = [fp for fp, idx in self._routing.items() if idx == handle.id]
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, handle.id, self.num_workers, self._worker_config(extras)),
            daemon=True,
            name=f"repro-pool-{handle.id}",
        )
        process.start()
        # Close our copy of the child end: once the worker dies, writes
        # fail with EPIPE immediately instead of filling a dead buffer.
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_S):
            process.terminate()
            raise RuntimeError(f"pool worker {handle.id} never became ready")
        message = parent_conn.recv()
        if message[0] != "ready":
            process.join(timeout=5)
            raise RuntimeError(f"pool worker {handle.id} failed to boot: {message[1]}")
        handle.process = process
        handle.conn = parent_conn
        handle.pid = message[1]
        handle.spawned_at = time.time()

    def spawn_all(self) -> None:
        for handle in self._workers:
            self._spawn(handle)

    def terminate_all(self, timeout: float = 5.0) -> None:
        """Best-effort worker shutdown: polite op, then SIGTERM, then join.

        The join budget is measured on the **monotonic** clock: with
        ``time.time()`` an NTP step mid-shutdown either hangs the join
        (clock stepped back, deadline recedes) or expires it instantly
        (clock stepped forward).  Wall clock remains only in the
        human-facing ``spawned_at``/``uptime_s`` fields.
        """
        for handle in self._workers:
            if handle.conn is not None:
                try:
                    handle.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._workers:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None

    # -- routing --------------------------------------------------------

    def route(self, fingerprint: str) -> int:
        index = self._routing.get(fingerprint)
        if index is not None:
            return index
        return shard_of(fingerprint, self.num_workers)

    def any_worker(self) -> int:
        """Round-robin target for requests with no routing fingerprint."""
        return next(self._round_robin) % self.num_workers

    def pin(self, fingerprint: str, worker_id: int) -> None:
        """Pin ``fingerprint`` to ``worker_id`` iff it is off its shard home."""
        if shard_of(fingerprint, self.num_workers) == worker_id:
            self._routing.pop(fingerprint, None)
        else:
            self._routing[fingerprint] = worker_id

    def unpin(self, fingerprint: str) -> None:
        self._routing.pop(fingerprint, None)

    # -- the request path (async, on the frontend loop) -----------------

    async def call(self, worker_id: int, message: tuple,
                   timeout: Optional[float] = None) -> tuple:
        """Send ``message`` to a worker; return its reply tuple.

        Serializes on the worker's lock.  Any transport failure — EOF
        (crash), EPIPE (already dead), or a response timeout (wedged) —
        respawns the worker *while still holding its lock*, so queued
        requests proceed against the fresh warm worker, and raises
        :class:`WorkerCrashed` for the in-flight request.
        """
        handle = self._workers[worker_id]
        timeout = timeout if timeout is not None else self.worker_timeout_s
        async with handle.lock:
            if handle.conn is None:
                # A previous respawn failed outright; try again before
                # serving, so one bad spawn doesn't brick the shard.
                await asyncio.get_running_loop().run_in_executor(
                    None, self._spawn, handle
                )
            try:
                handle.conn.send(message)
                await self._wait_readable(handle.conn.fileno(), timeout)
                reply = handle.conn.recv()
                handle.requests += 1
                return reply
            except (EOFError, OSError, BrokenPipeError) as error:
                reason = type(error).__name__
            except asyncio.TimeoutError:
                reason = f"no response within {timeout:g}s"
            await self._respawn_locked(handle)
            raise WorkerCrashed(worker_id, reason)

    @staticmethod
    async def _wait_readable(fd: int, timeout: float) -> None:
        loop = asyncio.get_running_loop()
        ready: asyncio.Future = loop.create_future()
        loop.add_reader(fd, lambda: ready.done() or ready.set_result(None))
        try:
            await asyncio.wait_for(ready, timeout)
        finally:
            loop.remove_reader(fd)

    async def _respawn_locked(self, handle: _WorkerHandle) -> None:
        """Replace a dead/wedged worker's process (caller holds its lock)."""
        handle.crashes += 1
        self._respawns += 1
        process, conn = handle.process, handle.conn
        handle.process, handle.conn, handle.pid = None, None, None

        def rebuild() -> None:
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
            if conn is not None:
                conn.close()
            self._spawn(handle)

        # Spawning blocks for the child's import + shard warmup; keep the
        # event loop serving other workers meanwhile.
        await asyncio.get_running_loop().run_in_executor(None, rebuild)

    async def request(self, worker_id: int, method: str, path: str,
                      body: bytes) -> Tuple[int, bytes]:
        """Forward an HTTP request; returns ``(status, payload_bytes)``."""
        reply = await self.call(worker_id, ("request", method, path, body))
        if reply[0] != "response":
            raise ServiceError(
                f"worker {worker_id} answered {reply[0]!r} to a request op",
                code="internal",
                status=500,
            )
        return reply[1], reply[2]

    # -- fan-out introspection ------------------------------------------

    async def list_schemas(self) -> List[dict]:
        entries: List[dict] = []
        for handle in self._workers:
            try:
                reply = await self.call(handle.id, ("list",))
                entries.extend(reply[1])
            except ServiceError:
                continue  # a crashed worker has nothing resident
        entries.sort(key=lambda entry: entry.get("fingerprint", ""))
        return entries

    async def merged_stats(self) -> dict:
        """Per-worker stats plus their sum, the ``/stats`` pool section."""
        per_worker: List[dict] = []
        payloads: List[dict] = []
        for handle in self._workers:
            row = {
                "id": handle.id,
                "pid": handle.pid,
                "alive": handle.alive(),
                "crashes": handle.crashes,
                "requests": handle.requests,
            }
            try:
                reply = await self.call(handle.id, ("stats",))
                payload = reply[1]
                row["resident"] = payload["registry"]["resident"]
                row["stats"] = payload
                payloads.append(payload)
            except ServiceError as error:
                row["error"] = error.message
            per_worker.append(row)
        merged_registry = _merge_numeric([p["registry"] for p in payloads])
        merged_limits = _merge_numeric([p["limits"] for p in payloads])
        # The workers' own request metrics (what each worker-side
        # ServiceState observed), merged with the same per-key semantics:
        # counts sum, maxima max, means request-weighted, histogram
        # bounds verbatim.  The frontend's metrics live under "service".
        merged_worker_service = _merge_numeric(
            [p["service"] for p in payloads if isinstance(p.get("service"), dict)]
        )
        return {
            "pool": {
                "workers": self.num_workers,
                "respawns": self._respawns,
                "routing_overrides": len(self._routing),
                "per_worker": per_worker,
            },
            "registry": merged_registry,
            "limits": merged_limits,
            "worker_service": merged_worker_service,
        }

    def describe(self) -> dict:
        return {
            "workers": self.num_workers,
            "alive": sum(1 for handle in self._workers if handle.alive()),
            "respawns": self._respawns,
        }

    @property
    def workers(self) -> List[_WorkerHandle]:
        return self._workers


#: Numeric keys that are *bounds or observed maxima*, not additive
#: counters: merging N workers' stats must take the max, never the sum
#: (two workers each bounded at 64 schemas do not make a 128 bound, and
#: two per-worker latency maxima do not add).
_MAX_KEYS = frozenset((
    "max", "max_ms", "max_schemas", "max_slots", "max_deadline_s",
    "max_body_bytes", "max_batch_items",
))

#: Keys whose values are configuration shared by every worker and must
#: survive the merge verbatim (first occurrence), even when they happen
#: to hold lists of numbers — the histogram bucket *bounds* most of all.
_VERBATIM_KEYS = frozenset(("buckets", "bounds"))

#: Per-bucket observation counts: lists that merge element-wise.
_ELEMENTWISE_KEYS = frozenset(("counts",))


def _merge_numeric(payloads: List[dict], weights: Optional[List[float]] = None) -> dict:
    """Merge worker stat dicts with per-key semantics.

    The naive predecessor summed every numeric leaf, which corrupted the
    non-additive fields: per-worker ``latency_ms.mean`` values were
    *summed* across workers (a 2-worker pool reported roughly double the
    true mean), ``max`` became a sum of maxima, and config bounds like
    ``max_schemas`` inflated with the worker count.  The rules now:

    * plain counters (requests, errors, hits, evictions, ...) **sum**;
    * ``max*`` keys take the **max** (observed maxima and config bounds);
    * ``mean`` merges as the **weighted mean**, weighted by each worker's
      nearest enclosing ``requests``/``batches`` count — and when the
      merged dict carries a full histogram (``counts`` + ``total``), the
      mean and ``percentiles`` are *recomputed* from the merged histogram
      so every derived figure comes from one consistent source;
    * ``buckets``/``bounds`` (bucket boundary lists) are kept verbatim;
    * ``counts`` lists merge element-wise;
    * dicts recurse; engine maps union naturally because shard routing
      keeps their fingerprint keys disjoint; other non-numeric leaves
      (backend names, pids) take the first occurrence.
    """
    payloads = [p for p in payloads if isinstance(p, dict)]
    if weights is None:
        weights = [1.0] * len(payloads)
    # A payload's weight at this level: its own request-ish counter when
    # it has one (endpoint snapshots carry "requests", batch blocks carry
    # "batches"), else the weight inherited from the enclosing dict.
    level_weights: List[float] = []
    for payload, inherited in zip(payloads, weights):
        weight = inherited
        for counter in ("requests", "batches"):
            value = payload.get(counter)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                weight = float(value)
                break
        level_weights.append(weight)

    merged: dict = {}
    seen_keys: List[str] = []
    for payload in payloads:
        for key in payload:
            if key not in merged:
                merged[key] = None
                seen_keys.append(key)

    for key in seen_keys:
        values = [
            (payload[key], weight)
            for payload, weight in zip(payloads, level_weights)
            if key in payload
        ]
        first = values[0][0]
        if key in _VERBATIM_KEYS:
            merged[key] = list(first) if isinstance(first, list) else first
        elif key in _ELEMENTWISE_KEYS and isinstance(first, list):
            width = max(len(v) for v, _w in values if isinstance(v, list))
            summed = [0] * width
            for value, _weight in values:
                if isinstance(value, list):
                    for index, item in enumerate(value):
                        if isinstance(item, (int, float)):
                            summed[index] += item
            merged[key] = summed
        elif isinstance(first, bool):
            merged[key] = first
        elif isinstance(first, (int, float)):
            numbers = [
                (v, w) for v, w in values
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if key in _MAX_KEYS:
                merged[key] = max(v for v, _w in numbers)
            elif key == "mean":
                weight_sum = sum(w for _v, w in numbers)
                merged[key] = (
                    round(sum(v * w for v, w in numbers) / weight_sum, 3)
                    if weight_sum > 0
                    else 0.0
                )
            else:
                merged[key] = sum(v for v, _w in numbers)
        elif isinstance(first, dict):
            merged[key] = _merge_numeric(
                [v for v, _w in values if isinstance(v, dict)],
                [w for v, w in values if isinstance(v, dict)],
            )
        else:
            merged[key] = first

    # A merged histogram is the one consistent source for its derived
    # fields: recompute mean and percentiles from the merged counts so
    # they cannot drift from the buckets a dashboard would plot.
    counts = merged.get("counts")
    if isinstance(counts, list) and "total" in merged:
        from .metrics import LATENCY_BUCKETS_MS, bucket_percentiles

        observations = sum(c for c in counts if isinstance(c, (int, float)))
        total = merged.get("total", 0.0)
        if isinstance(total, (int, float)):
            merged["mean"] = (
                round(total / observations, 3) if observations else 0.0
            )
        if "percentiles" in merged:
            merged["percentiles"] = bucket_percentiles(
                counts, LATENCY_BUCKETS_MS, float(merged.get("max", 0.0) or 0.0)
            )
    return merged


# ----------------------------------------------------------------------
# The asyncio HTTP frontend
# ----------------------------------------------------------------------

class PoolFrontend:
    """Parse/validate/route; never run a decision procedure locally."""

    def __init__(self, pool: CompilerPool, limits: ServiceLimits,
                 metrics: Optional[ServiceMetrics] = None):
        self.pool = pool
        self.limits = limits
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.metrics.mark_started(time.time())

    # -- connection loop ------------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # client went away between requests
                except asyncio.LimitOverrunError:
                    error = ServiceError(
                        "request header block is too large",
                        code="payload-too-large",
                        status=431,
                    )
                    await self._write_error(writer, "?", error, close=True)
                    break
                keep_alive = await self._serve_one(reader, writer, head)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # shutdown cancels parked connections; close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_one(self, reader, writer, head: bytes) -> bool:
        """Parse one request from ``head``, answer it; False closes."""
        request_line, _, header_block = head.decode("latin-1").partition("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            error = ServiceError(
                f"malformed request line: {request_line!r}", code="bad-request"
            )
            await self._write_error(writer, "?", error, close=True)
            return False
        method, target, version = parts
        headers: Dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        command = f"{method} {target.split('?', 1)[0]}"
        try:
            length = parse_content_length(headers.get("content-length"))
            self.limits.check_body_size(length)
        except ServiceError as error:
            # Same contract as the threaded tier: a malformed or
            # oversized Content-Length means untrusted framing — answer
            # the structured error without reading the body, then close.
            await self._write_error(writer, command, error, close=True)
            return False
        body = await reader.readexactly(length) if length else b""
        status, payload = await self.dispatch(method, target, body)
        wants_close = (
            headers.get("connection", "").lower() == "close"
            or version.upper() == "HTTP/1.0"
        )
        await self._write(writer, status, payload, close=wants_close)
        return not wants_close

    # -- dispatch -------------------------------------------------------

    async def dispatch(self, method: str, target: str,
                       body: bytes) -> Tuple[int, bytes]:
        """One request in, ``(status, json_payload_bytes)`` out; no raise."""
        path = target.split("?", 1)[0].rstrip("/") or "/"
        command = f"{method} {path}"
        started = time.perf_counter()
        try:
            status, payload = await self._dispatch(method, path, command, body)
        except ServiceError as error:
            status = error.status
            payload = _encode(error_envelope(command, error))
        except Exception as error:  # noqa: BLE001 — frontend must not die
            mapped = as_service_error(error)
            status = mapped.status
            payload = _encode(error_envelope(command, mapped))
        self.metrics.observe(command, status, time.perf_counter() - started)
        return status, payload

    async def _dispatch(self, method: str, path: str, command: str,
                        body: bytes) -> Tuple[int, bytes]:
        if path == "/healthz":
            self._check_method(method, "GET", path)
            return 200, _encode(ok_envelope(command, self.healthz_payload()))
        if path == "/stats":
            self._check_method(method, "GET", path)
            merged = await self.pool.merged_stats()
            payload = {"service": self.metrics.snapshot(), **merged}
            payload["pool"]["mode"] = "pool"
            return 200, _encode(ok_envelope(command, payload))
        if path == "/schemas" and method == "GET":
            schemas = await self.pool.list_schemas()
            return 200, _encode(ok_envelope(command, {"schemas": schemas}))
        if path.startswith("/schemas/"):
            return await self._dispatch_schema_subpath(method, path, body)
        if path == "/schemas":  # POST — fingerprint to find the shard owner
            self._check_method(method, "POST", path)
            return await self._dispatch_register(body)
        if method == "POST":
            payload = _decode_json(body)
            fingerprint = payload.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                worker_id = self.pool.route(fingerprint)
            else:
                # /evaluate without a schema, or an unknown endpoint the
                # worker will 404 — any worker answers identically.
                worker_id = self.pool.any_worker()
            return await self.pool.request(worker_id, method, path, body)
        # Unknown GET/DELETE: let a worker produce the canonical 404/405.
        return await self.pool.request(self.pool.any_worker(), method, path, body)

    async def _dispatch_register(self, body: bytes) -> Tuple[int, bytes]:
        from .registry import parse_schema_text

        payload = _decode_json(body)
        text = payload.get("schema")
        syntax = payload.get("syntax", "scmdl")
        if isinstance(text, str) and text and isinstance(syntax, str):
            # Parse locally — this both validates at the edge (a parse
            # error never reaches a worker) and yields the fingerprint
            # that names the shard owner.
            schema = parse_schema_text(
                text, syntax=syntax, wrap=bool(payload.get("wrap", False))
            )
            fingerprint = schema.fingerprint()
            worker_id = self.pool.route(fingerprint)
        else:
            # Ill-shaped request: any worker renders the canonical 400.
            fingerprint = None
            worker_id = self.pool.any_worker()
        status, reply = await self.pool.request(worker_id, "POST", "/schemas", body)
        if status == 200 and fingerprint is not None:
            self.pool.pin(fingerprint, worker_id)
        return status, reply

    async def _dispatch_schema_subpath(self, method: str, path: str,
                                       body: bytes) -> Tuple[int, bytes]:
        rest = path[len("/schemas/"):]
        if rest.endswith("/migrate"):
            fingerprint = rest[: -len("/migrate")]
        elif rest.endswith("/history"):
            fingerprint = rest[: -len("/history")]
        elif "/" not in rest:
            fingerprint = rest
        else:
            raise ServiceError(f"no such endpoint: {path}", code="not-found",
                               status=404)
        worker_id = self.pool.route(fingerprint)
        status, reply = await self.pool.request(worker_id, method, path, body)
        if status == 200 and method == "DELETE":
            self.pool.unpin(fingerprint)
        elif status == 200 and rest.endswith("/migrate"):
            # An accepted migration re-keys the entry; keep routing the
            # new fingerprint to the worker that now holds it.
            try:
                envelope = json.loads(reply)
                result = envelope.get("result") or {}
                new_fingerprint = result.get("new_fingerprint")
                if result.get("accepted") and isinstance(new_fingerprint, str):
                    if new_fingerprint != fingerprint:
                        self.pool.pin(new_fingerprint, worker_id)
                        self.pool.unpin(fingerprint)
            except (ValueError, AttributeError):
                pass
        return status, reply

    @staticmethod
    def _check_method(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ServiceError(
                f"{path} only supports {expected}",
                code="method-not-allowed",
                status=405,
            )

    def healthz_payload(self) -> dict:
        started = self.metrics.started_at()
        payload = {
            "status": "ok",
            "uptime_s": round(time.time() - started, 3) if started else 0.0,
            "mode": "pool",
        }
        payload.update(self.pool.describe())
        return payload

    # -- response writing -----------------------------------------------

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, status: int, payload: bytes,
                     close: bool = False) -> None:
        reason = _HTTP_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{'Connection: close' + chr(13) + chr(10) if close else ''}"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client gave up; nothing to salvage

    async def _write_error(self, writer, command: str, error: ServiceError,
                           close: bool = False) -> None:
        self.metrics.observe(command, error.status, 0.0)
        await self._write(
            writer, error.status, _encode(error_envelope(command, error)),
            close=close,
        )


def _encode(envelope: dict) -> bytes:
    return json.dumps(envelope).encode("utf-8")


def _decode_json(body: bytes) -> Dict[str, Any]:
    """Frontend-side body validation, mirroring ``ServiceState._decode_body``."""
    if not body:
        raise ServiceError("request body must be a JSON object", code="bad-request")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(
            f"request body is not valid JSON: {error}", code="bad-request"
        ) from None
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object", code="bad-request")
    return payload


# ----------------------------------------------------------------------
# The public service object
# ----------------------------------------------------------------------


class PoolService:
    """The pool-mode daemon: asyncio frontend + compiler pool.

    Interface-compatible with :class:`~repro.service.daemon.TypedQueryService`
    (``start``/``shutdown``/context manager, ``host``/``port``/``address``),
    so tests and benchmarks drive either tier through the same code.

    Without an explicit ``store_dir`` a private temporary store is
    created (and removed at shutdown): pool mode *requires* a store —
    it is how respawned workers come back warm.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store_dir: Optional[str] = None,
        backend: Optional[str] = None,
        limits: Optional[ServiceLimits] = None,
        max_schemas: int = 64,
        engine_max_entries: Optional[int] = 4096,
    ):
        self._requested_host = host
        self._requested_port = port
        self._owns_store = store_dir is None
        if store_dir is None:
            store_dir = tempfile.mkdtemp(prefix="repro-pool-store-")
        self.store_dir = store_dir
        self.limits = limits if limits is not None else ServiceLimits()
        self.pool = CompilerPool(
            num_workers=workers,
            store_dir=store_dir,
            backend=backend,
            limits=self.limits,
            max_schemas=max_schemas,
            engine_max_entries=engine_max_entries,
        )
        self.frontend = PoolFrontend(self.pool, self.limits)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "PoolService":
        self.pool.spawn_all()  # block here: serve only once workers are warm
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True, name="repro-pool-frontend"
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_server(), self._loop)
        self._host, self._port = future.result(timeout=30)
        return self

    async def _start_server(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self.frontend.handle_connection,
            host=self._requested_host,
            port=self._requested_port,
        )
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    def shutdown(self) -> None:
        if self._loop is not None:
            if self._server is not None:
                async def close_server() -> None:
                    self._server.close()
                    await self._server.wait_closed()
                    # Idle keep-alive connections sit parked in
                    # ``readuntil``; cancel them so nothing survives
                    # into a closed loop.
                    current = asyncio.current_task()
                    pending = [
                        task for task in asyncio.all_tasks()
                        if task is not current and not task.done()
                    ]
                    for task in pending:
                        task.cancel()
                    if pending:
                        await asyncio.gather(*pending, return_exceptions=True)

                asyncio.run_coroutine_threadsafe(
                    close_server(), self._loop
                ).result(timeout=10)
                self._server = None
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
                self._thread = None
            self._loop.close()
            self._loop = None
        self.pool.terminate_all()
        if self._owns_store:
            import shutil

            shutil.rmtree(self.store_dir, ignore_errors=True)

    def __enter__(self) -> "PoolService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- addressing -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._host if self._host is not None else self._requested_host

    @property
    def port(self) -> int:
        return self._port if self._port is not None else self._requested_port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- test/diagnostic bridge (callable from any thread) ---------------

    def submit(self, worker_id: int, message: tuple,
               timeout: Optional[float] = None):
        """Run one pool op from outside the loop thread; used by tests."""
        if self._loop is None:
            raise RuntimeError("service is not started")
        future = asyncio.run_coroutine_threadsafe(
            self.pool.call(worker_id, message, timeout), self._loop
        )
        return future.result()

    def serve_forever(self) -> None:
        """Blocking mode for the CLI: start, then wait for interrupt."""
        self.start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()


def serve_pool(
    host: str = "127.0.0.1",
    port: int = 8421,
    workers: int = 2,
    store_dir: Optional[str] = None,
    backend: Optional[str] = None,
    limits: Optional[ServiceLimits] = None,
    max_schemas: int = 64,
) -> None:
    """Blocking entry point used by ``repro serve --workers N``."""
    service = PoolService(
        host=host,
        port=port,
        workers=workers,
        store_dir=store_dir,
        backend=backend,
        limits=limits,
        max_schemas=max_schemas,
    )
    print(
        f"typed-query pool service: {workers} workers, store {service.store_dir}",
        flush=True,
    )
    service.start()
    print(f"typed-query service listening on {service.address}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
