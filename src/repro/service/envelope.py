"""The wire format shared by the daemon and the CLI's ``--json`` mode.

Every response — from an HTTP endpoint or from ``repro <cmd> --json`` —
is one *envelope*: a JSON object with a fixed top-level shape, so that
clients can dispatch on ``ok`` without knowing which operation ran::

    {"ok": true,  "command": "satisfiable", "result": {...}, "error": null,
     "meta": {"elapsed_ms": 1.8}}
    {"ok": false, "command": "satisfiable", "result": null,
     "error": {"code": "timeout", "status": 503, "message": "..."},
     "meta": {"elapsed_ms": 1001.2}}

``error.code`` is a short stable machine string (see ``ERROR_CODES``);
``error.status`` is the HTTP status the daemon answered with (the CLI
reuses it in the envelope but maps outcomes to exit codes 0/1/2).

:class:`ServiceError` is the exception face of an error envelope: service
handlers raise it (or a subclass) and the transport layer renders it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Envelope schema version, bumped on incompatible shape changes.
ENVELOPE_VERSION = 1

#: The stable error codes an envelope may carry.
ERROR_CODES = (
    "bad-request",      # malformed JSON body / missing or ill-typed field
    "parse-error",      # schema / query / data text failed to parse
    "unknown-schema",   # fingerprint not (or no longer) registered
    "not-found",        # no such endpoint
    "method-not-allowed",
    "payload-too-large",
    "timeout",          # per-request deadline exceeded
    "busy",             # no worker slot free within the deadline
    "worker-crashed",   # a pool worker died mid-request (it is respawned)
    "unsupported",      # operation undefined for this input (e.g. joins)
    "internal",
)


class ServiceError(Exception):
    """An error that renders as a structured error envelope.

    Args:
        message: human-readable description.
        code: one of :data:`ERROR_CODES`.
        status: the HTTP status to answer with.
        detail: optional JSON-able extras (offending field, limit, ...).
    """

    def __init__(
        self,
        message: str,
        code: str = "bad-request",
        status: int = 400,
        detail: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.message = message
        self.code = code
        self.status = status
        self.detail = detail

    def to_error(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "code": self.code,
            "status": self.status,
            "message": self.message,
        }
        if self.detail:
            error["detail"] = self.detail
        return error


def positive_int_field(body: Dict[str, Any], field: str) -> Optional[int]:
    """The optional positive-integer field ``field`` of a JSON body.

    JSON booleans satisfy ``isinstance(value, int)`` in Python
    (``True == 1``), so a naive integer check silently accepts ``true``
    as ``1``.  Every optional numeric field in the service routes through
    here so that hole is closed in one place.

    Returns ``None`` when the field is absent or ``null``.

    Raises:
        ServiceError: 400 ``bad-request`` for booleans, non-integers, and
            non-positive values.
    """
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ServiceError(
            f"{field!r} must be a positive integer", code="bad-request"
        )
    return value


def ok_envelope(
    command: str,
    result: Any,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A success envelope for ``command`` carrying ``result``."""
    return {
        "version": ENVELOPE_VERSION,
        "ok": True,
        "command": command,
        "result": result,
        "error": None,
        "meta": meta or {},
    }


def error_envelope(
    command: str,
    error: ServiceError,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """An error envelope for ``command`` describing ``error``."""
    return {
        "version": ENVELOPE_VERSION,
        "ok": False,
        "command": command,
        "result": None,
        "error": error.to_error(),
        "meta": meta or {},
    }


def as_service_error(exc: BaseException) -> ServiceError:
    """Map an arbitrary exception to the :class:`ServiceError` it renders as.

    Parse-layer failures (lexer, schema, DTD, XML, query, data syntax —
    ``ValueError`` subclasses or builtin ``SyntaxError`` in this package)
    become 400 ``parse-error``; anything else is a 500 ``internal``.
    """
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, (ValueError, SyntaxError)):
        return ServiceError(str(exc), code="parse-error", status=400)
    return ServiceError(
        f"{type(exc).__name__}: {exc}", code="internal", status=500
    )
