"""Per-endpoint request metrics for the typed-query daemon.

:class:`ServiceMetrics` collects, per endpoint: request and error counts,
a count per status class, and a fixed-bucket latency histogram (upper
bounds in milliseconds, last bucket unbounded).  Everything is guarded by
one lock — observations are a handful of integer increments, so a single
mutex is cheaper than sharded counters at this scale.

``/stats`` merges a :meth:`snapshot` with the schema registry's counters
and each registered engine's per-kind cache hit/miss numbers (see
:meth:`repro.service.daemon.ServiceState.stats_payload`), which is what
lets a benchmark assert "warm requests hit the automata cache" from the
outside, with no process introspection.

Each endpoint snapshot carries a ``percentiles`` block (p50/p95/p99)
interpolated from the histogram buckets.  These are *estimates* — exact
within a bucket's width, with the unbounded tail bucket closed at the
observed maximum; the replay harness (``repro replay``) records exact
client-side percentiles from raw samples and reports both.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Histogram bucket upper bounds, in milliseconds (last bucket = +inf).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: The percentile points every latency snapshot reports.
PERCENTILE_POINTS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def bucket_percentiles(
    counts: Sequence[int],
    bounds: Sequence[float] = LATENCY_BUCKETS_MS,
    max_value: float = 0.0,
) -> Dict[str, float]:
    """p50/p95/p99 interpolated from a fixed-bucket latency histogram.

    Linear interpolation inside the containing bucket (the convention
    Prometheus' ``histogram_quantile`` uses); the unbounded last bucket
    is closed at ``max_value`` (the observed maximum), so an estimate can
    never exceed what was actually seen.  All zeros when no observations.
    """
    total = sum(counts)
    result = {name: 0.0 for name, _q in PERCENTILE_POINTS}
    if total <= 0:
        return result
    for name, q in PERCENTILE_POINTS:
        rank = q * total
        cumulative = 0
        estimate = float(max_value)
        for index, count in enumerate(counts):
            if not count:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                lower = bounds[index - 1] if index > 0 else 0.0
                if index < len(bounds):
                    upper = bounds[index]
                else:
                    upper = max(float(max_value), lower)
                fraction = (rank - previous) / count
                estimate = lower + (upper - lower) * fraction
                break
        result[name] = round(min(estimate, float(max_value)), 3)
    return result


class _EndpointMetrics:
    __slots__ = ("requests", "errors", "by_status", "buckets", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.by_status: Dict[str, int] = {}
        self.buckets: List[int] = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, status: int, elapsed_ms: float) -> None:
        self.requests += 1
        if status >= 400:
            self.errors += 1
        key = str(status)
        self.by_status[key] = self.by_status.get(key, 0) + 1
        index = len(LATENCY_BUCKETS_MS)
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if elapsed_ms <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.total_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)

    def snapshot(self) -> dict:
        # Derive every reported latency figure from ONE source: the
        # 3-decimal-rounded totals the snapshot itself publishes.  The
        # mean used to divide the *unrounded* total, so a scraper
        # recomputing mean = total / requests from the snapshot could
        # disagree with the reported mean by a rounding ulp.
        total = round(self.total_ms, 3)
        maximum = round(self.max_ms, 3)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "by_status": dict(self.by_status),
            "latency_ms": {
                "buckets": list(LATENCY_BUCKETS_MS) + ["inf"],
                "counts": list(self.buckets),
                "total": total,
                "mean": round(total / self.requests, 3) if self.requests else 0.0,
                "max": maximum,
                "percentiles": bucket_percentiles(
                    self.buckets, LATENCY_BUCKETS_MS, maximum
                ),
            },
        }


class ServiceMetrics:
    """Thread-safe request counters and latency histograms, per endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointMetrics] = {}
        self._started = None  # type: Optional[float]
        self._batches = 0
        self._batch_items = 0
        self._batch_item_errors = 0
        self._batch_total_ms = 0.0
        self._batch_max_ms = 0.0
        self._migrations = 0
        self._migrations_accepted = 0
        self._migrations_rejected = 0
        self._migration_queries = 0
        self._migration_breaks = 0
        self._unregisters = 0
        self._clock_skew = 0

    def mark_started(self, now: float) -> None:
        """Record the server start time (``time.time()``) for uptime."""
        with self._lock:
            self._started = now

    def started_at(self) -> Optional[float]:
        with self._lock:
            return self._started

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        """Record one finished request against ``endpoint``.

        A negative ``elapsed_s`` means the caller measured with a clock
        that stepped backwards mid-request (wall clock + NTP, or a buggy
        harness); it is clamped to zero and counted under ``clock_skew``
        rather than poisoning the totals with negative durations.
        """
        with self._lock:
            if elapsed_s < 0.0:
                self._clock_skew += 1
                elapsed_s = 0.0
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.observe(status, elapsed_s * 1000.0)

    def record_batch(self, items: int, item_errors: int, elapsed_s: float) -> None:
        """Record one finished ``/batch`` request's per-item outcome.

        ``observe`` already counts the HTTP request itself; this tracks
        what that one request *hid*: how many items it decided and how
        many of them failed individually — which per-endpoint request
        counters cannot see.  Negative durations clamp to zero exactly
        like :meth:`observe`.
        """
        with self._lock:
            if elapsed_s < 0.0:
                self._clock_skew += 1
                elapsed_s = 0.0
            elapsed_ms = elapsed_s * 1000.0
            self._batches += 1
            self._batch_items += items
            self._batch_item_errors += item_errors
            self._batch_total_ms += elapsed_ms
            self._batch_max_ms = max(self._batch_max_ms, elapsed_ms)

    def record_migration(self, accepted: bool, queries: int, breaks: int) -> None:
        """Record one finished ``/schemas/{fp}/migrate`` analysis.

        Tracks the delta subsystem's decisions: how many migrations were
        analyzed, how many met their policy, and how many registered
        queries the rejected ones would have broken.
        """
        with self._lock:
            self._migrations += 1
            if accepted:
                self._migrations_accepted += 1
            else:
                self._migrations_rejected += 1
            self._migration_queries += queries
            self._migration_breaks += breaks

    def record_unregister(self) -> None:
        """Record one explicit ``DELETE /schemas/{fp}``."""
        with self._lock:
            self._unregisters += 1

    def snapshot(self) -> dict:
        """All per-endpoint counters plus request/error and batch totals."""
        with self._lock:
            endpoints = {
                name: metrics.snapshot()
                for name, metrics in sorted(self._endpoints.items())
            }
            batch_total = round(self._batch_total_ms, 3)
            batch = {
                "batches": self._batches,
                "items": self._batch_items,
                "item_errors": self._batch_item_errors,
                "latency_ms": {
                    "total": batch_total,
                    "mean": round(batch_total / self._batches, 3)
                    if self._batches
                    else 0.0,
                    "max": round(self._batch_max_ms, 3),
                },
            }
            delta = {
                "migrations": self._migrations,
                "accepted": self._migrations_accepted,
                "rejected": self._migrations_rejected,
                "queries_analyzed": self._migration_queries,
                "queries_broken": self._migration_breaks,
                "unregisters": self._unregisters,
            }
            clock_skew = self._clock_skew
        return {
            "requests": sum(e["requests"] for e in endpoints.values()),
            "errors": sum(e["errors"] for e in endpoints.values()),
            "clock_skew": clock_skew,
            "batch": batch,
            "delta": delta,
            "endpoints": endpoints,
        }
