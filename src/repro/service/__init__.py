"""The typed-query service: the paper's decision problems as a daemon.

A stdlib-only HTTP/JSON server (:class:`TypedQueryService` /
:func:`serve`) over a concurrent, fingerprint-keyed
:class:`SchemaRegistry` that keeps one pre-warmed compilation
:class:`~repro.engine.Engine` per registered schema — so satisfiability,
type checking, inference, feedback, classification, conformance, and
evaluation requests pay schema parsing and automata construction once
per schema, not once per request.  See ``docs/service.md``.

Two serving tiers share that state machine: the single-process threaded
tier above, and a multi-process pool tier (:class:`PoolService` /
``repro serve --workers N``) that routes requests by schema fingerprint
to persistent worker processes warmed from the artifact store — see
:mod:`repro.service.pool`.
"""

from .client import ServiceClient, ServiceResponseError
from .daemon import ServiceState, TypedQueryService, serve
from .pool import CompilerPool, PoolService, WorkerCrashed, serve_pool, shard_of
from .envelope import (
    ENVELOPE_VERSION,
    ERROR_CODES,
    ServiceError,
    as_service_error,
    error_envelope,
    ok_envelope,
)
from .limits import (
    DeadlineExceeded,
    DeadlineRunner,
    PayloadTooLarge,
    ServiceBusy,
    ServiceLimits,
)
from .metrics import LATENCY_BUCKETS_MS, ServiceMetrics
from .registry import RegisteredSchema, SchemaRegistry, UnknownSchemaError, prewarm

__all__ = [
    "ENVELOPE_VERSION",
    "ERROR_CODES",
    "CompilerPool",
    "DeadlineExceeded",
    "DeadlineRunner",
    "LATENCY_BUCKETS_MS",
    "PayloadTooLarge",
    "PoolService",
    "RegisteredSchema",
    "SchemaRegistry",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "ServiceMetrics",
    "ServiceResponseError",
    "ServiceState",
    "TypedQueryService",
    "UnknownSchemaError",
    "WorkerCrashed",
    "as_service_error",
    "error_envelope",
    "ok_envelope",
    "prewarm",
    "serve",
    "serve_pool",
    "shard_of",
]
