"""The typed-query service: the paper's decision problems as a daemon.

A stdlib-only HTTP/JSON server (:class:`TypedQueryService` /
:func:`serve`) over a concurrent, fingerprint-keyed
:class:`SchemaRegistry` that keeps one pre-warmed compilation
:class:`~repro.engine.Engine` per registered schema — so satisfiability,
type checking, inference, feedback, classification, conformance, and
evaluation requests pay schema parsing and automata construction once
per schema, not once per request.  See ``docs/service.md``.
"""

from .client import ServiceClient, ServiceResponseError
from .daemon import ServiceState, TypedQueryService, serve
from .envelope import (
    ENVELOPE_VERSION,
    ERROR_CODES,
    ServiceError,
    as_service_error,
    error_envelope,
    ok_envelope,
)
from .limits import (
    DeadlineExceeded,
    DeadlineRunner,
    PayloadTooLarge,
    ServiceBusy,
    ServiceLimits,
)
from .metrics import LATENCY_BUCKETS_MS, ServiceMetrics
from .registry import RegisteredSchema, SchemaRegistry, UnknownSchemaError, prewarm

__all__ = [
    "ENVELOPE_VERSION",
    "ERROR_CODES",
    "DeadlineExceeded",
    "DeadlineRunner",
    "LATENCY_BUCKETS_MS",
    "PayloadTooLarge",
    "RegisteredSchema",
    "SchemaRegistry",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "ServiceMetrics",
    "ServiceResponseError",
    "ServiceState",
    "TypedQueryService",
    "UnknownSchemaError",
    "as_service_error",
    "error_envelope",
    "ok_envelope",
    "prewarm",
    "serve",
]
