"""Per-request resource limits: deadlines, body caps, worker slots.

The paper's Table 2 has NP-complete cells, and the daemon accepts
arbitrary (schema, query) pairs — so any request may be a 3SAT instance
in disguise.  A production service cannot let one such request pin a
worker forever.  This module gives every request:

* a **wall-clock deadline** (client-settable per request, clamped to a
  server maximum).  The decision procedure runs on a detached daemon
  thread; if the deadline passes, the HTTP worker answers a structured
  503 ``timeout`` envelope and is immediately reclaimed for new requests.
  Pure-Python CPU-bound work cannot be cooperatively cancelled, so the
  detached thread runs to completion in the background — which is why a
  bounded **slot semaphore** caps how many computations (live or
  abandoned) may exist at once; when no slot frees up in time the server
  answers 503 ``busy`` instead of queueing unboundedly.
* an **input size cap** on request bodies (413 ``payload-too-large``).

All three failure modes surface as :class:`~repro.service.envelope.ServiceError`
subclasses and therefore as machine-readable error envelopes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .envelope import ServiceError


class DeadlineExceeded(ServiceError):
    """The per-request wall-clock deadline passed before an answer."""

    def __init__(self, deadline_s: float):
        super().__init__(
            f"request exceeded its {deadline_s:g}s deadline; "
            f"the computation was detached and the worker reclaimed",
            code="timeout",
            status=503,
            detail={"deadline_s": deadline_s},
        )


class ServiceBusy(ServiceError):
    """All computation slots are taken (live or abandoned-by-timeout)."""

    def __init__(self, slots: int):
        super().__init__(
            f"all {slots} computation slots are busy; retry later",
            code="busy",
            status=503,
            detail={"slots": slots},
        )


class PayloadTooLarge(ServiceError):
    """The request body exceeds the configured cap."""

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"request body of {size} bytes exceeds the {limit}-byte cap",
            code="payload-too-large",
            status=413,
            detail={"size": size, "limit": limit},
        )


@dataclass(frozen=True)
class ServiceLimits:
    """The knob set enforced on every request.

    Attributes:
        max_body_bytes: reject bodies larger than this (413).
        default_deadline_s: deadline when the request names none.
        max_deadline_s: ceiling a request's own ``deadline`` is clamped to.
        max_slots: concurrent computations (including ones abandoned by a
            timeout but still burning CPU) the server will carry.
        slot_wait_s: how long a request waits for a free slot before 503
            ``busy`` — kept short so saturation is visible, not queued.
        max_batch_items: largest item list ``POST /batch`` accepts; the
            whole batch occupies one computation slot, so this bounds the
            work a single slot may hide.
        batch_workers: threads a ``/batch`` request fans its items over
            (all sharing the schema's pre-warmed engine).
    """

    max_body_bytes: int = 1 << 20
    default_deadline_s: float = 30.0
    max_deadline_s: float = 120.0
    max_slots: int = 32
    slot_wait_s: float = 1.0
    max_batch_items: int = 256
    batch_workers: int = 4

    def clamp_deadline(self, requested: Optional[float]) -> float:
        """The effective deadline for a request asking for ``requested``.

        JSON booleans satisfy ``isinstance(value, int)`` (``True == 1``),
        so they are rejected explicitly — ``{"deadline": true}`` must be a
        400 ``bad-request``, not a silent 1-second deadline.
        """
        if requested is None:
            return self.default_deadline_s
        if (
            isinstance(requested, bool)
            or not isinstance(requested, (int, float))
            or requested <= 0
        ):
            raise ServiceError(
                "deadline must be a positive number of seconds",
                code="bad-request",
            )
        return min(float(requested), self.max_deadline_s)

    def check_body_size(self, size: int) -> None:
        if size > self.max_body_bytes:
            raise PayloadTooLarge(size, self.max_body_bytes)


class DeadlineRunner:
    """Runs callables under a deadline on detached daemon threads.

    One runner per server; the semaphore is the global computation-slot
    budget.  :meth:`call` either returns the callable's result, re-raises
    its exception, or raises :class:`DeadlineExceeded` /
    :class:`ServiceBusy`.
    """

    def __init__(self, limits: ServiceLimits):
        self.limits = limits
        self._slots = threading.BoundedSemaphore(limits.max_slots)
        self._lock = threading.Lock()
        self._timeouts = 0
        self._detached = 0  # threads currently running past their deadline

    def call(self, fn: Callable[[], Any], deadline_s: float) -> Any:
        if not self._slots.acquire(timeout=self.limits.slot_wait_s):
            raise ServiceBusy(self.limits.max_slots)
        box: dict = {}
        done = threading.Event()
        abandoned = threading.Event()

        def work() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # propagated to the caller below
                box["error"] = exc
            finally:
                # done and abandoned are written/read under one lock so
                # exactly one side accounts for this thread: either the
                # caller sees done first and takes the result, or it
                # abandons first and this worker pays the decrement.
                with self._lock:
                    done.set()
                    if abandoned.is_set():
                        self._detached -= 1
                self._slots.release()

        thread = threading.Thread(target=work, daemon=True, name="repro-compute")
        thread.start()
        timed_out = False
        if not done.wait(timeout=deadline_s):
            with self._lock:
                # The worker may finish between the wait timing out and
                # this acquisition; deciding on done under the lock keeps
                # the detached counter exact and, when the answer did
                # arrive, returns it instead of a spurious timeout.
                if not done.is_set():
                    self._timeouts += 1
                    self._detached += 1
                    abandoned.set()
                    timed_out = True
        if timed_out:
            raise DeadlineExceeded(deadline_s)
        if "error" in box:
            raise box["error"]
        return box["value"]

    def stats(self) -> dict:
        with self._lock:
            return {
                "timeouts": self._timeouts,
                "detached": self._detached,
                "max_slots": self.limits.max_slots,
            }
