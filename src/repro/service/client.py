"""A thin stdlib client for the typed-query daemon.

Used by the test suite, the throughput benchmark, and the quickstart
example; also convenient interactively::

    from repro.service import ServiceClient
    client = ServiceClient("127.0.0.1", 8421)
    fp = client.register_schema(open("schema.scmdl").read())["fingerprint"]
    client.satisfiable(fp, "SELECT X WHERE Root = [paper -> X]")

Each helper returns the envelope's ``result`` object on success and
raises :class:`ServiceResponseError` (carrying the structured ``error``
object and HTTP status) on an error envelope.  :meth:`ServiceClient.request`
is the raw layer returning ``(status, envelope)`` for callers that want
to inspect failures without exceptions.
"""

from __future__ import annotations

import json
import socket
import threading
from http.client import BadStatusLine, HTTPConnection, ResponseNotReady
from typing import Any, Dict, Optional, Tuple

#: Transport failures that mean "the reused socket went stale" — the
#: server closed an idle keep-alive connection, or the process on the
#: other end was restarted.  Exactly one retry on a fresh connection.
_STALE_SOCKET_ERRORS = (
    BadStatusLine,
    ResponseNotReady,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class ServiceResponseError(Exception):
    """The daemon answered with an error envelope."""

    def __init__(self, status: int, error: Dict[str, Any], envelope: Dict[str, Any]):
        code = error.get("code", "internal")
        message = error.get("message", "unknown error")
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.error = error
        self.envelope = envelope


class ServiceClient:
    """One daemon address; reuses one keep-alive connection per thread.

    The daemon speaks HTTP/1.1 keep-alive, so opening a fresh TCP
    connection per call (the old behavior) paid a handshake on every
    request — a third of the warm-path latency.  The connection is held
    in thread-local storage, so one client instance may be shared across
    threads; a request that fails on a stale socket (the server closed an
    idle connection) is retried exactly once on a fresh one, and any
    error still tears the connection down so the next call starts clean.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
            connection.connect()
            # The request is tiny and the response is awaited immediately;
            # Nagle would stall the body behind a delayed ACK.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Drop this thread's cached connection (idempotent)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            self._local.connection = None
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Send one request; return ``(http_status, envelope)``."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                if response.will_close:
                    self.close()
                return response.status, json.loads(raw.decode("utf-8"))
            except _STALE_SOCKET_ERRORS:
                # finally-style cleanup, then one retry on a fresh socket.
                self.close()
                if attempt:
                    raise
            except Exception:
                # Anything else (timeout, refused, bad JSON): close so the
                # next call reconnects, and surface the error unchanged.
                self.close()
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def call(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`request` but unwraps the envelope or raises."""
        status, envelope = self.request(method, path, payload)
        if not envelope.get("ok"):
            raise ServiceResponseError(status, envelope.get("error") or {}, envelope)
        return envelope["result"]

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.call("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.call("GET", "/stats")

    def register_schema(
        self, schema_text: str, syntax: str = "scmdl", wrap: bool = False
    ) -> Dict[str, Any]:
        return self.call(
            "POST",
            "/schemas",
            {"schema": schema_text, "syntax": syntax, "wrap": wrap},
        )

    def list_schemas(self) -> Dict[str, Any]:
        return self.call("GET", "/schemas")

    def evict_schema(self, fingerprint: str) -> Dict[str, Any]:
        return self.call("DELETE", f"/schemas/{fingerprint}")

    def unregister(self, fingerprint: str) -> Dict[str, Any]:
        """Drop the registry entry *and* its stored artifact."""
        return self.call("DELETE", f"/schemas/{fingerprint}")

    def migrate(
        self,
        fingerprint: str,
        schema_text: str,
        syntax: str = "scmdl",
        wrap: bool = False,
        queries: Optional[list] = None,
        policy: str = "compatible",
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Analyze (and, if the policy accepts, apply) a migration."""
        payload: Dict[str, Any] = {
            "schema": schema_text,
            "syntax": syntax,
            "wrap": wrap,
            "policy": policy,
        }
        if queries:
            payload["queries"] = list(queries)
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", f"/schemas/{fingerprint}/migrate", payload)

    def history(self, fingerprint: str) -> Dict[str, Any]:
        """The entry's bounded version chain."""
        return self.call("GET", f"/schemas/{fingerprint}/history")

    def satisfiable(
        self,
        fingerprint: str,
        query: str,
        pins: Optional[Dict[str, str]] = None,
        witness: bool = False,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"fingerprint": fingerprint, "query": query}
        if pins:
            payload["pins"] = pins
        if witness:
            payload["witness"] = True
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/satisfiable", payload)

    def check(
        self,
        fingerprint: str,
        query: str,
        assignment: Dict[str, str],
        total: bool = False,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "query": query,
            "assignment": assignment,
            "total": total,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/check", payload)

    def infer(
        self,
        fingerprint: str,
        query: str,
        pins: Optional[Dict[str, str]] = None,
        limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"fingerprint": fingerprint, "query": query}
        if pins:
            payload["pins"] = pins
        if limit is not None:
            payload["limit"] = limit
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/infer", payload)

    def feedback(
        self, fingerprint: str, query: str, deadline: Optional[float] = None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"fingerprint": fingerprint, "query": query}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/feedback", payload)

    def classify(self, fingerprint: str, query: str) -> Dict[str, Any]:
        return self.call(
            "POST", "/classify", {"fingerprint": fingerprint, "query": query}
        )

    def validate(
        self,
        fingerprint: str,
        data: Optional[str] = None,
        xml: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"fingerprint": fingerprint}
        if data is not None:
            payload["data"] = data
        if xml is not None:
            payload["xml"] = xml
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/validate", payload)

    def batch(
        self,
        fingerprint: str,
        operation: str,
        items: list,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "operation": operation,
            "items": items,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/batch", payload)

    def evaluate(
        self,
        query: str,
        data: Optional[str] = None,
        xml: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"query": query}
        if data is not None:
            payload["data"] = data
        if xml is not None:
            payload["xml"] = xml
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if limit is not None:
            payload["limit"] = limit
        if deadline is not None:
            payload["deadline"] = deadline
        return self.call("POST", "/evaluate", payload)
