"""The typed-query daemon: the paper's decision problems over HTTP/JSON.

Stdlib only.  :class:`ServiceState` is the transport-independent core —
``handle(method, path, body)`` maps a request to ``(status, envelope)``
— and :class:`TypedQueryService` wraps it in a ``ThreadingHTTPServer``
(one thread per connection, daemon threads, so a hung computation never
blocks ``/healthz``).

Endpoints (all bodies and responses are JSON envelopes, see
``docs/service.md`` for the full reference):

====================  =====================================================
``POST /schemas``     register ScmDL/DTD text; returns the fingerprint
                      handle and pre-warms the schema's engine
``GET /schemas``      list resident schemas
``DELETE /schemas/F`` unregister fingerprint ``F`` (registry entry and
                      stored artifact)
``POST /schemas/F/migrate``  analyze a candidate schema against ``F``'s
                      registered queries-of-record and atomically swap
                      the entry when the report meets ``policy``
``GET /schemas/F/history``   the entry's bounded version chain
``POST /satisfiable`` Section 3.1 type correctness
``POST /check``       Section 3.2/3.3 partial (or total) type checking
``POST /infer``       Section 3.3 type inference
``POST /feedback``    Section 4.1 feedback query
``POST /classify``    Table-2 complexity cell
``POST /validate``    Definition 2.1 conformance of a data graph
``POST /evaluate``    Definition 2.3 query evaluation on a data graph
``POST /batch``       one operation over many items under one
                      fingerprint, fanned over the schema's shared
                      engine (see :mod:`repro.batch`)
``GET /healthz``      liveness (never touches the registry lock)
``GET /stats``        service metrics + registry + engine cache counters
====================  =====================================================

Every decision endpoint accepts a registered ``fingerprint`` plus the
query/data payload and an optional per-request ``deadline`` in seconds;
deadline overruns answer a structured 503 ``timeout`` envelope while the
abandoned computation finishes on a detached thread (see
:mod:`repro.service.limits`).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from ..data import from_xml, parse_data
from ..query import evaluate, parse_query, query_to_string
from ..schema import find_type_assignment
from ..typing import check_total_types, check_types, classify, is_satisfiable
from ..typing.inference import iterate_inferred_types
from .envelope import (
    ServiceError,
    as_service_error,
    error_envelope,
    ok_envelope,
    positive_int_field,
)
from .limits import DeadlineRunner, ServiceLimits
from .metrics import ServiceMetrics
from .registry import RegisteredSchema, SchemaRegistry

#: Decision endpoints: path suffix -> handler method name on ServiceState.
_POST_ENDPOINTS = (
    "schemas",
    "satisfiable",
    "check",
    "infer",
    "feedback",
    "classify",
    "validate",
    "evaluate",
    "batch",
)


def parse_content_length(raw: Optional[str]) -> int:
    """The validated ``Content-Length`` of a request (absent counts as 0).

    A malformed value (``Content-Length: abc``) must answer a structured
    400, not abort the connection with an uncaught ``ValueError``, and a
    negative value must never reach ``rfile.read(-1)`` — which reads
    until EOF and therefore blocks on a keep-alive socket until the peer
    gives up.  Both the threaded handler and the pool frontend route
    through here.
    """
    if raw is None:
        return 0
    try:
        length = int(raw.strip())
    except (ValueError, AttributeError):
        raise ServiceError(
            f"Content-Length header is not an integer: {raw.strip()!r}",
            code="bad-request",
        ) from None
    if length < 0:
        raise ServiceError(
            f"Content-Length header is negative: {length}", code="bad-request"
        )
    return length


def _require(body: Dict[str, Any], field: str, kind: type = str) -> Any:
    value = body.get(field)
    if not isinstance(value, kind) or (kind is str and not value):
        article = "a" if kind is not int else "an"
        raise ServiceError(
            f"request must carry {article} {kind.__name__} field {field!r}",
            code="bad-request",
        )
    return value


class ServiceState:
    """Registry + limits + metrics, and the endpoint dispatch over them."""

    def __init__(
        self,
        registry: Optional[SchemaRegistry] = None,
        limits: Optional[ServiceLimits] = None,
        metrics: Optional[ServiceMetrics] = None,
    ):
        self.registry = registry if registry is not None else SchemaRegistry()
        self.limits = limits if limits is not None else ServiceLimits()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.runner = DeadlineRunner(self.limits)
        self.metrics.mark_started(time.time())

    # ------------------------------------------------------------------
    # Transport-independent dispatch
    # ------------------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        """One request in, ``(http_status, envelope)`` out.

        Never raises: every failure is rendered as an error envelope.
        Also records the request in the service metrics.
        """
        path = path.split("?", 1)[0].rstrip("/") or "/"
        command = f"{method} {path}"
        started = time.perf_counter()
        try:
            status, envelope = self._dispatch(method, path, body)
        except ServiceError as error:
            status, envelope = error.status, error_envelope(command, error)
        except Exception as error:  # noqa: BLE001 — daemon must not die
            mapped = as_service_error(error)
            status, envelope = mapped.status, error_envelope(command, mapped)
        elapsed = time.perf_counter() - started
        envelope.setdefault("meta", {})["elapsed_ms"] = round(elapsed * 1000.0, 3)
        self.metrics.observe(command, status, elapsed)
        return status, envelope

    def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        command = f"{method} {path}"
        if path == "/healthz":
            self._check_method(method, "GET", path)
            return 200, ok_envelope(command, self.healthz_payload())
        if path == "/stats":
            self._check_method(method, "GET", path)
            return 200, ok_envelope(command, self.stats_payload())
        if path == "/schemas" and method == "GET":
            return 200, ok_envelope(
                command,
                {"schemas": [entry.describe() for entry in self.registry.entries()]},
            )
        if path.startswith("/schemas/"):
            rest = path[len("/schemas/"):]
            if rest.endswith("/migrate"):
                self._check_method(method, "POST", path)
                fingerprint = rest[: -len("/migrate")]
                payload = self._decode_body(body)
                return 200, ok_envelope(command, self.do_migrate(fingerprint, payload))
            if rest.endswith("/history"):
                self._check_method(method, "GET", path)
                fingerprint = rest[: -len("/history")]
                entry = self.registry.get(fingerprint)
                return 200, ok_envelope(command, entry.describe_history())
            if "/" not in rest:
                self._check_method(method, "DELETE", path)
                evicted = self.registry.evict(rest, purge_store=True)
                if not evicted:
                    raise ServiceError(
                        f"fingerprint {rest!r} is not registered",
                        code="unknown-schema",
                        status=404,
                    )
                self.metrics.record_unregister()
                return 200, ok_envelope(command, {"evicted": rest})
        name = path.lstrip("/")
        if name in _POST_ENDPOINTS:
            self._check_method(method, "POST", path)
            payload = self._decode_body(body)
            handler: Callable[[Dict[str, Any]], dict] = getattr(self, f"do_{name}")
            return 200, ok_envelope(command, handler(payload))
        raise ServiceError(
            f"no such endpoint: {path}", code="not-found", status=404
        )

    @staticmethod
    def _check_method(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise ServiceError(
                f"{path} only supports {expected}",
                code="method-not-allowed",
                status=405,
            )

    def _decode_body(self, body: bytes) -> Dict[str, Any]:
        self.limits.check_body_size(len(body))
        if not body:
            raise ServiceError("request body must be a JSON object", code="bad-request")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"request body is not valid JSON: {error}", code="bad-request"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object", code="bad-request")
        return payload

    # ------------------------------------------------------------------
    # Shared request plumbing
    # ------------------------------------------------------------------

    def _entry(self, body: Dict[str, Any]) -> RegisteredSchema:
        return self.registry.get(body.get("fingerprint"))

    def _query(self, body: Dict[str, Any]):
        return parse_query(_require(body, "query"))

    def _graph(self, body: Dict[str, Any]):
        if isinstance(body.get("xml"), str):
            return from_xml(body["xml"])
        if isinstance(body.get("data"), str):
            return parse_data(body["data"])
        raise ServiceError(
            "request must carry a data graph: 'data' (Table-1 text) or 'xml'",
            code="bad-request",
        )

    def _pins(self, body: Dict[str, Any], field: str = "pins") -> Dict[str, str]:
        pins = body.get(field) or {}
        if not isinstance(pins, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in pins.items()
        ):
            raise ServiceError(
                f"{field!r} must map variable names to type/label strings",
                code="bad-request",
            )
        return pins

    def _deadlined(self, body: Dict[str, Any], fn: Callable[[], Any]) -> Any:
        deadline = self.limits.clamp_deadline(body.get("deadline"))
        return self.runner.call(fn, deadline)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def do_schemas(self, body: Dict[str, Any]) -> dict:
        text = _require(body, "schema")
        syntax = body.get("syntax", "scmdl")
        if not isinstance(syntax, str):
            raise ServiceError("'syntax' must be a string", code="bad-request")
        wrap = bool(body.get("wrap", False))
        entry = self.registry.register(text, syntax=syntax, wrap=wrap)
        description = entry.describe()
        description["resident"] = len(self.registry)
        return description

    def do_satisfiable(self, body: Dict[str, Any]) -> dict:
        entry = self._entry(body)
        text = _require(body, "query")
        pins = self._pins(body)
        # Validate the deadline even when the memo will answer: request
        # validation must not depend on what earlier requests cached.
        deadline = self.limits.clamp_deadline(body.get("deadline"))
        # The verdict is a pure function of (schema, query, pins), and the
        # entry is immutable for the fingerprint's lifetime — memoize it so
        # a repeated warm request is one dict lookup, not a full automata
        # walk re-entering the engine cache hundreds of times.
        verdict = entry.cached_decision(
            ("satisfiable", text, tuple(sorted(pins.items()))),
            lambda: bool(
                self.runner.call(
                    lambda: is_satisfiable(
                        parse_query(text), entry.schema, pins or None, entry.engine
                    ),
                    deadline,
                )
            ),
        )
        result = {"satisfiable": verdict, "fingerprint": entry.fingerprint}
        if verdict and body.get("witness"):
            from ..data import data_to_string
            from ..typing import WitnessError, find_witness

            try:
                witness = find_witness(parse_query(text), entry.schema)
            except WitnessError as error:
                result["witness"] = None
                result["witness_error"] = str(error)
            else:
                result["witness"] = (
                    data_to_string(witness) if witness is not None else None
                )
        return result

    def do_check(self, body: Dict[str, Any]) -> dict:
        entry = self._entry(body)
        query = self._query(body)
        assignment = self._pins(body, "assignment")
        total = bool(body.get("total", False))
        checker = check_total_types if total else check_types
        try:
            verdict = self._deadlined(
                body, lambda: checker(query, entry.schema, assignment, entry.engine)
            )
        except ValueError as error:
            # check_types/check_total_types validate the assignment shape.
            raise ServiceError(str(error), code="bad-request") from None
        return {
            "well_typed": bool(verdict),
            "total": total,
            "fingerprint": entry.fingerprint,
        }

    def do_infer(self, body: Dict[str, Any]) -> dict:
        entry = self._entry(body)
        text = _require(body, "query")
        pins = self._pins(body)
        limit = positive_int_field(body, "limit")
        # Validated up front so a memo hit cannot mask a bad deadline.
        deadline = self.limits.clamp_deadline(body.get("deadline"))

        def compute() -> dict:
            query = parse_query(text)

            def run() -> list:
                assignments = []
                for pins_out in iterate_inferred_types(
                    query, entry.schema, pins or None, entry.engine
                ):
                    assignments.append(dict(pins_out))
                    if limit is not None and len(assignments) >= limit:
                        break
                return assignments

            assignments = self.runner.call(run, deadline)
            return {
                "assignments": assignments,
                "count": len(assignments),
                "truncated": limit is not None and len(assignments) == limit,
            }

        # Inference enumerates |select| x |domain| satisfiability calls,
        # each re-entering the engine cache — the warm/cold gap was only
        # 1.4x because of it.  The full result is pure per entry; memoize.
        result = dict(
            entry.cached_decision(
                ("infer", text, tuple(sorted(pins.items())), limit), compute
            )
        )
        result["fingerprint"] = entry.fingerprint
        return result

    def do_feedback(self, body: Dict[str, Any]) -> dict:
        from ..apps import UnsatisfiableQueryError, feedback_query

        entry = self._entry(body)
        query = self._query(body)

        def run() -> dict:
            try:
                tightened = feedback_query(query, entry.schema, entry.engine)
            except UnsatisfiableQueryError as error:
                return {"satisfiable": False, "query": None, "reason": str(error)}
            except ValueError as error:
                raise ServiceError(str(error), code="unsupported", status=422) from None
            return {"satisfiable": True, "query": query_to_string(tightened)}

        result = self._deadlined(body, run)
        result["fingerprint"] = entry.fingerprint
        return result

    def do_classify(self, body: Dict[str, Any]) -> dict:
        entry = self._entry(body)
        query = self._query(body)
        cell = classify(query, entry.schema)
        result = dataclasses.asdict(cell)
        result["polynomial"] = cell.polynomial
        result["fingerprint"] = entry.fingerprint
        return result

    def do_validate(self, body: Dict[str, Any]) -> dict:
        entry = self._entry(body)
        graph = self._graph(body)
        assignment = self._deadlined(
            body, lambda: find_type_assignment(graph, entry.schema, entry.engine)
        )
        return {
            "valid": assignment is not None,
            "assignment": dict(assignment) if assignment is not None else None,
            "fingerprint": entry.fingerprint,
        }

    def do_evaluate(self, body: Dict[str, Any]) -> dict:
        query = self._query(body)
        graph = self._graph(body)
        limit = positive_int_field(body, "limit")
        entry = None
        if body.get("fingerprint") is not None:
            entry = self._entry(body)

        def run() -> dict:
            engine = entry.engine if entry is not None else None
            result: Dict[str, Any] = {
                "bindings": evaluate(query, graph, limit=limit, engine=engine),
            }
            if entry is not None:
                result["conforms"] = (
                    find_type_assignment(graph, entry.schema, entry.engine) is not None
                )
                result["fingerprint"] = entry.fingerprint
            return result

        result = self._deadlined(body, run)
        result["count"] = len(result["bindings"])
        return result

    def do_batch(self, body: Dict[str, Any]) -> dict:
        # Imported lazily: repro.batch imports service submodules, so a
        # module-level import here would close an import cycle through
        # the package __init__.
        from ..batch import OPERATIONS, run_items_shared, summarize

        entry = self._entry(body)
        operation = _require(body, "operation")
        if operation not in OPERATIONS:
            raise ServiceError(
                f"unknown batch operation {operation!r} "
                f"(expected one of {', '.join(OPERATIONS)})",
                code="bad-request",
            )
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise ServiceError(
                "'items' must be a non-empty JSON array", code="bad-request"
            )
        if len(items) > self.limits.max_batch_items:
            raise ServiceError(
                f"batch of {len(items)} items exceeds the "
                f"{self.limits.max_batch_items}-item cap",
                code="payload-too-large",
                status=413,
                detail={"items": len(items), "limit": self.limits.max_batch_items},
            )
        started = time.perf_counter()
        # The whole batch runs under ONE deadline and occupies ONE
        # computation slot; its internal fan-out threads share the
        # registry entry's pre-warmed engine.
        results = self._deadlined(
            body,
            lambda: run_items_shared(
                operation,
                entry.schema,
                entry.engine,
                items,
                workers=self.limits.batch_workers,
            ),
        )
        elapsed = time.perf_counter() - started
        summary = summarize(operation, "thread", results, elapsed)
        self.metrics.record_batch(len(results), summary["errors"], elapsed)
        return {
            "results": results,
            "summary": summary,
            "fingerprint": entry.fingerprint,
        }

    def do_migrate(self, fingerprint: str, body: Dict[str, Any]) -> dict:
        """Analyze (and, when the policy accepts, apply) a migration.

        Always answers 200 with ``accepted`` plus the full compatibility
        report — a rejected migration is a successful *analysis*, and the
        caller needs the structured report either way.
        """
        from ..schema.migrate import POLICIES

        text = _require(body, "schema")
        syntax = body.get("syntax", "scmdl")
        if not isinstance(syntax, str):
            raise ServiceError("'syntax' must be a string", code="bad-request")
        wrap = bool(body.get("wrap", False))
        policy = body.get("policy", "compatible")
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown policy {policy!r} "
                f"(expected one of {', '.join(POLICIES)})",
                code="bad-request",
            )
        queries = body.get("queries") or []
        if not isinstance(queries, list) or not all(
            isinstance(query, str) for query in queries
        ):
            raise ServiceError(
                "'queries' must be a JSON array of query strings",
                code="bad-request",
            )
        entry, report = self._deadlined(
            body,
            lambda: self.registry.migrate(
                fingerprint,
                text,
                syntax=syntax,
                wrap=wrap,
                queries=tuple(queries),
                policy=policy,
            ),
        )
        self.metrics.record_migration(
            report.accepted, len(report.queries), report.counts.get("breaks", 0)
        )
        return {
            "accepted": report.accepted,
            "fingerprint": fingerprint,
            "new_fingerprint": entry.fingerprint,
            "version": entry.version,
            "compatibility": report.compatibility,
            "report": report.to_dict(),
            "resident": len(self.registry),
        }

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------

    def healthz_payload(self) -> dict:
        started = self.metrics.started_at()
        return {
            "status": "ok",
            "uptime_s": round(time.time() - started, 3) if started else 0.0,
            "resident_schemas": len(self.registry),
        }

    def stats_payload(self) -> dict:
        """Service metrics merged with registry + engine cache counters."""
        return {
            "service": self.metrics.snapshot(),
            "limits": self.runner.stats(),
            "registry": self.registry.stats(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter over :meth:`ServiceState.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-typed-query/1"
    #: Responses are one small write after a tiny request; with Nagle on,
    #: every keep-alive roundtrip eats a ~40ms delayed-ACK stall.
    disable_nagle_algorithm = True

    def _respond(self, method: str) -> None:
        state = self.server.state  # type: ignore[attr-defined]
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
            state.limits.check_body_size(length)
        except ServiceError as error:
            # Refuse to read the body at all: a malformed or oversized
            # Content-Length means the connection's framing cannot be
            # trusted, so answer a structured error and close it.
            self.close_connection = True
            status, envelope = error.status, error_envelope(
                f"{method} {self.path}", error
            )
        else:
            body = self.rfile.read(length) if length else b""
            status, envelope = state.handle(method, self.path, body)
        payload = json.dumps(envelope).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._respond("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._respond("DELETE")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(format, *args)


class TypedQueryService:
    """The long-running server: a ``ThreadingHTTPServer`` over one state.

    Usable three ways: :meth:`serve_forever` (blocking, the CLI path),
    :meth:`start` / :meth:`shutdown` (background thread, the test and
    benchmark path), or as a context manager wrapping the latter.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[SchemaRegistry] = None,
        limits: Optional[ServiceLimits] = None,
        verbose: bool = False,
    ):
        self.state = ServiceState(registry=registry, limits=limits)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.state = self.state  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()

    def start(self) -> "TypedQueryService":
        """Serve on a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-service",
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TypedQueryService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def serve(
    host: str = "127.0.0.1",
    port: int = 8421,
    registry: Optional[SchemaRegistry] = None,
    limits: Optional[ServiceLimits] = None,
    verbose: bool = False,
) -> None:
    """Blocking entry point used by ``repro serve``."""
    service = TypedQueryService(
        host=host, port=port, registry=registry, limits=limits, verbose=verbose
    )
    print(f"typed-query service listening on {service.address}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
