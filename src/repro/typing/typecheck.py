"""Type checking — problems (2) and (3) of Section 3.

*Total* type checking receives a type for every node and value variable
and a label for every label variable, and asks whether some instance and
binding realize exactly that assignment.  *Partial* type checking receives
an assignment for the SELECT variables only.  The paper shows total
checking is PTIME for ordered schemas (Proposition 3.2) while partial
checking is as hard as satisfiability (they coincide on boolean queries);
both facts fall out of the implementation: a fully pinned query has no
join enumeration left, while a partially pinned one still enumerates the
unpinned join variables.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..engine import Engine
from ..query.model import Query
from ..schema.model import Schema
from .satisfiability import Pins, SatisfiabilityChecker


def check_total_types(
    query: Query,
    schema: Schema,
    assignment: Pins,
    engine: Optional[Engine] = None,
) -> bool:
    """Total type checking (problem 2).

    ``assignment`` must cover every node variable (type id), every value
    variable (atomic type name, key ``$v``), and every label variable
    (label, key ``$l``).

    Raises:
        ValueError: if the assignment misses a variable.
    """
    missing = [
        var
        for var in (
            list(query.node_vars())
            + list(query.value_vars())
            + list(query.label_vars())
        )
        if var not in assignment
    ]
    if missing:
        raise ValueError(
            f"total type checking requires an assignment for all variables; "
            f"missing {missing}"
        )
    return SatisfiabilityChecker(query, schema, engine).satisfiable(dict(assignment))


def check_types(
    query: Query,
    schema: Schema,
    assignment: Pins,
    engine: Optional[Engine] = None,
) -> bool:
    """(Partial) type checking (problem 3).

    ``assignment`` gives types/labels for the SELECT variables; the other
    variables remain free.  Equivalent to satisfiability when the SELECT
    clause is empty.
    """
    unknown = [var for var in assignment if var not in query.select]
    if unknown:
        raise ValueError(
            f"partial type checking only pins SELECT variables; got {unknown}"
        )
    return SatisfiabilityChecker(query, schema, engine).satisfiable(dict(assignment))
