"""The traces technique of Section 3.4, as explicit automata.

For a flat ordered pattern ``X = [R1 -> X1, ..., Rk -> Xk]`` matched at a
node of type ``T``:

* ``Tr(P)`` — the pattern's trace language — is the regular language
  ``mark0 · R1 · mark1 · R2 · mark2 ... Rk · markk`` over the alphabet of
  labels plus *marker* symbols; typed markers ``("mark", i, Tj)`` carry the
  candidate type of the i-th variable (the :math:`X_i^{T_j}` symbols of the
  paper).
* ``Tr(S)`` — the schema's trace language rooted at ``T`` — is the set of
  traces that occur in some instance: ``mark0 w1 mark1 ... wk markk`` such
  that ``[w1 -> o1, ..., wk -> ok]`` is satisfied at a ``T``-node of some
  conforming graph, with ``oi`` of the marker's type.

Satisfiability of the flat pattern is then emptiness of
``Tr(P) ∩ Tr(S)``; type inference reads the marker symbols that remain
*useful* in the product; and the feedback queries of Section 4.1 are the
per-segment projections of the product (:func:`segment_projection`).

``Tr(S)`` is built directly as a polynomial-size NFA (the operational
counterpart of the paper's acyclic extended CFG): states track the
position inside the root type's content automaton plus, while a path
segment is being emitted, the current type along the schema graph Γ(S).
Filler children (edges of the root that no pattern path uses) become
epsilon moves, and acceptance requires that the remaining content word be
completable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..automata.nfa import EPS, NFA
from ..automata.ops import intersect, relabel, to_regex, trim, union
from ..automata.syntax import Regex, Sym, alt, concat
from ..engine import Engine, get_default_engine
from ..schema.model import Schema
from .reach import SchemaReach

#: Marker symbol for position ``i`` carrying candidate type ``tid``.
Marker = Tuple[str, int, str]


def marker(index: int, tid: str) -> Marker:
    """The typed trace marker :math:`X_i^{T}` (index 0 is the root)."""
    return ("mark", index, tid)


def is_marker(symbol: object) -> bool:
    return isinstance(symbol, tuple) and len(symbol) == 3 and symbol[0] == "mark"


def pattern_trace_nfa(
    schema: Schema,
    arms: Sequence[Regex],
    allowed_types: Sequence[Iterable[str]],
    root_types: Iterable[str],
    engine: Optional[Engine] = None,
) -> NFA:
    """Build ``Tr(P)`` for a flat ordered pattern.

    Args:
        schema: supplies the label alphabet for wildcard expansion.
        arms: the arm path regexes ``R1 ... Rk`` (over labels).
        allowed_types: per arm, the candidate types of its target variable
            (the typed-marker alternation of Section 3.4).
        root_types: candidate types of the pattern's own variable.
        engine: compilation engine; hash-consing makes the assembled trace
            regex a cheap cache key, so repeated patterns share one NFA.
    """
    if engine is None:
        engine = get_default_engine()
    regex = pattern_trace_regex(arms, allowed_types, root_types)
    alphabet = frozenset(schema.labels()) | frozenset(regex.symbols())
    return engine.thompson(regex, alphabet)


def pattern_trace_regex(
    arms: Sequence[Regex],
    allowed_types: Sequence[Iterable[str]],
    root_types: Iterable[str],
) -> Regex:
    """The trace regex ``mark0 · R1 · mark1 ... Rk · markk`` of ``Tr(P)``.

    Hash-consing makes the assembled regex a cheap, stable cache key for
    both the Thompson route and the compiled route.
    """
    if len(arms) != len(allowed_types):
        raise ValueError("arms and allowed_types must align")
    parts: List[Regex] = [alt(*(Sym(marker(0, t)) for t in root_types))]
    for index, (arm, types) in enumerate(zip(arms, allowed_types), start=1):
        parts.append(arm)
        parts.append(alt(*(Sym(marker(index, t)) for t in types)))
    return concat(*parts)


def schema_trace_nfa(
    schema: Schema,
    root_tid: str,
    arm_count: int,
    reach: Optional[SchemaReach] = None,
    engine: Optional[Engine] = None,
) -> NFA:
    """Build ``Tr(S)`` rooted at ``root_tid`` for ``arm_count`` paths.

    The automaton emits ``marker(0, root_tid)``, then ``arm_count``
    label-word segments each terminated by a typed marker, such that the
    whole trace occurs in some instance of the schema.

    The result is memoized per ``(schema fingerprint, root type, arm
    count)`` — callers must treat it as immutable.
    """
    if engine is None:
        engine = get_default_engine()
    root_def = schema.type(root_tid)
    if not root_def.is_ordered:
        raise ValueError(
            f"schema traces require an ordered root type, got {root_tid!r}"
        )
    key = ("trace-nfa", schema.fingerprint(), root_tid, arm_count)
    return engine.cache.get_or_compute(
        key, lambda: _build_schema_trace_nfa(schema, root_tid, arm_count, engine)
    )


def _build_schema_trace_nfa(
    schema: Schema, root_tid: str, arm_count: int, engine: Engine
) -> NFA:
    content = _restricted_content_nfa(schema, root_tid, engine)
    co_accepting = _co_accepting(content)
    edges = schema.possible_edges(engine)

    # States are tuples; we intern them to integers.
    ids: Dict[Tuple, int] = {}
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    accepting: Set[int] = set()
    alphabet: Set[object] = set(schema.labels())

    def state_id(state: Tuple) -> int:
        if state not in ids:
            ids[state] = len(ids)
        return ids[state]

    def add_arc(src: Tuple, symbol: object, dst: Tuple) -> None:
        if symbol is not EPS:
            alphabet.add(symbol)
        transitions.setdefault(state_id(src), []).append((symbol, state_id(dst)))

    start = ("pre",)
    add_arc(start, marker(0, root_tid), ("between", 0, content.start))
    pending = [("between", 0, content.start)]
    seen: Set[Tuple] = {start, ("between", 0, content.start)}

    while pending:
        state = pending.pop()

        def push(next_state: Tuple) -> None:
            if next_state not in seen:
                seen.add(next_state)
                pending.append(next_state)

        if state[0] == "between":
            _kind, segment, q = state
            if segment == arm_count and q in co_accepting:
                accepting.add(state_id(state))
            for symbol, dst in content.arcs_from(q):
                # Filler children are invisible in the trace.
                add_arc(state, EPS, ("between", segment, dst))
                push(("between", segment, dst))
                if symbol is not EPS and segment < arm_count:
                    label, target = symbol
                    walk = ("walk", segment + 1, dst, target)
                    add_arc(state, label, walk)
                    push(walk)
        else:  # walk
            _kind, segment, q, current_type = state
            add_arc(
                state,
                marker(segment, current_type),
                ("between", segment, q),
            )
            push(("between", segment, q))
            for label, target in sorted(edges.get(current_type, ())):
                walk = ("walk", segment, q, target)
                add_arc(state, label, walk)
                push(walk)

    return NFA(len(ids), alphabet, state_id(start), accepting, transitions)


def _restricted_content_nfa(
    schema: Schema, tid: str, engine: Optional[Engine] = None
) -> NFA:
    if engine is None:
        engine = get_default_engine()
    return engine.restricted_content_nfa(schema, tid)


def _co_accepting(nfa: NFA) -> FrozenSet[int]:
    return nfa.coreachable_states()


def trace_product(
    schema: Schema,
    root_types: Iterable[str],
    arms: Sequence[Regex],
    allowed_types: Sequence[Iterable[str]],
    reach: Optional[SchemaReach] = None,
    engine: Optional[Engine] = None,
) -> NFA:
    """``Tr(P) ∩ Tr(S)``, unioned over the candidate root types, trimmed.

    The whole product is memoized: hash-consed arm regexes plus the schema
    fingerprint make the inputs a cheap structural key, so a repeated query
    against the same schema reuses the trimmed product outright.
    """
    if engine is None:
        engine = get_default_engine()
    root_types = tuple(root_types)
    arms = tuple(arms)
    allowed_types = tuple(tuple(types) for types in allowed_types)
    key = ("trace-product", schema.fingerprint(), root_types, arms, allowed_types)

    def build() -> NFA:
        pattern = pattern_trace_nfa(schema, arms, allowed_types, root_types, engine)
        product: Optional[NFA] = None
        for root_tid in root_types:
            if not schema.type(root_tid).is_ordered:
                continue
            piece = intersect(
                pattern,
                schema_trace_nfa(schema, root_tid, len(arms), reach, engine),
            )
            product = piece if product is None else union(product, piece)
        if product is None:
            raise ValueError("no ordered candidate root types")
        return trim(product)

    return engine.cache.get_or_compute(key, build)


def flat_satisfiable(
    schema: Schema,
    root_types: Iterable[str],
    arms: Sequence[Regex],
    allowed_types: Sequence[Iterable[str]],
    engine: Optional[Engine] = None,
) -> bool:
    """Satisfiability of a flat ordered pattern via the trace intersection.

    This is the paper's ``Tr(P) ∩ Tr(S) ≠ ∅`` criterion, used in tests as an
    independent oracle for the general checker of
    :mod:`repro.typing.satisfiability`.

    On the compiled backend the emptiness check is a pair-BFS over the
    minimized tables of ``Tr(P)`` and each per-root ``Tr(S)``
    (:meth:`~repro.automata.compiled.CompiledDFA.product_empty`), skipping
    the explicit product NFA; the NFA route materializes and trims the
    product and is kept for differential testing (and for the callers that
    need the product itself — inference, feedback).
    """
    if engine is None:
        engine = get_default_engine()
    if engine.backend == "compiled":
        root_types = tuple(root_types)
        arms = tuple(arms)
        allowed_types = tuple(tuple(types) for types in allowed_types)
        regex = pattern_trace_regex(arms, allowed_types, root_types)
        alphabet = frozenset(schema.labels()) | frozenset(regex.symbols())
        pattern = engine.compiled_path(regex, alphabet)
        ordered = [t for t in root_types if schema.type(t).is_ordered]
        if not ordered:
            raise ValueError("no ordered candidate root types")
        return any(
            not pattern.product_empty(
                engine.compiled_trace(schema, root_tid, len(arms))
            )
            for root_tid in ordered
        )
    return not trace_product(
        schema, root_types, arms, allowed_types, engine=engine
    ).is_empty()


def inferred_marker_types(product: NFA) -> Dict[int, FrozenSet[str]]:
    """Per-position candidate types read off a trace product.

    Position ``i`` maps to the set of types ``T`` whose marker
    :math:`X_i^T` appears on some accepting path — the paper's projection
    "erase the other symbols".
    """
    result: Dict[int, Set[str]] = {}
    for symbol in product.useful_symbols():
        if is_marker(symbol):
            _tag, index, tid = symbol
            result.setdefault(index, set()).add(tid)
    return {index: frozenset(types) for index, types in result.items()}


def segment_projection(product: NFA, index: int) -> NFA:
    """The i-th segment language of a trace product (1-based).

    Returns an NFA over labels accepting exactly the words that can appear
    between marker ``index-1`` and marker ``index`` on accepting traces —
    the ``lang(Ri')`` of Proposition 4.1.
    """
    useful = product.useful_states()
    starts: Set[int] = set()
    ends: Set[int] = set()
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    alphabet: Set[object] = set()
    for src in useful:
        for symbol, dst in product.arcs_from(src):
            if dst not in useful:
                continue
            if is_marker(symbol):
                _tag, mark_index, _tid = symbol
                if mark_index == index - 1:
                    starts.add(dst)
                if mark_index == index:
                    ends.add(src)
                continue
            transitions.setdefault(src, []).append((symbol, dst))
            if symbol is not EPS:
                alphabet.add(symbol)
    n = product.n_states
    fresh_start = n
    transitions[fresh_start] = [(EPS, s) for s in sorted(starts)]
    return trim(NFA(n + 1, alphabet, fresh_start, ends, transitions))


def segment_regex(product: NFA, index: int) -> Regex:
    """Regex form of :func:`segment_projection` (for display)."""
    return to_regex(segment_projection(product, index))
