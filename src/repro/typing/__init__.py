"""The paper's core: type inference for queries on semistructured data.

Implements the four problems of Section 3 — satisfiability
(:func:`is_satisfiable`), total and partial type checking
(:func:`check_total_types`, :func:`check_types`), and type inference
(:func:`infer_types`) — plus the traces machinery of Section 3.4
(:mod:`repro.typing.traces`) and the Table-2 complexity classifier
(:func:`classify`).
"""

from .satisfiability import (
    Pins,
    SatisfiabilityChecker,
    is_satisfiable,
)
from .typecheck import check_total_types, check_types
from .inference import infer_types, inferred_types_of, iterate_inferred_types
from .traces import (
    flat_satisfiable,
    inferred_marker_types,
    marker,
    pattern_trace_nfa,
    schema_trace_nfa,
    segment_projection,
    segment_regex,
    trace_product,
)
from .complexity import (
    Classification,
    classify,
    table2_columns,
    table2_prediction,
    table2_rows,
)
from .reach import SchemaReach
from .grammar import NonTerm, TraceGrammar
from .witness import WitnessError, find_witness

__all__ = [
    "Classification",
    "NonTerm",
    "TraceGrammar",
    "WitnessError",
    "find_witness",
    "Pins",
    "SatisfiabilityChecker",
    "SchemaReach",
    "check_total_types",
    "check_types",
    "classify",
    "flat_satisfiable",
    "infer_types",
    "inferred_marker_types",
    "inferred_types_of",
    "is_satisfiable",
    "iterate_inferred_types",
    "marker",
    "pattern_trace_nfa",
    "schema_trace_nfa",
    "segment_projection",
    "segment_regex",
    "table2_columns",
    "table2_prediction",
    "table2_rows",
    "trace_product",
]
