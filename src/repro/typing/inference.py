"""Type inference — problem (4) of Section 3.

Enumerate all type/label assignments for the SELECT variables for which
partial type checking succeeds.  The enumeration is a backtracking search
that pins SELECT variables one at a time and prunes unsatisfiable
prefixes, so each emitted assignment costs at most ``|select| × |domain|``
satisfiability calls: polynomial in the input *and the output* whenever
satisfiability itself is polynomial — matching the output-polynomial
bounds of Section 3.3.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..engine import Engine
from ..query.model import Query
from ..schema.model import ATOMIC_TYPE_NAMES, Schema
from .satisfiability import Pins, SatisfiabilityChecker


def infer_types(
    query: Query,
    schema: Schema,
    extra_pins: Optional[Pins] = None,
    engine: Optional[Engine] = None,
) -> List[Pins]:
    """All satisfiable SELECT-variable assignments, in lexicographic order.

    Node variables are assigned type ids, value variables (``$v``) atomic
    type names, label variables (``$l``) labels.  ``extra_pins`` fixes
    additional variables up front (useful for interactive exploration).
    """
    return list(iterate_inferred_types(query, schema, extra_pins, engine))


def inferred_types_of(
    query: Query,
    schema: Schema,
    var: str,
    extra_pins: Optional[Pins] = None,
    engine: Optional[Engine] = None,
) -> List[str]:
    """The types (or labels / atomic names) variable ``var`` can take.

    Unlike :func:`infer_types`, ``var`` need not appear in the SELECT
    clause; the result is the set of values ``v`` such that pinning
    ``var = v`` (on top of ``extra_pins``) leaves the query satisfiable.
    """
    checker = SatisfiabilityChecker(query, schema, engine)
    if var in query.value_vars():
        domain = list(ATOMIC_TYPE_NAMES)
    elif var in query.label_vars():
        domain = sorted(schema.labels())
    else:
        domain = sorted(schema.reachable_types())
    base = dict(extra_pins or {})
    result = []
    for value in domain:
        pins = dict(base)
        pins[var] = value
        if checker.satisfiable(pins):
            result.append(value)
    return result


def iterate_inferred_types(
    query: Query,
    schema: Schema,
    extra_pins: Optional[Pins] = None,
    engine: Optional[Engine] = None,
) -> Iterator[Pins]:
    """Generator form of :func:`infer_types`."""
    checker = SatisfiabilityChecker(query, schema, engine)
    select = list(query.select)
    value_vars = set(query.value_vars())
    label_vars = set(query.label_vars())
    node_domain = sorted(schema.reachable_types())
    label_domain = sorted(schema.labels())

    def domain_of(var: str) -> List[str]:
        if var in value_vars:
            return list(ATOMIC_TYPE_NAMES)
        if var in label_vars:
            return label_domain
        return node_domain

    base: Pins = dict(extra_pins or {})

    def assign(index: int, pins: Pins) -> Iterator[Pins]:
        if not checker.satisfiable(pins):
            return
        if index == len(select):
            yield {var: pins[var] for var in select}
            return
        var = select[index]
        if var in pins:
            yield from assign(index + 1, pins)
            return
        for value in domain_of(var):
            extended = dict(pins)
            extended[var] = value
            yield from assign(index + 1, extended)

    yield from assign(0, base)
