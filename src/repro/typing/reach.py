"""Schema-product reachability: the PTIME engine behind the traces technique.

Section 3.4 reduces satisfiability questions to emptiness of intersections
between pattern languages and the schema's trace language ``Tr(S)``.
Operationally every such intersection is a reachability computation in the
product of the *schema graph* Γ(S) (types connected by the ``(label, type)``
edges that can occur in some instance) with the NFA of a regular path
expression.

:class:`SchemaReach` packages those computations with caching:

* :meth:`compile_path` — compile a pattern path regex against the schema's
  label alphabet (wildcards expand to the schema's labels, which is complete
  because instance labels are always drawn from the schema);
* :meth:`step_targets` — one product step from a (type, state-set) pair;
* :meth:`completions` — all (type, accepting state-set) pairs reachable from
  a start configuration, i.e. the candidate end types of a path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..automata.nfa import NFA
from ..automata.syntax import Regex
from ..engine import Engine, get_default_engine
from ..schema.model import Schema


class SchemaReach:
    """Cached product-reachability computations over a schema.

    Prefer obtaining instances through :meth:`repro.engine.Engine.reach`:
    all consumers handed the same engine then share one ``SchemaReach``
    (and its completion caches) per schema fingerprint.
    """

    def __init__(self, schema: Schema, engine: Optional[Engine] = None):
        self.schema = schema
        self.engine = engine if engine is not None else get_default_engine()
        self.edges = schema.possible_edges(self.engine)
        self.labels = frozenset(schema.labels())
        self._completions: Dict[
            Tuple[Regex, str, FrozenSet[int]], FrozenSet[Tuple[str, FrozenSet[int]]]
        ] = {}

    def compile_path(self, regex: Regex) -> NFA:
        """Compile a path regex over the schema's labels (plus its own)."""
        return self.engine.thompson(regex, self.labels | frozenset(regex.symbols()))

    def initial_states(self, regex: Regex) -> FrozenSet[int]:
        return self.compile_path(regex).initial_states()

    def start_symbols(
        self, regex: Regex, source_type: str
    ) -> List[Tuple[Tuple[str, str], FrozenSet[int]]]:
        """First-step options for a path leaving a node of ``source_type``.

        Returns ``((label, target_type), states_after_label)`` pairs for
        every schema edge whose label the regex can start with.
        """
        nfa = self.compile_path(regex)
        start = nfa.initial_states()
        options = []
        for label, target in sorted(self.edges.get(source_type, ())):
            after = nfa.step(start, label)
            if after:
                options.append(((label, target), after))
        return options

    def step(
        self, regex: Regex, configuration: Tuple[str, FrozenSet[int]]
    ) -> List[Tuple[Tuple[str, str], FrozenSet[int]]]:
        """One product step from ``(type, states)``; see start_symbols."""
        nfa = self.compile_path(regex)
        source_type, states = configuration
        options = []
        for label, target in sorted(self.edges.get(source_type, ())):
            after = nfa.step(states, label)
            if after:
                options.append((((label, target)), after))
        return options

    def completions(
        self, regex: Regex, start_type: str, states: FrozenSet[int]
    ) -> FrozenSet[Tuple[str, FrozenSet[int]]]:
        """All ``(type, states)`` configurations reachable from the start
        configuration, including it, restricted to live configurations."""
        key = (regex, start_type, states)
        if key in self._completions:
            return self._completions[key]
        seen: Set[Tuple[str, FrozenSet[int]]] = {(start_type, states)}
        stack = [(start_type, states)]
        nfa = self.compile_path(regex)
        while stack:
            current_type, current_states = stack.pop()
            for (label, target) in self.edges.get(current_type, ()):
                after = nfa.step(current_states, label)
                if after and (target, after) not in seen:
                    seen.add((target, after))
                    stack.append((target, after))
        result = frozenset(seen)
        self._completions[key] = result
        return result

    def reachable_end_types(
        self, regex: Regex, start_type: str, states: FrozenSet[int]
    ) -> FrozenSet[str]:
        """Types at which the path can end (configurations with an accepting
        state), starting from ``(start_type, states)``."""
        nfa = self.compile_path(regex)
        ends = set()
        for current_type, current_states in self.completions(regex, start_type, states):
            if current_states & nfa.accepting:
                ends.add(current_type)
        return frozenset(ends)

    def can_complete(
        self,
        regex: Regex,
        start_type: str,
        states: FrozenSet[int],
        end_types: Iterable[str],
    ) -> bool:
        """True if the path can end at a node whose type is in ``end_types``."""
        wanted = set(end_types)
        if not wanted:
            return False
        nfa = self.compile_path(regex)
        for current_type, current_states in self.completions(regex, start_type, states):
            if current_type in wanted and (current_states & nfa.accepting):
                return True
        return False
