"""Schema-product reachability: the PTIME engine behind the traces technique.

Section 3.4 reduces satisfiability questions to emptiness of intersections
between pattern languages and the schema's trace language ``Tr(S)``.
Operationally every such intersection is a reachability computation in the
product of the *schema graph* Γ(S) (types connected by the ``(label, type)``
edges that can occur in some instance) with the automaton of a regular path
expression.

:class:`SchemaReach` packages those computations with caching:

* :meth:`path` — the path regex compiled for the engine's backend (a
  :class:`~repro.automata.compiled.CompiledDFA` table or the legacy
  :class:`~repro.automata.compiled.NFARunner`), under the shared walk
  contract: ``step`` returns ``None`` when the walk dies, states are
  otherwise opaque;
* :meth:`step` — one product step from a (type, state) configuration;
* :meth:`completions` — all (type, state) configurations reachable from
  a start configuration, i.e. the candidate end types of a path.

State values are backend-dependent (integers on the compiled backend,
frozensets on the NFA backend) but always opaque to callers: compare
them, hash them, pass them back in — never inspect them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..automata.nfa import NFA
from ..automata.syntax import Regex
from ..engine import Engine, get_default_engine
from ..engine.core import Runner
from ..schema.model import Schema


class SchemaReach:
    """Cached product-reachability computations over a schema.

    Prefer obtaining instances through :meth:`repro.engine.Engine.reach`:
    all consumers handed the same engine then share one ``SchemaReach``
    (and its completion caches) per schema fingerprint.
    """

    def __init__(self, schema: Schema, engine: Optional[Engine] = None):
        self.schema = schema
        self.engine = engine if engine is not None else get_default_engine()
        self.edges = schema.possible_edges(self.engine)
        self.labels = frozenset(schema.labels())
        self._completions: Dict[
            Tuple[Regex, str, object], FrozenSet[Tuple[str, object]]
        ] = {}
        # Per-regex runner memo in front of the engine cache: path() is
        # the innermost call of the satisfiability search, and the
        # engine-level lookup (alphabet union + key build + lock) costs
        # more than the identity-hash dict hit on a hash-consed regex.
        self._runners: Dict[Regex, Runner] = {}

    def compile_path(self, regex: Regex) -> NFA:
        """Compile a path regex over the schema's labels (plus its own).

        Always the NFA form — the trace constructions consume it
        directly; decision walks should use :meth:`path` instead.
        """
        return self.engine.thompson(regex, self.labels | frozenset(regex.symbols()))

    def path(self, regex: Regex) -> Runner:
        """The path automaton on the engine's backend (walk contract)."""
        runner = self._runners.get(regex)
        if runner is None:
            runner = self.engine.path_runner(
                regex, self.labels | frozenset(regex.symbols())
            )
            self._runners[regex] = runner
        return runner

    def initial_states(self, regex: Regex):
        """The path automaton's initial state (None = empty language)."""
        return self.path(regex).initial()

    def start_symbols(
        self, regex: Regex, source_type: str
    ) -> List[Tuple[Tuple[str, str], object]]:
        """First-step options for a path leaving a node of ``source_type``.

        Returns ``((label, target_type), state_after_label)`` pairs for
        every schema edge whose label the regex can start with.
        """
        runner = self.path(regex)
        start = runner.initial()
        options = []
        if start is None:
            return options
        for label, target in sorted(self.edges.get(source_type, ())):
            after = runner.step(start, label)
            if after is not None:
                options.append(((label, target), after))
        return options

    def step(
        self, regex: Regex, configuration: Tuple[str, object]
    ) -> List[Tuple[Tuple[str, str], object]]:
        """One product step from ``(type, state)``; see start_symbols."""
        runner = self.path(regex)
        source_type, state = configuration
        options = []
        for label, target in sorted(self.edges.get(source_type, ())):
            after = runner.step(state, label)
            if after is not None:
                options.append((((label, target)), after))
        return options

    def completions(
        self, regex: Regex, start_type: str, state: object
    ) -> FrozenSet[Tuple[str, object]]:
        """All ``(type, state)`` configurations reachable from the start
        configuration, including it, restricted to live configurations."""
        key = (regex, start_type, state)
        if key in self._completions:
            return self._completions[key]
        seen: Set[Tuple[str, object]] = {(start_type, state)}
        stack = [(start_type, state)]
        runner = self.path(regex)
        while stack:
            current_type, current_state = stack.pop()
            for (label, target) in self.edges.get(current_type, ()):
                after = runner.step(current_state, label)
                if after is not None and (target, after) not in seen:
                    seen.add((target, after))
                    stack.append((target, after))
        result = frozenset(seen)
        self._completions[key] = result
        return result

    def reachable_end_types(
        self, regex: Regex, start_type: str, state: object
    ) -> FrozenSet[str]:
        """Types at which the path can end (configurations with an accepting
        state), starting from ``(start_type, state)``."""
        runner = self.path(regex)
        ends = set()
        for current_type, current_state in self.completions(regex, start_type, state):
            if runner.is_accepting(current_state):
                ends.add(current_type)
        return frozenset(ends)

    def can_complete(
        self,
        regex: Regex,
        start_type: str,
        state: object,
        end_types: Iterable[str],
    ) -> bool:
        """True if the path can end at a node whose type is in ``end_types``."""
        wanted = set(end_types)
        if not wanted:
            return False
        runner = self.path(regex)
        for current_type, current_state in self.completions(regex, start_type, state):
            if current_type in wanted and runner.is_accepting(current_state):
                return True
        return False
