"""Table 2: classify a (schema, query) pair into its complexity cell.

The paper's Table 2 summarizes the complexity of the type-correctness
(satisfiability) problem under schema restrictions (rows) and query
restrictions (columns).  :func:`classify` reports which cell a given pair
falls into and the predicted complexity, and explains *why* the
implementation realizes that bound (which enumeration domains collapse).

Cells encoded (query complexity / combined complexity):

==================  =========  =========  =======  ========  ========  ==========
schema \\ query      arbitrary  join-free  bounded  constant  constant  join-free
                                           joins    labels    suffix    + c.labels
==================  =========  =========  =======  ========  ========  ==========
unordered (any)     NP/NP      NP/NP      NP/NP    NP/NP     NP/NP     NP/NP
ordered             NP/NP      P/P        P/P      NP/NP     NP/NP     P/P
tagged (unordered)  NP/NP      NP/NP      NP/NP    NP/NP     NP/NP     NP/NP
ordered + tagged    NP/NP      P/P        P/P      P/P       P/P       P/P
==================  =========  =========  =======  ========  ========  ==========

"ordered" includes the relaxation with homogeneous unordered collections.
The NP entries of the unordered/tagged rows reflect the paper's remark
that the query restrictions are "not effective without order" (rightmost
column of Table 2) and that "tagging alone does not suffice" (line 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..query.model import Query
from ..schema.model import Schema

#: Default bound for the *bounded joins* column.
DEFAULT_JOIN_BOUND = 2


@dataclass(frozen=True)
class Classification:
    """Where a (schema, query) pair sits in Table 2."""

    schema_row: str
    query_column: str
    query_complexity: str
    combined_complexity: str
    schema_ordered: bool
    schema_tagged: bool
    schema_tree: bool
    schema_is_dtd_minus: bool
    schema_is_dtd_plus: bool
    query_join_free: bool
    query_join_width: int
    query_constant_labels: bool
    query_constant_suffix: bool
    query_projection_free: bool

    @property
    def polynomial(self) -> bool:
        """True if the predicted combined complexity is polynomial."""
        return self.combined_complexity == "PTIME"


def classify(
    query: Query, schema: Schema, join_bound: int = DEFAULT_JOIN_BOUND
) -> Classification:
    """Classify the pair into its Table-2 cell.

    ``join_bound`` is the constant ``B`` of the bounded-joins restriction.
    """
    ordered = schema.is_ordered(allow_homogeneous=True)
    tagged = schema.is_tagged()
    if ordered and tagged:
        row = "ordered+tagged"
    elif ordered:
        row = "ordered"
    elif tagged:
        row = "tagged"
    else:
        row = "arbitrary"

    join_free = query.is_join_free()
    constant_labels = query.is_constant_labels()
    constant_suffix = query.is_constant_suffix()
    width = query.join_width()
    if join_free and constant_labels:
        column = "join-free+constant-labels"
    elif join_free:
        column = "join-free"
    elif width <= join_bound:
        column = "bounded-joins"
    elif constant_labels:
        column = "constant-labels"
    elif constant_suffix:
        column = "constant-suffix"
    else:
        column = "arbitrary"

    polynomial = _cell_polynomial(row, column)
    complexity = "PTIME" if polynomial else "NP-complete"
    return Classification(
        schema_row=row,
        query_column=column,
        query_complexity=complexity,
        combined_complexity=complexity,
        schema_ordered=ordered,
        schema_tagged=tagged,
        schema_tree=schema.is_tree(),
        schema_is_dtd_minus=schema.is_dtd_minus(),
        schema_is_dtd_plus=schema.is_dtd_plus(),
        query_join_free=join_free,
        query_join_width=width,
        query_constant_labels=constant_labels,
        query_constant_suffix=constant_suffix,
        query_projection_free=query.is_projection_free(),
    )


def _cell_polynomial(row: str, column: str) -> bool:
    if row == "ordered":
        return column in ("join-free", "bounded-joins", "join-free+constant-labels")
    if row == "ordered+tagged":
        return column != "arbitrary"
    return False


def table2_rows() -> Tuple[str, ...]:
    """The schema rows of Table 2, in display order."""
    return ("arbitrary", "ordered", "tagged", "ordered+tagged")


def table2_columns() -> Tuple[str, ...]:
    """The query columns of Table 2, in display order."""
    return (
        "arbitrary",
        "join-free",
        "bounded-joins",
        "constant-labels",
        "constant-suffix",
        "join-free+constant-labels",
    )


def table2_prediction(row: str, column: str) -> str:
    """The predicted complexity of a Table-2 cell."""
    return "PTIME" if _cell_polynomial(row, column) else "NP-complete"
