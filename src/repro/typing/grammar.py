"""The acyclic extended CFG for Tr(S) over nested patterns (Section 3.4).

For a query with several (join-free, ordered) pattern definitions, the
paper constructs ``Tr(S)`` *bottom up, following the tree structure of the
set of pattern definitions*, as an acyclic context-free grammar with
regular expressions on right-hand sides, of size polynomial in the schema
(its full expansion would be an exponentially large regular expression).

:class:`TraceGrammar` materializes that object:

* one nonterminal ``(X, T)`` per pattern variable and candidate type;
* the production of ``(X, T)`` is the trace language of the definition of
  ``X`` matched at a ``T``-node, with each arm's end marker replaced by
  the alternation of the *viable* child nonterminals;
* viability is computed bottom-up with the flat trace intersection of
  :mod:`repro.typing.traces` — so the grammar is simultaneously an
  independent implementation of satisfiability for the nested join-free
  ordered fragment, used by tests to cross-validate the general checker.

A ``NonTerm`` marker in a production's regex stands for the sub-trace of
the child variable at the given type.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from ..automata.ops import relabel, to_regex, trim
from ..automata.syntax import Regex
from ..query.model import PatternKind, Query
from ..schema.model import Schema
from .reach import SchemaReach
from .traces import is_marker, trace_product


class NonTerm(NamedTuple):
    """A grammar nonterminal: pattern variable ``var`` typed ``tid``."""

    var: str
    tid: str


class TraceGrammar:
    """The Section 3.4 grammar for a join-free query over ordered defs.

    Raises:
        ValueError: for queries with joins, or with unordered collection
            definitions (the paper's grammar construction covers the
            ordered fragment; the general checker handles the rest).
    """

    def __init__(self, query: Query, schema: Schema):
        if not query.is_join_free():
            raise ValueError("the trace grammar is defined for join-free queries")
        if query.value_join_vars():
            raise ValueError(
                "value-variable joins are outside the grammar fragment "
                "(the general checker handles them)"
            )
        for pattern in query.patterns:
            if pattern.kind is PatternKind.UNORDERED:
                raise ValueError(
                    "the trace grammar covers ordered pattern definitions"
                )
            if any(arm.is_label_var for arm in pattern.arms):
                raise ValueError("label variables are not part of the grammar form")
            if pattern.partial_order is not None:
                raise ValueError(
                    "partially ordered definitions are outside the grammar form"
                )
        self.query = query
        self.schema = schema
        self.reach = SchemaReach(schema)
        self._viable: Dict[str, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    # Viability (bottom-up satisfiability)
    # ------------------------------------------------------------------

    def viable_types(self, var: str) -> FrozenSet[str]:
        """Types ``T`` such that the sub-pattern rooted at ``var`` is
        satisfiable at a ``T``-node of some instance."""
        if var in self._viable:
            return self._viable[var]
        definition = self.query.definition(var)
        reachable = self.schema.reachable_types()
        inhabited = self.schema.inhabited_types()
        if definition is None:
            result = frozenset(
                tid
                for tid in reachable & inhabited
                if not var.startswith("&") or tid.startswith("&")
            )
        elif definition.kind is PatternKind.VALUE:
            from ..schema.model import atomic_matches

            result = frozenset(
                tid
                for tid in reachable
                if self.schema.type(tid).is_atomic
                and atomic_matches(self.schema.type(tid).atomic, definition.value)
            )
        elif definition.kind is PatternKind.VALUE_VAR:
            result = frozenset(
                tid for tid in reachable if self.schema.type(tid).is_atomic
            )
        else:
            from .traces import flat_satisfiable

            arms = [arm.path for arm in definition.arms]
            allowed = [self.viable_types(arm.target) for arm in definition.arms]
            candidates = [
                tid
                for tid in sorted(reachable)
                if self.schema.type(tid).is_ordered
                and (not var.startswith("&") or tid.startswith("&"))
            ]
            viable = set()
            for tid in candidates:
                if not definition.arms:
                    if tid in inhabited:
                        viable.add(tid)
                    continue
                if any(not targets for targets in allowed):
                    continue
                if flat_satisfiable(self.schema, [tid], arms, allowed):
                    viable.add(tid)
            result = frozenset(viable)
        self._viable[var] = result
        return result

    def satisfiable(self) -> bool:
        """Satisfiability via the grammar (join-free ordered fragment)."""
        return self.schema.root in self.viable_types(self.query.root_var)

    # ------------------------------------------------------------------
    # Productions
    # ------------------------------------------------------------------

    def nonterminals(self) -> List[NonTerm]:
        """All viable nonterminals, pattern-tree order then type order."""
        result = []
        for pattern in self.query.patterns:
            for tid in sorted(self.viable_types(pattern.var)):
                result.append(NonTerm(pattern.var, tid))
        return result

    def production(self, nonterminal: NonTerm) -> Regex:
        """The RHS of a nonterminal: a regex over labels and NonTerms.

        Built from the trimmed trace product of the definition at the
        given type; arm markers become the child nonterminals.
        """
        definition = self.query.definition(nonterminal.var)
        if definition is None or not definition.is_collection:
            raise ValueError(f"{nonterminal.var!r} has no collection definition")
        arms = [arm.path for arm in definition.arms]
        allowed = [self.viable_types(arm.target) for arm in definition.arms]
        product = trace_product(self.schema, [nonterminal.tid], arms, allowed, self.reach)

        def rename(symbol: object) -> Optional[object]:
            if is_marker(symbol):
                _tag, index, tid = symbol
                if index == 0:
                    return None  # the root marker is implicit in the LHS
                return NonTerm(definition.arms[index - 1].target, tid)
            return symbol

        return to_regex(trim(relabel(product, rename)))

    def size(self) -> int:
        """Total AST size of all productions (polynomial in the schema)."""
        total = 0
        for nonterminal in self.nonterminals():
            definition = self.query.definition(nonterminal.var)
            if definition is None or not definition.is_collection:
                continue
            total += sum(1 for _ in self.production(nonterminal).walk())
        return total
