"""Witness construction: concrete certificates for satisfiability.

Theorem 3.1's membership side rests on the fact that a satisfiable query
has a polynomial-size witness: a conforming data graph on which the query
returns a non-empty result.  This module *builds* such witnesses for
join-free queries whose collection definitions are ordered (the Section
3.4 fragment), turning every positive satisfiability verdict into a
checkable certificate:

    >>> graph = find_witness(query, schema)
    >>> conforms(graph, schema) and satisfies(query, graph)
    True

Construction, bottom-up over the pattern tree (mirroring the acyclic
extended CFG):

1. pick a viable type for each variable (``TraceGrammar.viable_types``);
2. for a definition ``X = [R1 -> X1, ..., Rk -> Xk]`` at type ``T``, take
   a shortest word of the trace product — it fixes each arm's label path
   and end type;
3. embed the k first edges, in order, into a content word of ``R_T``
   (product search), realize arm paths through the schema graph, and
   close every remaining obligation with a *minimal* conforming subtree
   (rank-decreasing content words always terminate).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata.nfa import EPS, NFA
from ..data.model import DataGraph, Edge, Node, NodeKind
from ..query.model import PatternKind, Query
from ..schema.model import Schema
from .grammar import TraceGrammar
from .reach import SchemaReach
from .traces import is_marker, trace_product


class WitnessError(ValueError):
    """Raised when witness construction is asked for an unsupported form."""


def find_witness(query: Query, schema: Schema) -> Optional[DataGraph]:
    """Build a conforming instance on which the query matches, or None.

    Supports join-free queries whose collection definitions are ordered
    and use regex arms (value and value-variable definitions are fine).

    Raises:
        WitnessError: for joins, unordered definitions, or label-variable
            arms (use the general checker for verdicts on those).
    """
    try:
        grammar = TraceGrammar(query, schema)
    except ValueError as error:
        raise WitnessError(str(error)) from error
    if schema.root not in grammar.viable_types(query.root_var):
        return None
    builder = _WitnessBuilder(query, schema, grammar)
    root_oid = builder.build_variable(query.root_var, schema.root)
    nodes = builder.nodes
    ordered = [next(n for n in nodes if n.oid == root_oid)]
    ordered += [n for n in nodes if n.oid != root_oid]
    return DataGraph(ordered)


class _WitnessBuilder:
    def __init__(self, query: Query, schema: Schema, grammar: TraceGrammar):
        self.query = query
        self.schema = schema
        self.grammar = grammar
        self.reach = SchemaReach(schema)
        self.ranks = schema.inhabitation_ranks()
        self.edges = schema.possible_edges()
        self.nodes: List[Node] = []
        self._counter = itertools.count(1)

    def fresh_oid(self) -> str:
        return f"w{next(self._counter)}"

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------

    def build_variable(self, var: str, tid: str) -> str:
        """Materialize a node of type ``tid`` satisfying ``var``'s subtree."""
        definition = self.query.definition(var)
        if definition is None:
            return self.minimal_subtree(tid)
        if definition.kind is PatternKind.VALUE:
            oid = self.fresh_oid()
            self.nodes.append(Node(oid, NodeKind.ATOMIC, value=definition.value))
            return oid
        if definition.kind is PatternKind.VALUE_VAR:
            return self.minimal_subtree(tid)
        return self.build_collection(definition, tid)

    def build_collection(self, definition, tid: str) -> str:
        arms = [arm.path for arm in definition.arms]
        if not arms:
            return self.minimal_subtree(tid)
        allowed = [self.grammar.viable_types(arm.target) for arm in definition.arms]
        product = trace_product(self.schema, [tid], arms, allowed, self.reach)
        trace = product.shortest_word()
        if trace is None:
            raise WitnessError(
                f"no trace for {definition.var!r} at type {tid!r} "
                "(viability promised one; this is a bug)"
            )
        segments, end_types = _split_trace(trace)
        # Each segment i starts with the first edge of arm i; realize the
        # remainder of the path through the schema graph.
        first_symbols: List[Tuple[str, str]] = []
        subtree_oids: List[str] = []
        for index, (segment, end_type) in enumerate(zip(segments, end_types)):
            first_label = segment[0]
            rest = segment[1:]
            step_type = self._first_target(tid, first_label, rest, end_type, index)
            first_symbols.append((first_label, step_type))
            subtree_oids.append(
                self.build_path(
                    step_type, rest, end_type, definition.arms[index].target
                )
            )
        word = self._embed_in_content(tid, first_symbols)
        oid = self.fresh_oid()
        edges = []
        pending = list(zip(first_symbols, subtree_oids))
        for symbol in word:
            if pending and symbol == pending[0][0]:
                edges.append(Edge(symbol[0], pending.pop(0)[1]))
            else:
                edges.append(Edge(symbol[0], self.minimal_subtree(symbol[1])))
        if pending:
            raise WitnessError("content embedding failed to place all arms")
        self.nodes.append(Node(oid, NodeKind.ORDERED, edges=edges))
        return oid

    def _first_target(
        self,
        tid: str,
        first_label: str,
        rest: Sequence[str],
        end_type: str,
        arm_index: int,
    ) -> str:
        """Choose the type behind the arm's first edge such that the rest
        of the label word can reach ``end_type`` through Γ(S)."""
        for label, target in sorted(self.edges.get(tid, ())):
            if label != first_label:
                continue
            if self._path_exists(target, rest, end_type):
                return target
        raise WitnessError(
            f"no schema edge realizes arm {arm_index} of the trace"
        )

    def _path_exists(self, start: str, labels: Sequence[str], end: str) -> bool:
        current = {start}
        for label in labels:
            nxt: Set[str] = set()
            for tid in current:
                for edge_label, target in self.edges.get(tid, ()):
                    if edge_label == label:
                        nxt.add(target)
            if not nxt:
                return False
            current = nxt
        return end in current

    def build_path(
        self, start: str, labels: Sequence[str], end: str, target_var: str
    ) -> str:
        """Materialize a path with the given labels from a ``start``-typed
        node to the target variable's witness node (built recursively)."""
        # Choose the type sequence greedily (backwards-checked).
        types = [start]
        current = start
        for index, label in enumerate(labels):
            remaining = labels[index + 1 :]
            chosen = None
            for edge_label, target in sorted(self.edges.get(current, ())):
                if edge_label == label and self._path_exists(target, remaining, end):
                    chosen = target
                    break
            if chosen is None:
                raise WitnessError("path realization failed (should not happen)")
            types.append(chosen)
            current = chosen
        # Build from the end back: the last node is the variable's witness.
        tail_oid = self.build_variable(target_var, types[-1])
        for index in range(len(labels) - 1, -1, -1):
            tail_oid = self._node_with_child(types[index], labels[index], types[index + 1], tail_oid)
        return tail_oid

    def _node_with_child(
        self, tid: str, label: str, child_tid: str, child_oid: str
    ) -> str:
        """A ``tid``-node whose content embeds one ``(label, child_tid)``
        edge pointing at ``child_oid`` (fillers minimal)."""
        word = self._embed_in_content(tid, [(label, child_tid)])
        oid = self.fresh_oid()
        edges = []
        placed = False
        for symbol in word:
            if not placed and symbol == (label, child_tid):
                edges.append(Edge(label, child_oid))
                placed = True
            else:
                edges.append(Edge(symbol[0], self.minimal_subtree(symbol[1])))
        if not placed:
            raise WitnessError("content embedding lost the path edge")
        self.nodes.append(Node(oid, NodeKind.ORDERED, edges=edges))
        return oid

    # ------------------------------------------------------------------
    # Content words and minimal subtrees
    # ------------------------------------------------------------------

    def _embed_in_content(
        self, tid: str, required: Sequence[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """A shortest word of the type's content language containing the
        required symbols in order (at distinct, increasing positions)."""
        nfa = self._restricted(tid)
        start = (nfa.initial_states(), 0)
        # BFS over (state set, progress) recording the word built so far.
        from collections import deque

        queue = deque([(start, [])])
        seen = {start}
        while queue:
            (states, progress), word = queue.popleft()
            if progress == len(required) and (states & nfa.accepting):
                return word
            for symbol in sorted(
                {
                    s
                    for q in states
                    for s, _dst in nfa.arcs_from(q)
                    if s is not EPS
                },
                key=repr,
            ):
                next_states = nfa.step(states, symbol)
                if not next_states:
                    continue
                options = [progress]
                if progress < len(required) and symbol == required[progress]:
                    options.append(progress + 1)
                for next_progress in options:
                    state = (next_states, next_progress)
                    if state not in seen:
                        seen.add(state)
                        queue.append((state, word + [symbol]))
        raise WitnessError(
            f"cannot embed {required!r} into the content of {tid!r}"
        )

    def _restricted(self, tid: str) -> NFA:
        nfa = self.schema.compile_regex(tid)
        inhabited = self.schema.inhabited_types()
        transitions = {}
        for src, arcs in nfa.transitions.items():
            kept = [
                (symbol, dst)
                for symbol, dst in arcs
                if symbol is EPS or symbol[1] in inhabited
            ]
            if kept:
                transitions[src] = kept
        return NFA(nfa.n_states, nfa.alphabet, nfa.start, nfa.accepting, transitions)

    def minimal_subtree(self, tid: str) -> str:
        """A smallest conforming subtree of type ``tid`` (rank-guided)."""
        type_def = self.schema.type(tid)
        oid = self.fresh_oid()
        if type_def.is_atomic:
            values = {"string": "w", "int": 0, "float": 0.5}
            self.nodes.append(
                Node(oid, NodeKind.ATOMIC, value=values[type_def.atomic])
            )
            return oid
        rank = self.ranks.get(tid)
        if rank is None:
            raise WitnessError(f"type {tid!r} is uninhabited")
        word = self._shortest_low_rank_word(tid, rank)
        edges = [
            Edge(label, self.minimal_subtree(target)) for label, target in word
        ]
        kind = NodeKind.ORDERED if type_def.is_ordered else NodeKind.UNORDERED
        self.nodes.append(Node(oid, kind, edges=edges))
        return oid

    def _shortest_low_rank_word(self, tid: str, rank: int) -> List[Tuple[str, str]]:
        """A shortest content word using only targets of lower rank."""
        nfa = self.schema.compile_regex(tid)
        allowed = {t for t, r in self.ranks.items() if r < rank}
        from collections import deque

        start = nfa.initial_states()
        queue = deque([(start, [])])
        seen = {start}
        while queue:
            states, word = queue.popleft()
            if states & nfa.accepting:
                return word
            symbols = sorted(
                {
                    s
                    for q in states
                    for s, _dst in nfa.arcs_from(q)
                    if s is not EPS and s[1] in allowed
                },
                key=repr,
            )
            for symbol in symbols:
                nxt = nfa.step(states, symbol)
                if nxt and nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, word + [symbol]))
        raise WitnessError(f"no low-rank content word for {tid!r}")


def _split_trace(trace: Sequence) -> Tuple[List[List[str]], List[str]]:
    """Split a trace word into per-arm label segments and end types."""
    segments: List[List[str]] = []
    end_types: List[str] = []
    current: Optional[List[str]] = None
    for symbol in trace:
        if is_marker(symbol):
            _tag, index, tid = symbol
            if index == 0:
                current = []
                continue
            segments.append(current or [])
            end_types.append(tid)
            current = []
        else:
            assert current is not None, "trace must start with the root marker"
            current.append(symbol)
    return segments, end_types
