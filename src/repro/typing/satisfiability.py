"""Type correctness (satisfiability) of queries w.r.t. schemas — Section 3.

The problem: given a schema ``S`` and a query ``Q``, does some data graph
conforming to ``S`` give ``Q`` a non-empty result?

The implementation is the executable form of the traces technique
(Section 3.4) and is *exact* for the full language: regular path
expressions, wildcards, label/value variables, ordered and unordered
patterns and types, referenceable variables, and joins.  Its cost profile
matches Table 2 cell by cell, because the exponential work is confined to
exactly the features the paper proves hard:

* **joins** — node-join and label-join variables are *pinned* by candidate
  enumeration (types × labels).  Join-free queries skip the enumeration
  entirely; bounded joins enumerate a constant number of candidates
  (PTIME); tagged schemas with constant-suffix paths collapse each
  candidate set to one (PTIME even with joins).
* **unordered matching** — sibling paths can be forced to overlap, so the
  checker carries *joint requirements* through shared edges; the recursion
  is exponential only in the overlap width.  Homogeneous unordered
  collections never force overlap growth.

Everything else — path reachability, word search over a type's content
regex, completion checks — is polynomial product automaton work
(:mod:`repro.typing.reach`).

Pinning semantics: a *pin* fixes a node variable to a type id, a label
variable (``$l``) to a label, or a value variable (``$v``) to an atomic
type name.  Satisfiability enumerates pins for the join variables; the
type-checking and inference entry points (:mod:`repro.typing.typecheck`,
:mod:`repro.typing.inference`) pass user-chosen pins straight through.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..automata.syntax import ANY, Regex, Sym
from ..engine import Engine, get_default_engine
from ..engine.core import Runner
from ..query.model import PatternDef, PatternKind, Query
from ..schema.model import ATOMIC_TYPE_NAMES, Schema, TypeKind
from .reach import SchemaReach

#: Pin values: type id (node var), label (label var), atomic name (value var).
Pins = Dict[str, str]


class ArmSpec(NamedTuple):
    """A normalized pattern arm: label variables become regexes."""

    key: Tuple[str, int]
    regex: Regex
    target: str


class DefSpec(NamedTuple):
    """A normalized pattern definition.

    ``partial`` carries the first-edge order constraints of a partially
    ordered definition (None for the default total order).
    """

    var: str
    kind: PatternKind
    value: Optional[object]
    value_var: Optional[str]
    arms: Tuple[ArmSpec, ...]
    partial: Optional[Tuple[Tuple[int, int], ...]] = None


#: A pending path requirement: (arm key, walk state of the arm's path
#: automaton).  The state is backend-dependent — a frozenset of NFA
#: states on the legacy backend, an integer DFA state on the compiled
#: one — and always opaque: it is only hashed, compared, and passed back
#: into the automaton that produced it.  A dead walk is represented by
#: the *absence* of a requirement, never by a falsy state (integer state
#: 0 is live).
Requirement = Tuple[Tuple[str, int], object]


def is_satisfiable(
    query: Query,
    schema: Schema,
    pins: Optional[Pins] = None,
    engine: Optional[Engine] = None,
) -> bool:
    """Decide type correctness: does ``query`` return a non-empty result on
    some instance of ``schema`` (respecting the given pins)?"""
    return SatisfiabilityChecker(query, schema, engine).satisfiable(pins or {})


class SatisfiabilityChecker:
    """Reusable checker for one (query, schema) pair.

    Construct once and call :meth:`satisfiable` with different pin sets;
    schema-side artifacts (the schema graph, path automata, content NFAs)
    live in the engine's cache and are shared with every other consumer of
    the same engine.
    """

    def __init__(self, query: Query, schema: Schema, engine: Optional[Engine] = None):
        self.query = query
        self.schema = schema
        self.engine = engine if engine is not None else get_default_engine()
        self.reach = self.engine.reach(schema)
        self.reachable = self.engine.reachable_types(schema)
        self.enumerated: int = 0  # pin assignments tried, for instrumentation

    # ------------------------------------------------------------------
    # Join enumeration
    # ------------------------------------------------------------------

    def satisfiable(self, pins: Pins) -> bool:
        """Enumerate pins for join variables and test each completion."""
        self._validate_pins(pins)
        free_vars: List[str] = []
        domains: List[List[str]] = []
        for var in self.query.node_join_vars():
            if var in pins:
                continue
            free_vars.append(var)
            domains.append(self._node_var_domain(var))
        for var in self.query.label_join_vars():
            if var in pins:
                continue
            free_vars.append(var)
            domains.append(sorted(self.schema.labels()))
        for var in self.query.value_join_vars():
            if var in pins:
                continue
            free_vars.append(var)
            domains.append(list(ATOMIC_TYPE_NAMES))
        for combo in itertools.product(*domains):
            self.enumerated += 1
            full_pins = dict(pins)
            full_pins.update(zip(free_vars, combo))
            if _PinnedChecker(self, full_pins).check():
                return True
        return False

    def _validate_pins(self, pins: Pins) -> None:
        for name, value in pins.items():
            if name.startswith("$"):
                continue
            if value not in self.schema:
                raise ValueError(f"pin {name!r} -> unknown type {value!r}")

    def _node_var_domain(self, var: str) -> List[str]:
        """Candidate types for a join node variable (the enumeration domain).

        Restricted to types reachable in the schema graph; for tagged
        schemas with constant-suffix incoming paths this is where the
        domain collapses to a single type, recovering the PTIME cells of
        Table 2 without a separate algorithm.
        """
        candidates = set(self.reachable)
        if var.startswith("&"):
            candidates = {t for t in candidates if t.startswith("&")}
        definition = self.query.definition(var)
        if definition is not None:
            wanted = _kind_of(definition)
            if wanted is not None:
                candidates = {
                    t for t in candidates if self.schema.type(t).kind is wanted
                }
        candidates &= self._incoming_type_bound(var)
        return sorted(candidates)

    def _incoming_type_bound(self, var: str) -> Set[str]:
        """Types var can have judging only by its incoming paths' suffixes.

        For every arm targeting ``var`` whose path has a determined constant
        suffix, the end type must be a tag-compatible target of that label.
        This is the tagging/constant-suffix shortcut of Section 3.1.
        """
        bound = set(self.reachable)
        relation = self.schema.tag_relation()
        from ..automata.syntax import last_symbols

        for pattern in self.query.patterns:
            for arm in pattern.arms:
                if arm.target != var or arm.is_label_var:
                    continue
                suffix = last_symbols(arm.path)
                if suffix is None:
                    continue
                allowed: Set[str] = set()
                for label in suffix:
                    allowed |= relation.get(label, set())
                bound &= allowed
        return bound


def _kind_of(definition: PatternDef) -> Optional[TypeKind]:
    if definition.kind is PatternKind.ORDERED:
        return TypeKind.ORDERED
    if definition.kind is PatternKind.UNORDERED:
        return TypeKind.UNORDERED
    if definition.kind in (PatternKind.VALUE, PatternKind.VALUE_VAR):
        return TypeKind.ATOMIC
    return None


class _PinnedChecker:
    """Satisfiability with every join variable pinned.

    The remaining pattern is join-free modulo the pinned cut points, so the
    check is a bottom-up computation over the pattern forest with product
    reachability for paths and a word search per node — the concrete form
    of the acyclic extended CFG for Tr(S) in Section 3.4.
    """

    def __init__(self, parent: SatisfiabilityChecker, pins: Pins):
        self.schema = parent.schema
        self.query = parent.query
        self.engine = parent.engine
        self.reach = parent.reach
        self.reachable = parent.reachable
        self.pins = pins
        self.defs: Dict[str, DefSpec] = {}
        self.arms: Dict[Tuple[str, int], ArmSpec] = {}
        for pattern in self.query.patterns:
            spec = self._normalize(pattern)
            self.defs[pattern.var] = spec
            for arm in spec.arms:
                self.arms[arm.key] = arm
        # Least-fixpoint bookkeeping for recursive schemas.
        self._known_true: Set[Tuple] = set()
        self._memo: Dict[Tuple, bool] = {}
        self._in_progress: Set[Tuple] = set()
        self._grew = False

    def _normalize(self, pattern: PatternDef) -> DefSpec:
        arms = []
        for index, arm in enumerate(pattern.arms):
            if arm.is_label_var:
                pinned = self.pins.get("$" + arm.path.name)
                regex: Regex = Sym(pinned) if pinned is not None else ANY
            else:
                regex = arm.path
            arms.append(ArmSpec((pattern.var, index), regex, arm.target))
        return DefSpec(
            pattern.var,
            pattern.kind,
            pattern.value,
            pattern.value_var,
            tuple(arms),
            pattern.partial_order,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self) -> bool:
        root_var = self.query.root_var
        root_pin = self.pins.get(root_var)
        if root_pin is not None and root_pin != self.schema.root:
            return False
        targets = [(self.schema.root, frozenset([root_var]), frozenset())]
        for var, tid in self.pins.items():
            if var.startswith("$") or var == root_var:
                continue
            if self.query.definition(var) is None and var not in self.query.node_vars():
                raise ValueError(f"pin for unknown variable {var!r}")
            if tid not in self.reachable:
                return False
            targets.append((tid, frozenset([var]), frozenset()))
        return self._solve_all(targets)

    def _solve_all(self, targets: Sequence[Tuple]) -> bool:
        """Evaluate all target states under least-fixpoint iteration."""
        while True:
            self._memo = {}
            self._in_progress = set()
            self._grew = False
            results = [self._state_sat(state) for state in targets]
            if all(results):
                return True
            if not self._grew:
                return False

    # ------------------------------------------------------------------
    # Node-state satisfiability (the recursive core)
    # ------------------------------------------------------------------

    def _state_sat(
        self,
        state: Tuple[str, FrozenSet[str], FrozenSet[Requirement]],
    ) -> bool:
        """Can a node of type ``state[0]`` host all of ``state[1]`` (bound
        variables) while completing all of ``state[2]`` (path requirements
        passing through or ending here), in some instance?"""
        if state in self._known_true:
            return True
        if state in self._memo:
            return self._memo[state]
        if state in self._in_progress:
            # Least-fixpoint seed: assume false; outer iteration re-runs
            # until no new true states appear.
            return False
        self._in_progress.add(state)
        result = self._compute_state(state)
        self._in_progress.discard(state)
        self._memo[state] = result
        if result and state not in self._known_true:
            self._known_true.add(state)
            self._grew = True
        return result

    def _compute_state(
        self, state: Tuple[str, FrozenSet[str], FrozenSet[Requirement]]
    ) -> bool:
        tid, vars_here, reqs = state
        type_def = self.schema.type(tid)
        # Pin and referenceability constraints for the bound variables.
        for var in vars_here:
            pinned = self.pins.get(var)
            if pinned is not None and pinned != tid:
                return False
            if var.startswith("&") and not tid.startswith("&"):
                return False
        # Choose which requirements end at this node (their targets then
        # bind here); the rest must continue into the children.
        endable = [
            req for req in reqs if self._req_accepting(req)
        ]
        for end_choice in _subsets(endable):
            ended = frozenset(end_choice)
            continuing = reqs - ended
            new_vars = vars_here | {self.arms[key].target for key, _s in ended}
            if self._vars_and_paths_sat(tid, type_def, new_vars, continuing):
                return True
        return False

    def _req_accepting(self, req: Requirement) -> bool:
        key, state = req
        return self.reach.path(self.arms[key].regex).is_accepting(state)

    def _vars_and_paths_sat(
        self,
        tid: str,
        type_def,
        vars_here: FrozenSet[str],
        reqs: FrozenSet[Requirement],
    ) -> bool:
        # Re-check constraints for variables added by ended requirements.
        for var in vars_here:
            pinned = self.pins.get(var)
            if pinned is not None and pinned != tid:
                return False
            if var.startswith("&") and not tid.startswith("&"):
                return False
        collection_defs: List[DefSpec] = []
        constants: List[object] = []
        for var in sorted(vars_here):
            spec = self.defs.get(var)
            if spec is None:
                continue
            if spec.kind is PatternKind.VALUE:
                if not type_def.is_atomic:
                    return False
                from ..schema.model import atomic_matches

                if not atomic_matches(type_def.atomic, spec.value):
                    return False
                constants.append(spec.value)
            elif spec.kind is PatternKind.VALUE_VAR:
                if not type_def.is_atomic:
                    return False
                pinned = self.pins.get("$" + spec.value_var)
                if pinned is not None and pinned != type_def.atomic:
                    return False
            elif spec.kind is PatternKind.ORDERED:
                if not type_def.is_ordered:
                    return False
                collection_defs.append(spec)
            else:  # UNORDERED
                if not type_def.is_unordered:
                    return False
                collection_defs.append(spec)
        if len(set(map(repr, constants))) > 1:
            return False
        if type_def.is_atomic:
            return not reqs  # atomic nodes have no outgoing edges
        if not collection_defs and not reqs:
            # No constraints below this node; it only needs to exist.
            return tid in self.schema.inhabited_types(self.engine)
        return self._word_search(tid, tuple(collection_defs), reqs)

    # ------------------------------------------------------------------
    # Word search over a type's content model
    # ------------------------------------------------------------------

    def _type_runner(self, tid: str) -> Runner:
        """The type's content automaton (restricted to inhabited targets)
        on the engine's backend."""
        return self.engine.content_runner(self.schema, tid, restricted=True)

    def _word_search(
        self,
        tid: str,
        defs: Tuple[DefSpec, ...],
        reqs: FrozenSet[Requirement],
    ) -> bool:
        """Does some child word of type ``tid`` realize all pattern arms of
        ``defs`` and carry all ``reqs`` into (or out of) its children?

        Searches the product of the content automaton with per-definition
        arm progress and the set of unplaced requirements.  Ordered
        definitions advance their arms left to right on distinct word
        positions (Definition 2.2's ordering); unordered definitions may
        place arms anywhere, overlapping freely (set semantics).

        On the compiled backend the content automaton is a minimized,
        dead-state-pruned table, so every offered symbol can still
        complete a content word — the search never wanders into doomed
        word prefixes.
        """
        runner = self._type_runner(tid)
        content_start = runner.initial()
        if content_start is None:
            return False  # the content language is empty

        def initial_progress(spec: DefSpec):
            if spec.kind is PatternKind.ORDERED and spec.partial is None:
                return 0
            return frozenset()

        start = (
            content_start,
            tuple(initial_progress(spec) for spec in defs),
            reqs,
        )
        visited: Set[Tuple] = set()
        stack = [start]
        while stack:
            state, progress, remaining = stack.pop()
            key = (state, progress, remaining)
            if key in visited:
                continue
            visited.add(key)
            if (
                runner.is_accepting(state)
                and not remaining
                and all(
                    self._def_complete(spec, prog)
                    for spec, prog in zip(defs, progress)
                )
            ):
                return True
            for symbol in runner.available_symbols(state):
                next_state = runner.step(state, symbol)
                if next_state is None:
                    continue
                label, child_tid = symbol
                for advance, riders in self._placements(defs, progress, remaining, label):
                    child_reqs: List[Requirement] = []
                    ok = True
                    for spec, arm in advance:
                        arm_runner = self.reach.path(arm.regex)
                        arm_start = arm_runner.initial()
                        stepped = (
                            arm_runner.step(arm_start, label)
                            if arm_start is not None
                            else None
                        )
                        if stepped is None:
                            ok = False
                            break
                        child_reqs.append((arm.key, stepped))
                    if not ok:
                        continue
                    for key_state in riders:
                        arm_key, arm_state = key_state
                        arm_runner = self.reach.path(self.arms[arm_key].regex)
                        stepped = arm_runner.step(arm_state, label)
                        if stepped is None:
                            ok = False
                            break
                        child_reqs.append((arm_key, stepped))
                    if not ok:
                        continue
                    if not self._child_ok(child_tid, child_reqs):
                        continue
                    new_progress = self._advance_progress(defs, progress, advance)
                    stack.append(
                        (next_state, new_progress, remaining - frozenset(riders))
                    )
        return False

    @staticmethod
    def _def_complete(spec: DefSpec, prog) -> bool:
        if isinstance(prog, int):
            return prog == len(spec.arms)
        return len(prog) == len(spec.arms)

    def _placements(
        self,
        defs: Tuple[DefSpec, ...],
        progress: Tuple,
        remaining: FrozenSet[Requirement],
        label: str,
    ) -> Iterator[Tuple[List[Tuple[DefSpec, ArmSpec]], Tuple[Requirement, ...]]]:
        """All ways to start arms / carry requirements on this word symbol.

        Per ordered definition: zero or one next arm (positions strictly
        increase).  Per unordered definition: any subset of its unmatched
        arms.  Plus any subset of the pending requirements.  Only arms and
        requirements whose regex can consume ``label`` are offered.
        """
        per_def_options: List[List[List[Tuple[DefSpec, ArmSpec]]]] = []
        for spec, prog in zip(defs, progress):
            options: List[List[Tuple[DefSpec, ArmSpec]]] = [[]]
            if spec.kind is PatternKind.ORDERED and spec.partial is None:
                if prog < len(spec.arms):
                    arm = spec.arms[prog]
                    if self._arm_consumes(arm, label):
                        options.append([(spec, arm)])
            elif spec.kind is PatternKind.ORDERED:
                # Partially ordered: any subset of unmatched arms whose
                # predecessors are already matched at earlier positions and
                # that are mutually unconstrained (a constraint forbids
                # sharing this first edge).
                order = spec.partial
                placeable = [
                    index
                    for index, arm in enumerate(spec.arms)
                    if index not in prog
                    and self._arm_consumes(arm, label)
                    and all(i in prog for i, j in order if j == index)
                ]
                for subset in _subsets(placeable):
                    if not subset:
                        continue
                    chosen = set(subset)
                    if any(
                        i in chosen and j in chosen for i, j in order
                    ):
                        continue
                    options.append([(spec, spec.arms[index]) for index in subset])
            else:
                unmatched = [
                    arm
                    for index, arm in enumerate(spec.arms)
                    if index not in prog and self._arm_consumes(arm, label)
                ]
                for subset in _subsets(unmatched):
                    if subset:
                        options.append([(spec, arm) for arm in subset])
            per_def_options.append(options)
        rider_candidates = [
            req
            for req in remaining
            if self._arm_consumes(self.arms[req[0]], label, req[1])
        ]
        for def_combo in itertools.product(*per_def_options):
            advance = [pair for option in def_combo for pair in option]
            for rider_subset in _subsets(rider_candidates):
                yield advance, tuple(rider_subset)

    def _arm_consumes(
        self, arm: ArmSpec, label: str, state: Optional[object] = None
    ) -> bool:
        runner = self.reach.path(arm.regex)
        base = state if state is not None else runner.initial()
        if base is None:
            return False
        return runner.step(base, label) is not None

    def _child_ok(self, child_tid: str, child_reqs: List[Requirement]) -> bool:
        if not child_reqs:
            return True
        if len(child_reqs) == 1:
            return self._single_completion(child_tid, child_reqs[0])
        return self._state_sat(
            (child_tid, frozenset(), frozenset(child_reqs))
        )

    @staticmethod
    def _advance_progress(
        defs: Tuple[DefSpec, ...],
        progress: Tuple,
        advance: List[Tuple[DefSpec, ArmSpec]],
    ) -> Tuple:
        new_progress = list(progress)
        for spec, arm in advance:
            index = defs.index(spec)
            if isinstance(new_progress[index], int):
                new_progress[index] = new_progress[index] + 1
            else:
                arm_index = spec.arms.index(arm)
                new_progress[index] = new_progress[index] | {arm_index}
        return tuple(new_progress)

    # ------------------------------------------------------------------
    # Single-path completion (the fast, purely polynomial path)
    # ------------------------------------------------------------------

    def _single_completion(self, start_tid: str, req: Requirement) -> bool:
        key, state = req
        arm = self.arms[key]
        end_types = self._completion_types(arm.target)
        return self.reach.can_complete(arm.regex, start_tid, state, end_types)

    def _completion_types(self, var: str) -> FrozenSet[str]:
        """Types at which a path targeting ``var`` may end.

        For pinned variables this is the pinned type (validity of the
        pinned variable's own definition is checked once, globally, in
        :meth:`check`).  Otherwise every reachable type at which the
        variable's definition (if any) is satisfiable qualifies.
        """
        pinned = self.pins.get(var)
        if pinned is not None:
            return frozenset([pinned])
        result = set()
        for tid in self.reachable:
            if self._state_sat((tid, frozenset([var]), frozenset())):
                result.add(tid)
        return frozenset(result)


def _subsets(items: Sequence) -> Iterator[Tuple]:
    """All subsets of ``items`` (small inputs only)."""
    for size in range(len(items) + 1):
        yield from itertools.combinations(items, size)
