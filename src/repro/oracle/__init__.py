"""Brute-force reference semantics and differential cross-checking.

The production stack decides everything through one optimized pipeline:
hash-consed regexes -> Thompson NFAs -> products -> state elimination,
memoized by the engine and served forever from its caches.  Nothing in
that pipeline is independently verified — a wrong cached artifact would
be wrong on every future request.  This subpackage is the backstop: small,
obviously-correct reference implementations of Definitions 2.1–2.3 that
share *no code* with the automata layer, plus differential runners that
cross-check the production procedures against them on seeded random
inputs and greedily shrink any discrepancy to a minimal counterexample.

* :mod:`repro.oracle.rex` — regex membership by Brzozowski derivatives
  and bounded word enumeration (language equality/containment up to a
  length bound);
* :mod:`repro.oracle.eval` — a naive query evaluator that enumerates
  candidate bindings directly from Definition 2.3;
* :mod:`repro.oracle.conformance` — conformance by exhaustive search
  over type assignments (Definition 2.1 checked verbatim);
* :mod:`repro.oracle.shrink` — greedy shrinking of words, regexes,
  graphs, schemas, and queries;
* :mod:`repro.oracle.differential` — the four differential runners and
  the ``repro fuzz`` entry point (:func:`run_fuzz`).

See ``docs/testing.md`` for how to reproduce a fuzz counterexample.
"""

from .rex import (
    brz_accepts,
    derivative,
    bounded_language,
    bounded_counterexample,
    bounded_equivalent,
    bounded_subset,
)
from .eval import naive_evaluate, naive_satisfies
from .conformance import (
    exhaustive_conforms,
    exhaustive_type_assignment,
    check_assignment,
)
from .shrink import greedy_shrink
from .differential import (
    Discrepancy,
    FuzzReport,
    SECTIONS,
    run_automata_section,
    run_conformance_section,
    run_containment_section,
    run_delta_section,
    run_eval_section,
    run_fuzz,
)

__all__ = [
    "Discrepancy",
    "FuzzReport",
    "SECTIONS",
    "bounded_counterexample",
    "bounded_equivalent",
    "bounded_language",
    "bounded_subset",
    "brz_accepts",
    "check_assignment",
    "derivative",
    "exhaustive_conforms",
    "exhaustive_type_assignment",
    "greedy_shrink",
    "naive_evaluate",
    "naive_satisfies",
    "run_automata_section",
    "run_conformance_section",
    "run_containment_section",
    "run_delta_section",
    "run_eval_section",
    "run_fuzz",
]
