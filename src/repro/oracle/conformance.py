"""Conformance by exhaustive type-assignment search (Definition 2.1).

The production checker (:mod:`repro.schema.conformance`) refines
candidate sets to a fixpoint and searches only over referenceable nodes,
delegating word problems to the automata layer.  This oracle instead
enumerates *every* kind-compatible total assignment ``oid -> tid`` and
checks the four conditions of Definition 2.1 verbatim:

1. the root maps to the root type;
2. referenceable nodes map to referenceable types;
3. atomic nodes map to atomic types containing their value;
4. a collection node's typed edge sequence ``(label, tau(target))...``
   is in the type's regex language — for unordered nodes, some
   permutation of it is.

Regex membership uses Brzozowski derivatives (:mod:`repro.oracle.rex`)
and unordered membership literally tries the distinct permutations, so
nothing is shared with the NFA/bag machinery under test.  Exponential in
the number of nodes; meant for the small graphs the fuzzers produce.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from ..data.model import AtomicValue, DataGraph, Node
from ..schema.model import Schema, TypeDef
from .rex import brz_accepts

#: Cap on ``prod(len(candidates))`` before enumeration is refused.
MAX_ASSIGNMENTS = 200_000


def _value_in_atomic(atomic: str, value: AtomicValue) -> bool:
    if atomic == "string":
        return isinstance(value, str)
    if atomic == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if atomic == "float":
        return isinstance(value, float)
    return False


def _kind_ok(node: Node, type_def: TypeDef) -> bool:
    if node.is_referenceable and not type_def.is_referenceable:
        return False
    if node.is_atomic:
        return type_def.is_atomic and _value_in_atomic(type_def.atomic, node.value)
    if node.is_ordered:
        return type_def.is_ordered
    return type_def.is_unordered


def check_assignment(
    graph: DataGraph, schema: Schema, assignment: Dict[str, str]
) -> bool:
    """Check a total assignment against Definition 2.1, condition by condition."""
    if assignment.get(graph.root) != schema.root:
        return False
    for node in graph:
        tid = assignment.get(node.oid)
        if tid is None or tid not in schema:
            return False
        type_def = schema.type(tid)
        if not _kind_ok(node, type_def):
            return False
        if node.is_atomic:
            continue
        typed = tuple(
            (edge.label, assignment[edge.target]) for edge in node.edges
        )
        if node.is_ordered:
            if not brz_accepts(type_def.regex, typed):
                return False
        else:
            if not any(
                brz_accepts(type_def.regex, ordering)
                for ordering in set(itertools.permutations(typed))
            ):
                return False
    return True


def exhaustive_type_assignment(
    graph: DataGraph,
    schema: Schema,
    max_assignments: int = MAX_ASSIGNMENTS,
) -> Optional[Dict[str, str]]:
    """Search all compatible assignments; return the first that checks out.

    Raises:
        ValueError: if the candidate product exceeds ``max_assignments``
            (the caller should shrink its inputs instead of waiting).
    """
    oids = sorted(graph.nodes)
    candidates: List[List[str]] = []
    for oid in oids:
        node = graph.node(oid)
        options = [t.tid for t in schema if _kind_ok(node, t)]
        if oid == graph.root:
            options = [tid for tid in options if tid == schema.root]
        if not options:
            return None
        candidates.append(options)
    total = 1
    for options in candidates:
        total *= len(options)
        if total > max_assignments:
            raise ValueError(
                f"assignment space too large for exhaustive search ({total}+ "
                f"candidates over {len(oids)} nodes)"
            )
    for combo in itertools.product(*candidates):
        assignment = dict(zip(oids, combo))
        if check_assignment(graph, schema, assignment):
            return assignment
    return None


def exhaustive_conforms(graph: DataGraph, schema: Schema) -> bool:
    """True if some total type assignment satisfies Definition 2.1."""
    return exhaustive_type_assignment(graph, schema) is not None
