"""Reference regex semantics: Brzozowski derivatives, bounded enumeration.

This is the oracle side of the automata differential checks.  Membership
is decided purely on the syntax tree — ``w in lang(R)`` iff the iterated
derivative of ``R`` by the symbols of ``w`` is nullable — so it shares no
code with the Thompson/subset/minimization pipeline it is used to verify.

Derivatives are canonicalized (alternation parts sorted and deduplicated)
so the set of derivatives of a fixed expression is finite modulo the
usual ACI identities; bounded language enumeration walks the derivative
tree and prunes branches whose residual is the empty language, which the
smart constructors float to a literal :class:`~repro.automata.syntax.Empty`
node.

The wildcard ``_`` is interpreted the same way :func:`repro.automata.nfa.
thompson` interprets it: it matches exactly the symbols of the alphabet
the word is drawn from, so derivatives here take ``d_s(_) = epsilon`` for
every alphabet symbol ``s``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..automata.syntax import (
    EMPTY,
    EPSILON,
    Alt,
    Any,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    Symbol,
    alt,
    concat,
)

#: A word over the (arbitrary hashable) symbol vocabulary.
Word = Tuple[Symbol, ...]


def _canonical_alt(*parts: Regex) -> Regex:
    """Alternation with parts sorted by repr: canonical modulo ACI.

    The smart constructor already flattens and deduplicates; sorting on
    top makes ``a|b`` and ``b|a`` the same node, which keeps the set of
    iterated derivatives finite (Brzozowski's theorem needs exactly
    associativity, commutativity, and idempotence of ``|``).
    """
    flattened = alt(*parts)
    if isinstance(flattened, Alt):
        return Alt(tuple(sorted(flattened.parts, key=repr)))
    return flattened


def derivative(regex: Regex, symbol: Symbol) -> Regex:
    """The Brzozowski derivative ``d_symbol(regex)``.

    ``w . rest in lang(R)`` iff ``rest in lang(d_w(R))``; a word is a
    member iff the iterated derivative is nullable.
    """
    if isinstance(regex, (Empty, Epsilon)):
        return EMPTY
    if isinstance(regex, Sym):
        return EPSILON if regex.symbol == symbol else EMPTY
    if isinstance(regex, Any):
        return EPSILON
    if isinstance(regex, Alt):
        return _canonical_alt(*(derivative(part, symbol) for part in regex.parts))
    if isinstance(regex, Concat):
        head, tail = regex.parts[0], concat(*regex.parts[1:])
        result = concat(derivative(head, symbol), tail)
        if head.nullable():
            result = _canonical_alt(result, derivative(tail, symbol))
        return result
    if isinstance(regex, Star):
        return concat(derivative(regex.inner, symbol), regex)
    raise TypeError(f"unknown regex node: {regex!r}")


def brz_accepts(regex: Regex, word: Iterable[Symbol]) -> bool:
    """Decide ``word in lang(regex)`` by iterated derivatives."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return False
    return current.nullable()


def bounded_language(
    regex: Regex, alphabet: Iterable[Symbol], max_length: int
) -> FrozenSet[Word]:
    """All words of ``lang(regex)`` of length at most ``max_length``.

    Walks the derivative tree breadth-first, pruning residuals that are
    the empty language (exact: with the smart constructors, a node has an
    empty language iff it *is* the ``Empty`` node).
    """
    return frozenset(enumerate_words(regex, alphabet, max_length))


def enumerate_words(
    regex: Regex, alphabet: Iterable[Symbol], max_length: int
) -> Iterator[Word]:
    """Yield the bounded language shortest-first (ties by symbol repr)."""
    symbols = sorted(frozenset(alphabet), key=repr)
    frontier: List[Tuple[Word, Regex]] = [((), regex)]
    for _length in range(max_length + 1):
        next_frontier: List[Tuple[Word, Regex]] = []
        for word, residual in frontier:
            if residual.nullable():
                yield word
            for symbol in symbols:
                stepped = derivative(residual, symbol)
                if not isinstance(stepped, Empty):
                    next_frontier.append((word + (symbol,), stepped))
        frontier = next_frontier


def bounded_subset(
    left: Regex, right: Regex, alphabet: Iterable[Symbol], max_length: int
) -> Optional[Word]:
    """A shortest word of ``lang(left) \\ lang(right)`` up to the bound.

    Returns None if every word of the left language with length at most
    ``max_length`` also belongs to the right language.  This refutes
    containment claims exactly and confirms them up to the bound.
    """
    for word in enumerate_words(left, alphabet, max_length):
        if not brz_accepts(right, word):
            return word
    return None


def bounded_counterexample(
    left: Regex, right: Regex, alphabet: Iterable[Symbol], max_length: int
) -> Optional[Word]:
    """A shortest word on which the two languages disagree, up to the bound."""
    alphabet = frozenset(alphabet)
    witness = bounded_subset(left, right, alphabet, max_length)
    other = bounded_subset(right, left, alphabet, max_length)
    if witness is None:
        return other
    if other is None:
        return witness
    return min((witness, other), key=lambda w: (len(w), repr(w)))


def bounded_equivalent(
    left: Regex, right: Regex, alphabet: Iterable[Symbol], max_length: int
) -> bool:
    """Language equality restricted to words of length at most the bound."""
    return bounded_counterexample(left, right, alphabet, max_length) is None


def all_words(alphabet: Iterable[Symbol], max_length: int) -> Iterator[Word]:
    """Every word over ``alphabet`` of length at most ``max_length``."""
    symbols = sorted(frozenset(alphabet), key=repr)
    for length in range(max_length + 1):
        for combo in itertools.product(symbols, repeat=length):
            yield combo
