"""Greedy shrinking of differential counterexamples.

When a differential runner finds a discrepancy, the raw random input is
rarely readable.  :func:`greedy_shrink` repeatedly replaces the failing
input by the first *smaller* candidate that still fails the predicate,
until no candidate does — a local minimum, reported as the counterexample.

Candidate generators are provided per input shape (words, regexes, data
graphs, schemas, queries).  They only propose structurally smaller
values, so shrinking always terminates; proposals that fail to build
(e.g. a graph that loses well-formedness when a node is dropped) are
skipped by construction.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple, TypeVar

from ..automata.syntax import (
    EPSILON,
    Alt,
    Concat,
    Epsilon,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    star,
)
from ..data.model import DataGraph, Node
from ..query.model import PatternArm, PatternDef, PatternKind, Query
from ..schema.model import Schema, TypeDef

T = TypeVar("T")

#: A candidate generator: proposes strictly smaller variants of a value.
Candidates = Callable[[T], Iterable[T]]


def greedy_shrink(
    value: T,
    candidates: Candidates,
    still_fails: Callable[[T], bool],
    max_steps: int = 500,
) -> T:
    """Shrink ``value`` while ``still_fails`` holds; return a local minimum.

    ``still_fails`` must be True for ``value`` itself; candidates raising
    any exception are treated as not failing (skipped).
    """
    current = value
    for _step in range(max_steps):
        for candidate in candidates(current):
            try:
                fails = still_fails(candidate)
            except Exception:
                fails = False
            if fails:
                current = candidate
                break
        else:
            return current
    return current


# ----------------------------------------------------------------------
# Words
# ----------------------------------------------------------------------


def word_candidates(word: Sequence) -> Iterator[Tuple]:
    """Drop chunks first (halves), then single symbols."""
    word = tuple(word)
    n = len(word)
    if n >= 2:
        yield word[: n // 2]
        yield word[n // 2 :]
    for index in range(n):
        yield word[:index] + word[index + 1 :]


# ----------------------------------------------------------------------
# Regexes
# ----------------------------------------------------------------------


def regex_candidates(regex: Regex) -> Iterator[Regex]:
    """Children first, then one-part deletions, then recursive rewrites."""
    for child in regex.children():
        yield child
    if isinstance(regex, (Alt, Concat)):
        build = alt if isinstance(regex, Alt) else concat
        for index in range(len(regex.parts)):
            yield build(*(p for i, p in enumerate(regex.parts) if i != index))
    if isinstance(regex, Star):
        yield EPSILON
        for inner in regex_candidates(regex.inner):
            yield star(inner)
    if isinstance(regex, (Alt, Concat)):
        build = alt if isinstance(regex, Alt) else concat
        for index, part in enumerate(regex.parts):
            for replacement in regex_candidates(part):
                parts = list(regex.parts)
                parts[index] = replacement
                yield build(*parts)
    if isinstance(regex, Sym):
        yield EPSILON


def regex_size(regex: Regex) -> int:
    """Node count of the syntax tree (shrinking quality metric)."""
    return sum(1 for _node in regex.walk())


# ----------------------------------------------------------------------
# Data graphs
# ----------------------------------------------------------------------


def graph_candidates(graph: DataGraph) -> Iterator[DataGraph]:
    """Drop a non-root node (with its incoming edges), or a single edge.

    Each proposal re-validates; ill-formed results are filtered out here
    so the shrink loop only sees well-formed graphs.
    """
    oids = [oid for oid in graph.nodes if oid != graph.root]
    for dropped in oids:
        survivors = []
        for node in graph:
            if node.oid == dropped:
                continue
            kept = [e for e in node.edges if e.target != dropped]
            survivors.append(_with_edges(node, kept))
        candidate = _try_graph(survivors)
        if candidate is not None:
            yield candidate
    for oid in graph.nodes:
        node = graph.node(oid)
        for index in range(len(node.edges)):
            kept = node.edges[:index] + node.edges[index + 1 :]
            survivors = [
                _with_edges(other, kept) if other.oid == oid else other
                for other in graph
            ]
            candidate = _try_graph(survivors)
            if candidate is not None:
                yield candidate


def _with_edges(node: Node, edges) -> Node:
    if node.is_atomic:
        return node
    return Node(node.oid, node.kind, edges=edges)


def _try_graph(nodes: List[Node]):
    try:
        return DataGraph(nodes, validate=True)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------


def schema_candidates(schema: Schema) -> Iterator[Schema]:
    """Drop an unreferenced non-root type, or shrink one type's regex."""
    tids = schema.tids()
    referenced = {schema.root}
    for type_def in schema:
        referenced.update(target for _label, target in type_def.symbols())
    for dropped in tids:
        if dropped in referenced:
            continue
        candidate = _try_schema(
            [schema.type(tid) for tid in tids if tid != dropped]
        )
        if candidate is not None:
            yield candidate
    for tid in tids:
        type_def = schema.type(tid)
        if type_def.regex is None:
            continue
        for smaller in regex_candidates(type_def.regex):
            try:
                replacement = TypeDef(tid, type_def.kind, regex=smaller)
            except ValueError:
                continue
            candidate = _try_schema(
                [replacement if t == tid else schema.type(t) for t in tids]
            )
            if candidate is not None:
                yield candidate


def _try_schema(types: List[TypeDef]):
    try:
        return Schema(types, validate=True)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


def query_candidates(query: Query) -> Iterator[Query]:
    """Drop a SELECT variable, a pattern definition, or a single arm."""
    for index in range(len(query.select)):
        select = query.select[:index] + query.select[index + 1 :]
        candidate = _try_query(select, list(query.patterns))
        if candidate is not None:
            yield candidate
    for index in range(1, len(query.patterns)):
        patterns = [p for i, p in enumerate(query.patterns) if i != index]
        candidate = _try_query(list(query.select), patterns)
        if candidate is not None:
            yield candidate
    for p_index, pattern in enumerate(query.patterns):
        if not pattern.is_collection or len(pattern.arms) <= 1:
            continue
        for a_index in range(len(pattern.arms)):
            arms = [a for i, a in enumerate(pattern.arms) if i != a_index]
            partial = None
            if pattern.partial_order is not None:
                partial = [
                    (i - (i > a_index), j - (j > a_index))
                    for i, j in pattern.partial_order
                    if i != a_index and j != a_index
                ]
            try:
                smaller = PatternDef(
                    pattern.var, pattern.kind, arms=arms, partial_order=partial
                )
            except ValueError:
                continue
            patterns = [
                smaller if i == p_index else p
                for i, p in enumerate(query.patterns)
            ]
            candidate = _try_query(list(query.select), patterns)
            if candidate is not None:
                yield candidate


def _try_query(select: List[str], patterns: List[PatternDef]):
    try:
        return Query(select, patterns, validate=True)
    except ValueError:
        return None
