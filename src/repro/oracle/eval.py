"""A naive query evaluator: candidate bindings straight from Definition 2.3.

The production evaluator (:mod:`repro.query.eval`) interleaves binding
extension with memoized NFA path search.  This oracle instead enumerates
*every* total candidate binding — node variables over all oids (the root
variable pinned to the root), label variables over all edge labels, value
variables over all atomic values — and then checks each pattern
definition of the query literally against the definition:

1. the root variable binds the root, referenceable variables bind
   referenceable nodes;
2. constant patterns need an atomic node with that value;
3. value-variable patterns need the variable bound to the node's value;
4. each arm ``R -> Y`` of a collection pattern needs a witness path from
   the node to the binding of ``Y`` whose label word is in ``lang(R)``
   (label-variable arms need a single edge carrying the bound label);
5. ordered patterns additionally need a choice of witness first edges
   with strictly increasing child positions along every declared order
   constraint (:meth:`~repro.query.model.PatternDef.order_pairs`).

Path existence is decided on the product of the graph with Brzozowski
derivatives of the arm's path expression (:mod:`repro.oracle.rex`), so no
automata code is shared with the implementation under test.  Exponential
in the number of variables — intended for the small graphs and queries
the fuzz generators produce.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..automata.syntax import Empty, Regex
from ..data.model import AtomicValue, DataGraph, Node
from ..query.model import PatternDef, PatternKind, Query
from .rex import brz_accepts, derivative

#: A projected result row, as the production ``evaluate`` returns it.
Binding = Dict[str, object]


def naive_evaluate(query: Query, graph: DataGraph) -> List[Binding]:
    """Evaluate by brute force; returns distinct SELECT-projected bindings.

    The result is order-normalized (sorted by repr) — compare as sets
    against the production evaluator's output.
    """
    rows: Set[Tuple[Tuple[str, object], ...]] = set()
    for binding in _candidate_bindings(query, graph):
        if _binding_satisfies(query, graph, binding):
            rows.add(tuple(sorted((name, binding[name]) for name in query.select)))
    return [dict(row) for row in sorted(rows, key=repr)]


def naive_satisfies(query: Query, graph: DataGraph) -> bool:
    """True if at least one candidate binding satisfies the query."""
    for binding in _candidate_bindings(query, graph):
        if _binding_satisfies(query, graph, binding):
            return True
    return False


def _candidate_bindings(query: Query, graph: DataGraph) -> Iterator[Binding]:
    """Every total assignment of the query's variables to graph values."""
    node_vars = [var for var in query.node_vars() if var != query.root_var]
    label_vars = list(query.label_vars())
    value_vars = list(query.value_vars())
    oids = sorted(graph.nodes)
    labels = sorted(graph.labels())
    values = sorted(graph.atomic_values(), key=repr)
    root_node = graph.root_node
    if query.root_var.startswith("&") and not root_node.is_referenceable:
        return
    for node_combo in itertools.product(oids, repeat=len(node_vars)):
        if any(
            var.startswith("&") and not graph.node(oid).is_referenceable
            for var, oid in zip(node_vars, node_combo)
        ):
            continue
        base: Binding = {query.root_var: graph.root}
        base.update(zip(node_vars, node_combo))
        for label_combo in itertools.product(labels, repeat=len(label_vars)):
            for value_combo in itertools.product(values, repeat=len(value_vars)):
                binding = dict(base)
                binding.update(zip(label_vars, label_combo))
                binding.update(zip(value_vars, value_combo))
                yield binding


def _binding_satisfies(query: Query, graph: DataGraph, binding: Binding) -> bool:
    return all(
        _pattern_holds(graph, pattern, binding) for pattern in query.patterns
    )


def _pattern_holds(graph: DataGraph, pattern: PatternDef, binding: Binding) -> bool:
    node = graph.node(binding[pattern.var])
    if pattern.kind is PatternKind.VALUE:
        return node.is_atomic and node.value == pattern.value
    if pattern.kind is PatternKind.VALUE_VAR:
        return node.is_atomic and binding["$" + pattern.value_var] == node.value
    if pattern.is_ordered != node.is_ordered or node.is_atomic:
        return False
    first_edge_sets: List[FrozenSet[int]] = []
    for arm in pattern.arms:
        if arm.is_label_var:
            label = binding["$" + arm.path.name]
            allowed = frozenset(
                index
                for index, edge in enumerate(node.edges)
                if edge.label == label and edge.target == binding[arm.target]
            )
        else:
            allowed = _witness_first_edges(
                graph, node, arm.path, str(binding[arm.target])
            )
        if not allowed:
            return False
        first_edge_sets.append(allowed)
    if not pattern.is_ordered:
        return True
    order_pairs = pattern.order_pairs()
    for combo in itertools.product(*first_edge_sets):
        if all(combo[i] < combo[j] for i, j in order_pairs):
            return True
    return False


def _witness_first_edges(
    graph: DataGraph, node: Node, regex: Regex, target: str
) -> FrozenSet[int]:
    """First-edge positions of witness paths from ``node`` to ``target``.

    Position ``i`` qualifies iff some path starting with the node's i-th
    edge ends at ``target`` with its label word in ``lang(regex)``.
    Search runs over (oid, residual-derivative) pairs; canonicalized
    derivatives keep the state space finite on cyclic graphs.
    """
    witnesses: Set[int] = set()
    for index, edge in enumerate(node.edges):
        residual = derivative(regex, edge.label)
        if isinstance(residual, Empty):
            continue
        if _path_reaches(graph, edge.target, residual, target):
            witnesses.add(index)
    return frozenset(witnesses)


def _path_reaches(graph: DataGraph, oid: str, regex: Regex, target: str) -> bool:
    """True if a path from ``oid`` ends at ``target`` with word in ``lang(regex)``."""
    seen: Set[Tuple[str, Regex]] = set()
    stack: List[Tuple[str, Regex]] = [(oid, regex)]
    while stack:
        current, residual = stack.pop()
        if (current, residual) in seen:
            continue
        seen.add((current, residual))
        if current == target and residual.nullable():
            return True
        for edge in graph.node(current).edges:
            stepped = derivative(residual, edge.label)
            if not isinstance(stepped, Empty):
                stack.append((edge.target, stepped))
    return False
