"""Differential runners: production decision procedures vs the oracles.

Each section draws seeded random inputs from
:mod:`repro.workloads.generators`, runs a production procedure and its
brute-force counterpart, and records every disagreement as a
:class:`Discrepancy` — after greedily shrinking the offending input with
:mod:`repro.oracle.shrink` so the report is readable.

The functions under test are injectable keyword arguments (defaulting to
the production implementations).  That serves two purposes: the mutation
smoke tests in ``tests/property/`` inject deliberately broken
implementations to prove the harness *would* catch a regression, and a
bisecting developer can point a section at an older build of one
procedure without touching the rest.

Reproducibility: case ``i`` of a section under seed ``s`` uses
``random.Random(s * 1_000_003 + i * 7 + salt(section))`` — integers only,
so results are immune to ``PYTHONHASHSEED``.  ``repro fuzz --seed S``
therefore always re-draws the same inputs.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..automata.compiled import CompiledDFA, compile_nfa
from ..automata.dfa import DFA, determinize
from ..automata.nfa import NFA, thompson
from ..automata.ops import equivalent, intersect, is_subset, to_regex
from ..automata.syntax import Regex
from ..data.model import DataGraph
from ..engine import Engine, resolve_backend, set_default_engine
from ..query.eval import evaluate
from ..query.model import Query
from ..schema.conformance import conforms
from ..schema.model import Schema
from ..typing.satisfiability import is_satisfiable
from ..workloads.generators import (
    DEFAULT_ALPHABET,
    random_graph,
    random_query,
    random_regex,
    random_schema,
)
from ..workloads.instances import random_instance
from .conformance import exhaustive_conforms
from .eval import naive_evaluate
from .rex import all_words, bounded_subset, brz_accepts
from .shrink import (
    graph_candidates,
    greedy_shrink,
    query_candidates,
    regex_candidates,
    word_candidates,
)

#: Fixed per-section salts (NOT ``hash()``: that varies across runs).
_SALTS: Dict[str, int] = {
    "automata": 101,
    "containment": 211,
    "eval": 307,
    "conformance": 401,
    "compiled": 503,
    "backend": 601,
    "delta": 701,
}


def _case_rng(seed: int, section: str, case: int) -> random.Random:
    return random.Random(seed * 1_000_003 + case * 7 + _SALTS[section])


@dataclass
class Discrepancy:
    """One disagreement between production code and an oracle."""

    section: str
    case: int
    seed: int
    check: str  #: which cross-check failed (e.g. ``minimize``, ``is_subset``)
    detail: str  #: human-readable description of the disagreement
    inputs: Dict[str, str]  #: repr of the *shrunken* inputs

    def to_dict(self) -> Dict[str, object]:
        return {
            "section": self.section,
            "case": self.case,
            "seed": self.seed,
            "check": self.check,
            "detail": self.detail,
            "inputs": dict(self.inputs),
        }


@dataclass
class FuzzReport:
    """Aggregate result of a fuzzing run."""

    seed: int
    budget: int
    sections: Tuple[str, ...]
    backend: str = "compiled"
    cases: Dict[str, int] = field(default_factory=dict)
    skipped: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "backend": self.backend,
            "sections": list(self.sections),
            "cases": dict(self.cases),
            "skipped": dict(self.skipped),
            "ok": self.ok,
            "discrepancy_count": len(self.discrepancies),
            "discrepancies": [d.to_dict() for d in self.discrepancies],
        }


# ----------------------------------------------------------------------
# Section 1: the automata pipeline vs Brzozowski membership
# ----------------------------------------------------------------------


def run_automata_section(
    seed: int,
    cases: int,
    max_len: int = 4,
    *,
    thompson_fn: Callable[..., NFA] = thompson,
    determinize_fn: Callable[[NFA], DFA] = determinize,
    minimize_fn: Callable[[DFA], DFA] = DFA.minimize,
    complement_fn: Callable[[DFA], DFA] = DFA.complement,
    to_regex_fn: Callable[[NFA], Regex] = to_regex,
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check thompson/determinize/minimize/complement/to_regex.

    For every random regex, every word up to ``max_len`` is classified by
    iterated Brzozowski derivatives; each pipeline stage must agree
    (the complement must *disagree* everywhere).
    """
    alphabet = DEFAULT_ALPHABET
    found: List[Discrepancy] = []

    def stages(regex: Regex):
        nfa = thompson_fn(regex, alphabet)
        dfa = determinize_fn(nfa)
        mdfa = minimize_fn(dfa)
        comp = complement_fn(mdfa)
        round_trip = thompson_fn(to_regex_fn(nfa), alphabet)
        return [
            ("thompson", nfa.accepts, False),
            ("determinize", dfa.accepts, False),
            ("minimize", mdfa.accepts, False),
            ("complement", comp.accepts, True),
            ("to_regex", round_trip.accepts, False),
        ]

    def first_failure(regex: Regex):
        built = stages(regex)
        for word in all_words(alphabet, max_len):
            expected = brz_accepts(regex, word)
            for name, accepts, negated in built:
                if bool(accepts(word)) != (expected ^ negated):
                    return name, word, expected
        return None

    for case in range(cases):
        rng = _case_rng(seed, "automata", case)
        regex = random_regex(rng, alphabet, max_depth=3, allow_wildcard=True)
        failure = first_failure(regex)
        if failure is None:
            continue
        check, word, _expected = failure

        def word_fails(candidate, _regex=regex, _check=check):
            built = dict((n, (a, g)) for n, a, g in stages(_regex))
            accepts, negated = built[_check]
            expected = brz_accepts(_regex, candidate)
            return bool(accepts(candidate)) != (expected ^ negated)

        def regex_fails(candidate, _check=check):
            failure = first_failure(candidate)
            return failure is not None and failure[0] == _check

        small_regex = greedy_shrink(regex, regex_candidates, regex_fails)
        refailure = first_failure(small_regex)
        if refailure is not None:
            check, word, _expected = refailure
        small_word = greedy_shrink(
            tuple(word),
            word_candidates,
            lambda w: word_fails(w, _regex=small_regex, _check=check),
        )
        expected = brz_accepts(small_regex, small_word)
        found.append(
            Discrepancy(
                section="automata",
                case=case,
                seed=seed,
                check=check,
                detail=(
                    f"{check} disagrees with Brzozowski membership on "
                    f"{small_word!r}: oracle says "
                    f"{'accept' if expected else 'reject'}"
                ),
                inputs={"regex": repr(small_regex), "word": repr(small_word)},
            )
        )
    return found, cases, 0


# ----------------------------------------------------------------------
# Section 2: containment/equivalence vs bounded enumeration
# ----------------------------------------------------------------------


def run_containment_section(
    seed: int,
    cases: int,
    max_len: int = 5,
    *,
    subset_fn: Callable[[NFA, NFA], bool] = is_subset,
    equivalent_fn: Callable[[NFA, NFA], bool] = equivalent,
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check ``is_subset``/``equivalent`` against word enumeration.

    A positive production answer is refuted by any enumerated word of
    ``L(left) \\ L(right)`` up to the bound.  A negative answer must be
    backed by a concrete witness extracted from the product automaton and
    confirmed by derivative membership — so both directions are checked,
    not just the bounded one.
    """
    alphabet = DEFAULT_ALPHABET
    found: List[Discrepancy] = []

    def check_pair(left: Regex, right: Regex) -> Optional[Tuple[str, str, Dict[str, str]]]:
        left_nfa = thompson(left, alphabet)
        right_nfa = thompson(right, alphabet)
        claimed = subset_fn(left_nfa, right_nfa)
        escape = bounded_subset(left, right, alphabet, max_len)
        if claimed and escape is not None:
            return (
                "is_subset",
                f"claimed L(left) ⊆ L(right), but {escape!r} is in "
                "L(left) \\ L(right)",
                {"word": repr(escape)},
            )
        if not claimed:
            widened = NFA(
                right_nfa.n_states,
                alphabet,
                right_nfa.start,
                right_nfa.accepting,
                right_nfa.transitions,
            )
            complement_nfa = determinize(widened).complement().to_nfa()
            witness = intersect(left_nfa, complement_nfa).shortest_word()
            if witness is None:
                return (
                    "is_subset",
                    "claimed L(left) ⊄ L(right), but the witness product "
                    "automaton is empty",
                    {},
                )
            if not brz_accepts(left, witness) or brz_accepts(right, witness):
                return (
                    "is_subset",
                    f"non-containment witness {tuple(witness)!r} is bogus "
                    "per derivative membership",
                    {"word": repr(tuple(witness))},
                )
        claimed_eq = equivalent_fn(left_nfa, right_nfa)
        escape_eq = bounded_subset(left, right, alphabet, max_len)
        escape_eq_rev = bounded_subset(right, left, alphabet, max_len)
        if claimed_eq and (escape_eq is not None or escape_eq_rev is not None):
            word = escape_eq if escape_eq is not None else escape_eq_rev
            return (
                "equivalent",
                f"claimed equivalence, but {word!r} separates the languages",
                {"word": repr(word)},
            )
        return None

    for case in range(cases):
        rng = _case_rng(seed, "containment", case)
        left = random_regex(rng, alphabet, max_depth=3, allow_wildcard=True)
        right = random_regex(rng, alphabet, max_depth=3, allow_wildcard=True)
        result = check_pair(left, right)
        if result is None:
            continue
        check, _detail, _extra = result

        def left_fails(candidate, _right=right, _check=check):
            r = check_pair(candidate, _right)
            return r is not None and r[0] == _check

        small_left = greedy_shrink(left, regex_candidates, left_fails)

        def right_fails(candidate, _left=small_left, _check=check):
            r = check_pair(_left, candidate)
            return r is not None and r[0] == _check

        small_right = greedy_shrink(right, regex_candidates, right_fails)
        final = check_pair(small_left, small_right)
        check, detail, extra = final if final is not None else result
        inputs = {"left": repr(small_left), "right": repr(small_right)}
        inputs.update(extra)
        found.append(
            Discrepancy(
                section="containment",
                case=case,
                seed=seed,
                check=check,
                detail=detail,
                inputs=inputs,
            )
        )
    return found, cases, 0


# ----------------------------------------------------------------------
# Section 3: query evaluation vs the naive evaluator
# ----------------------------------------------------------------------


def _rows(bindings: Sequence[Dict[str, object]]) -> frozenset:
    return frozenset(tuple(sorted(row.items(), key=repr)) for row in bindings)


def run_eval_section(
    seed: int,
    cases: int,
    *,
    evaluate_fn: Callable[..., List[Dict[str, object]]] = evaluate,
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check ``query.eval.evaluate`` against candidate enumeration."""
    found: List[Discrepancy] = []

    def mismatch(query: Query, graph: DataGraph) -> Optional[str]:
        production = _rows(evaluate_fn(query, graph))
        oracle = _rows(naive_evaluate(query, graph))
        if production == oracle:
            return None
        extra = sorted(production - oracle, key=repr)[:3]
        missing = sorted(oracle - production, key=repr)[:3]
        return (
            f"evaluate returned {len(production)} rows, oracle "
            f"{len(oracle)}; spurious={extra!r} missing={missing!r}"
        )

    for case in range(cases):
        rng = _case_rng(seed, "eval", case)
        graph = random_graph(rng, max_nodes=5)
        query = random_query(rng, max_node_vars=3)
        detail = mismatch(query, graph)
        if detail is None:
            continue

        small_graph = greedy_shrink(
            graph, graph_candidates, lambda g: mismatch(query, g) is not None
        )
        small_query = greedy_shrink(
            query, query_candidates, lambda q: mismatch(q, small_graph) is not None
        )
        final_detail = mismatch(small_query, small_graph) or detail
        found.append(
            Discrepancy(
                section="eval",
                case=case,
                seed=seed,
                check="evaluate",
                detail=final_detail,
                inputs={
                    "query": _query_repr(small_query),
                    "graph": _graph_repr(small_graph),
                },
            )
        )
    return found, cases, 0


def _query_repr(query: Query) -> str:
    parts = ", ".join(
        f"{p.var}={p.kind.value}"
        + (f"({len(p.arms)} arms)" if p.is_collection else "")
        for p in query.patterns
    )
    return f"SELECT {list(query.select)} WHERE {parts}"


def _graph_repr(graph: DataGraph) -> str:
    return "; ".join(repr(graph.node(oid)) for oid in sorted(graph.nodes))


# ----------------------------------------------------------------------
# Section 4: conformance vs exhaustive assignment search
# ----------------------------------------------------------------------


def run_conformance_section(
    seed: int,
    cases: int,
    *,
    conforms_fn: Callable[..., bool] = conforms,
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check ``schema.conformance.conforms`` against exhaustive search.

    Half the cases sample a conforming instance from the schema itself
    (both sides must say yes); the other half pair the schema with an
    unrelated random graph, where yes/no is genuinely undetermined and
    the two implementations must simply agree.  Cases whose assignment
    space exceeds the oracle's cap are counted as skipped.
    """
    found: List[Discrepancy] = []
    skipped = 0

    def mismatch(graph: DataGraph, schema: Schema) -> Optional[str]:
        production = bool(conforms_fn(graph, schema))
        oracle = exhaustive_conforms(graph, schema)
        if production == oracle:
            return None
        return (
            f"conforms says {production}, exhaustive assignment search "
            f"says {oracle}"
        )

    for case in range(cases):
        rng = _case_rng(seed, "conformance", case)
        schema = random_schema(rng, n_types=rng.randint(2, 4))
        from_instance = rng.random() < 0.5
        if from_instance:
            graph = random_instance(schema, rng, max_depth=6, max_repeat=2)
        else:
            graph = random_graph(rng, max_nodes=4)
        if len(graph.nodes) > 7:
            skipped += 1
            continue
        try:
            detail = mismatch(graph, schema)
        except ValueError:
            skipped += 1
            continue
        if detail is None:
            continue

        def graph_fails(candidate, _schema=schema):
            return mismatch(candidate, _schema) is not None

        small_graph = greedy_shrink(graph, graph_candidates, graph_fails)
        final_detail = mismatch(small_graph, schema) or detail
        if from_instance:
            final_detail += " (the instance was sampled from the schema)"
        found.append(
            Discrepancy(
                section="conformance",
                case=case,
                seed=seed,
                check="conforms",
                detail=final_detail,
                inputs={
                    "schema": "; ".join(
                        repr(schema.type(t)) for t in schema.tids()
                    ),
                    "graph": _graph_repr(small_graph),
                },
            )
        )
    return found, cases, skipped


# ----------------------------------------------------------------------
# Section 5: the compile pipeline vs Brzozowski and the NFA decision ops
# ----------------------------------------------------------------------


def run_compiled_section(
    seed: int,
    cases: int,
    max_len: int = 4,
    *,
    compile_fn: Callable[[NFA], CompiledDFA] = compile_nfa,
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check the table pipeline (subset → Hopcroft → tables).

    Per case two random regexes are lowered to compiled tables and
    checked against the oracles: ``member`` (including after a pickle
    round-trip) against Brzozowski derivatives for every word up to
    ``max_len``; ``is_subset`` and ``product_empty`` against the
    product-construction answers of :mod:`repro.automata.ops`.
    """
    alphabet = DEFAULT_ALPHABET
    found: List[Discrepancy] = []

    def check_pair(left: Regex, right: Regex) -> Optional[Tuple[str, str, Dict[str, str]]]:
        left_nfa = thompson(left, alphabet)
        right_nfa = thompson(right, alphabet)
        left_dfa = compile_fn(left_nfa)
        right_dfa = compile_fn(right_nfa)
        thawed: CompiledDFA = pickle.loads(pickle.dumps(left_dfa))
        for word in all_words(alphabet, max_len):
            expected = brz_accepts(left, word)
            if bool(left_dfa.member(word)) != expected:
                return (
                    "member",
                    f"compiled member disagrees with Brzozowski on {word!r}: "
                    f"oracle says {'accept' if expected else 'reject'}",
                    {"word": repr(word)},
                )
            if bool(thawed.member(word)) != expected:
                return (
                    "pickle-member",
                    f"pickle round-trip changed membership of {word!r}",
                    {"word": repr(word)},
                )
        if bool(left_dfa.is_subset(right_dfa)) != bool(is_subset(left_nfa, right_nfa)):
            return (
                "is_subset",
                "compiled is_subset disagrees with the NFA product check",
                {},
            )
        compiled_empty = bool(left_dfa.product_empty(right_dfa))
        nfa_empty = intersect(left_nfa, right_nfa).is_empty()
        if compiled_empty != nfa_empty:
            return (
                "product_empty",
                f"compiled product_empty says {compiled_empty}, NFA "
                f"intersection emptiness says {nfa_empty}",
                {},
            )
        return None

    for case in range(cases):
        rng = _case_rng(seed, "compiled", case)
        left = random_regex(rng, alphabet, max_depth=3, allow_wildcard=True)
        right = random_regex(rng, alphabet, max_depth=3, allow_wildcard=True)
        result = check_pair(left, right)
        if result is None:
            continue
        check, _detail, _extra = result

        def left_fails(candidate, _right=right, _check=check):
            r = check_pair(candidate, _right)
            return r is not None and r[0] == _check

        small_left = greedy_shrink(left, regex_candidates, left_fails)

        def right_fails(candidate, _left=small_left, _check=check):
            r = check_pair(_left, candidate)
            return r is not None and r[0] == _check

        small_right = greedy_shrink(right, regex_candidates, right_fails)
        final = check_pair(small_left, small_right)
        check, detail, extra = final if final is not None else result
        inputs = {"left": repr(small_left), "right": repr(small_right)}
        inputs.update(extra)
        found.append(
            Discrepancy(
                section="compiled",
                case=case,
                seed=seed,
                check=check,
                detail=detail,
                inputs=inputs,
            )
        )
    return found, cases, 0


# ----------------------------------------------------------------------
# Section 6: backend agreement on whole decision procedures
# ----------------------------------------------------------------------


def run_backend_section(
    seed: int,
    cases: int,
    *,
    satisfiable_fn: Callable[..., bool] = is_satisfiable,
    conforms_fn: Callable[..., bool] = conforms,
) -> Tuple[List[Discrepancy], int, int]:
    """The legacy-NFA and compiled engines must decide identically.

    Each case draws a random schema plus a random query (satisfiability)
    and a data graph (conformance; half sampled from the schema itself)
    and runs both procedures once per backend on fresh engines.  Any
    split verdict is a bug in the compile pipeline or in the legacy walk
    — by construction there is no third oracle here, only agreement.
    """
    found: List[Discrepancy] = []
    skipped = 0

    def split_verdict(schema: Schema, query: Query) -> Optional[str]:
        on_nfa = bool(satisfiable_fn(query, schema, None, Engine(backend="nfa")))
        on_compiled = bool(
            satisfiable_fn(query, schema, None, Engine(backend="compiled"))
        )
        if on_nfa == on_compiled:
            return None
        return (
            f"is_satisfiable: nfa backend says {on_nfa}, compiled backend "
            f"says {on_compiled}"
        )

    for case in range(cases):
        rng = _case_rng(seed, "backend", case)
        schema = random_schema(rng, n_types=rng.randint(2, 4))
        query = random_query(rng, max_node_vars=3)
        try:
            detail = split_verdict(schema, query)
        except ValueError:
            skipped += 1
            detail = None
        if detail is not None:
            small_query = greedy_shrink(
                query,
                query_candidates,
                lambda q: _safe_split(split_verdict, schema, q),
            )
            final_detail = None
            try:
                final_detail = split_verdict(schema, small_query)
            except ValueError:
                pass
            found.append(
                Discrepancy(
                    section="backend",
                    case=case,
                    seed=seed,
                    check="is_satisfiable",
                    detail=final_detail or detail,
                    inputs={
                        "schema": "; ".join(
                            repr(schema.type(t)) for t in schema.tids()
                        ),
                        "query": _query_repr(small_query),
                    },
                )
            )

        if rng.random() < 0.5:
            graph = random_instance(schema, rng, max_depth=6, max_repeat=2)
        else:
            graph = random_graph(rng, max_nodes=4)
        on_nfa = bool(conforms_fn(graph, schema, Engine(backend="nfa")))
        on_compiled = bool(conforms_fn(graph, schema, Engine(backend="compiled")))
        if on_nfa != on_compiled:
            found.append(
                Discrepancy(
                    section="backend",
                    case=case,
                    seed=seed,
                    check="conforms",
                    detail=(
                        f"conforms: nfa backend says {on_nfa}, compiled "
                        f"backend says {on_compiled}"
                    ),
                    inputs={
                        "schema": "; ".join(
                            repr(schema.type(t)) for t in schema.tids()
                        ),
                        "graph": _graph_repr(graph),
                    },
                )
            )
    return found, cases, skipped


def _safe_split(split_verdict, schema: Schema, query: Query) -> bool:
    try:
        return split_verdict(schema, query) is not None
    except ValueError:
        return False


# ----------------------------------------------------------------------
# Section 7: the evolution classifier vs bounded instance enumeration
# ----------------------------------------------------------------------


def run_delta_section(
    seed: int,
    cases: int,
    *,
    diff_fn: Callable[..., object] = None,  # type: ignore[assignment]
) -> Tuple[List[Discrepancy], int, int]:
    """Cross-check :func:`repro.schema.delta.diff_schemas` verdicts.

    Each case mutates a random schema (``workloads.mutate_schema``) and
    classifies the pair.  Two oracles apply:

    * **soundness of the compatibility claim** — simulation is sound, so
      a claimed ``widening`` means every old instance stays valid (and
      symmetrically for ``narrowing``, both ways for ``equivalent``).
      Bounded enumeration of conforming instances must agree;
      ``incomparable`` makes no inclusion claim, so nothing to refute.
    * **counterexample words** — every separating word attached to a
      content-model change must actually separate the two languages per
      Brzozowski-derivative membership.
    """
    from ..schema.delta import (
        EQUIVALENT,
        NARROWING,
        WIDENING,
        diff_schemas,
    )
    from ..workloads.instances import enumerate_instances
    from ..workloads.mutations import mutate_schema

    if diff_fn is None:
        diff_fn = diff_schemas
    found: List[Discrepancy] = []
    skipped = 0

    def schema_repr(schema: Schema) -> str:
        return "; ".join(repr(schema.type(t)) for t in schema.tids())

    def instance_escape(source: Schema, target: Schema) -> Optional[DataGraph]:
        """A bounded instance of ``source`` that does not conform to ``target``."""
        count = 0
        for graph in enumerate_instances(source, max_nodes=6, max_word=3):
            if not exhaustive_conforms(graph, target):
                return graph
            count += 1
            if count >= 12:
                break
        return None

    for case in range(cases):
        rng = _case_rng(seed, "delta", case)
        old = random_schema(rng, n_types=rng.randint(2, 4))
        try:
            new, kind = mutate_schema(old, rng)
        except ValueError:
            skipped += 1
            continue
        delta = diff_fn(old, new)
        if not delta.changes:
            found.append(
                Discrepancy(
                    section="delta",
                    case=case,
                    seed=seed,
                    check="changes",
                    detail=(
                        f"mutation {kind!r} changed the fingerprint but the "
                        "diff reports no changes"
                    ),
                    inputs={"old": schema_repr(old), "new": schema_repr(new)},
                )
            )
            continue

        checks = []  # (direction label, source, target)
        if delta.compatibility in (EQUIVALENT, WIDENING):
            checks.append(("old ⊑ new", old, new))
        if delta.compatibility in (EQUIVALENT, NARROWING):
            checks.append(("new ⊑ old", new, old))
        escaped = False
        for direction, source, target in checks:
            try:
                escape = instance_escape(source, target)
            except ValueError:
                skipped += 1
                escaped = True
                break
            if escape is not None:
                found.append(
                    Discrepancy(
                        section="delta",
                        case=case,
                        seed=seed,
                        check="compatibility",
                        detail=(
                            f"claimed {delta.compatibility} (so {direction}) "
                            f"after mutation {kind!r}, but an instance of the "
                            "smaller schema does not conform to the larger"
                        ),
                        inputs={
                            "old": schema_repr(old),
                            "new": schema_repr(new),
                            "instance": _graph_repr(escape),
                        },
                    )
                )
                escaped = True
                break
        if escaped:
            continue

        for change in delta.changes:
            word = getattr(change, "counterexample", None)
            if word is None:
                continue
            old_regex = change.old_regex
            new_regex = change.new_regex
            if change.verdict == WIDENING:
                # Widening counterexamples witness the growth: new \ old.
                old_regex, new_regex = new_regex, old_regex
            if not brz_accepts(old_regex, word) or brz_accepts(new_regex, word):
                found.append(
                    Discrepancy(
                        section="delta",
                        case=case,
                        seed=seed,
                        check="counterexample",
                        detail=(
                            f"{change.kind} ({change.verdict}) carries "
                            f"counterexample {word!r} that does not separate "
                            "the content-model languages"
                        ),
                        inputs={
                            "old_regex": repr(change.old_regex),
                            "new_regex": repr(change.new_regex),
                            "word": repr(word),
                        },
                    )
                )
                break
    return found, cases, skipped


# ----------------------------------------------------------------------
# The fuzzing entry point
# ----------------------------------------------------------------------

#: Section name -> runner(seed, cases) in reporting order.
SECTIONS: Dict[str, Callable[[int, int], Tuple[List[Discrepancy], int, int]]] = {
    "automata": run_automata_section,
    "containment": run_containment_section,
    "eval": run_eval_section,
    "conformance": run_conformance_section,
    "compiled": run_compiled_section,
    "backend": run_backend_section,
    "delta": run_delta_section,
}

#: Sections whose word-enumeration bound ``--max-len`` overrides.
_BOUNDED_SECTIONS = ("automata", "containment", "compiled")


def run_fuzz(
    seed: int = 0,
    budget: int = 200,
    sections: Optional[Sequence[str]] = None,
    max_len: Optional[int] = None,
    backend: Optional[str] = None,
) -> FuzzReport:
    """Run the differential sections; return an aggregated report.

    Args:
        seed: base seed; every case derives its own rng from it.
        budget: total number of cases, split evenly across sections.
        sections: subset of :data:`SECTIONS` keys (default: all).
        max_len: override the word-length bound of the bounded-oracle
            sections (their defaults otherwise).
        backend: automata backend the *production* procedures run on for
            this call (``"nfa"`` or ``"compiled"``; None = env/default).
            Implemented by swapping the process default engine for the
            duration of the run, so every default-engine call site is
            covered.  The ``backend`` section always compares both
            backends regardless of this setting.
    """
    chosen = tuple(sections) if sections is not None else tuple(SECTIONS)
    unknown = [name for name in chosen if name not in SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown fuzz sections {unknown}; expected a subset of "
            f"{sorted(SECTIONS)}"
        )
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget}")
    backend = resolve_backend(backend)
    report = FuzzReport(seed=seed, budget=budget, sections=chosen, backend=backend)
    per_section = max(1, budget // len(chosen))
    previous = set_default_engine(Engine(backend=backend))
    try:
        for name in chosen:
            runner = SECTIONS[name]
            if max_len is not None and name in _BOUNDED_SECTIONS:
                result = runner(seed, per_section, max_len)  # type: ignore[call-arg]
            else:
                result = runner(seed, per_section)
            discrepancies, cases, skipped = result
            report.discrepancies.extend(discrepancies)
            report.cases[name] = cases
            report.skipped[name] = skipped
    finally:
        set_default_engine(previous)
    return report
