"""The Section-4 applications of type inference.

* :func:`feedback_query` — query-formulation feedback (Section 4.1);
* :class:`NaiveEvaluator` / :class:`AdaptiveEvaluator` — the edge-traversal
  evaluation model and the adaptive optimal algorithm A_O (Section 4.2);
* :class:`TransformQuery` and friends — Skolem-function transformations
  with output-schema inference and type checking (Section 4.3).
"""

from .feedback import UnsatisfiableQueryError, feedback_query
from .optimize import (
    AdaptiveEvaluator,
    EdgeHandle,
    EvalResult,
    FlatPattern,
    Match,
    NaiveEvaluator,
    TraversalGraph,
)
from .transform import (
    ConstructRule,
    SkolemTerm,
    TransformQuery,
    ValueOf,
    check_transformation,
    infer_output_schema,
    parse_transform,
    transform_to_string,
)

__all__ = [
    "AdaptiveEvaluator",
    "ConstructRule",
    "EdgeHandle",
    "EvalResult",
    "FlatPattern",
    "Match",
    "NaiveEvaluator",
    "SkolemTerm",
    "TransformQuery",
    "TraversalGraph",
    "UnsatisfiableQueryError",
    "ValueOf",
    "check_transformation",
    "feedback_query",
    "infer_output_schema",
    "parse_transform",
    "transform_to_string",
]
