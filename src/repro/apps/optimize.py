"""Adaptive optimal query evaluation (Section 4.2, Theorem 4.2).

The computation model views the data graph as an ADT with two operations —
``firstEdge(v)`` and ``nextEdge(e)`` — and charges one unit per edge
explored.  Evaluation proceeds depth-first, never returning to a node once
backtracked from.  The *naive* strategy explores every edge.  The paper's
algorithm :math:`A_O` uses the schema, the query, and the data seen so far
to prune, and is optimal: by the *extension property*, it explores an edge
``u -> v`` if and only if some conforming extension of the seen subgraph
has an answer node at ``v``, one of its right brothers, or one of their
descendants — so no correct deterministic algorithm of the class can skip
anything :math:`A_O` reads (Theorem 4.2).

Scope (as in the paper's presentation): flat ordered join-free patterns
``SELECT X1..Xk WHERE Root = [R1 -> X1, ..., Rk -> Xk]`` over ordered tree
data conforming to an ordered tree schema (the DTD⁻ setting and its
untagged ordered relatives).  The extension-property oracle is exact in
this setting, computed with the schema-product reachability machinery:

* a node's *candidate types* are tracked from the parent's content
  automaton and narrowed as its subtree is revealed (this realizes the
  paper's "sidewards pruning": what we learn under one child reshapes what
  can still appear under later ones);
* an arm can still match strictly below / to the right iff the
  corresponding product automaton reaches acceptance;
* a full answer needs all ``k`` arms on strictly increasing root children,
  decided by a small product over the root's residual content language.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..automata.nfa import EPS, NFA
from ..automata.syntax import Regex
from ..data.model import DataGraph, Node
from ..engine import Engine, get_default_engine
from ..query.model import PatternKind, Query
from ..schema.model import Schema
from ..typing.reach import SchemaReach


class EdgeHandle(NamedTuple):
    """An opaque edge handle of the traversal ADT."""

    oid: str
    index: int


class TraversalGraph:
    """The edge-traversal ADT of Section 4.2, with cost accounting.

    ``cost`` counts edges explored (successful ``firstEdge``/``nextEdge``
    returns); ``calls`` counts every invocation including null returns.
    """

    def __init__(self, graph: DataGraph):
        if not graph.is_tree():
            raise ValueError("the Section 4.2 model assumes tree data")
        for node in graph:
            if node.is_unordered:
                raise ValueError("the Section 4.2 model assumes ordered data")
        self.graph = graph
        self.cost = 0
        self.calls = 0

    def first_edge(self, oid: str) -> Optional[EdgeHandle]:
        """The first (left-most) edge of node ``oid``, or None."""
        self.calls += 1
        node = self.graph.node(oid)
        if not node.edges:
            return None
        self.cost += 1
        return EdgeHandle(oid, 0)

    def next_edge(self, edge: EdgeHandle) -> Optional[EdgeHandle]:
        """The right brother of ``edge``, or None when it is last."""
        self.calls += 1
        node = self.graph.node(edge.oid)
        if edge.index + 1 >= len(node.edges):
            return None
        self.cost += 1
        return EdgeHandle(edge.oid, edge.index + 1)

    def label(self, edge: EdgeHandle) -> str:
        return self.graph.node(edge.oid).edges[edge.index].label

    def target(self, edge: EdgeHandle) -> str:
        return self.graph.node(edge.oid).edges[edge.index].target


class FlatPattern:
    """A flat ordered pattern ``Root = [R1 -> X1, ..., Rk -> Xk]``."""

    def __init__(self, arms: Sequence[Regex], targets: Optional[Sequence[str]] = None):
        if not arms:
            raise ValueError("a flat pattern needs at least one arm")
        self.arms = tuple(arms)
        self.targets = tuple(targets or [f"X{i+1}" for i in range(len(arms))])

    @classmethod
    def from_query(cls, query: Query) -> "FlatPattern":
        """Extract a flat pattern from a query of the Section 4.2 form.

        Raises:
            ValueError: if the query is not a single flat ordered pattern
                with regex arms and undefined targets.
        """
        if len(query.patterns) != 1:
            raise ValueError("Section 4.2 evaluation takes a single pattern definition")
        pattern = query.patterns[0]
        if pattern.kind is not PatternKind.ORDERED:
            raise ValueError("Section 4.2 evaluation takes an ordered pattern")
        if any(arm.is_label_var for arm in pattern.arms):
            raise ValueError("label variables are outside the Section 4.2 form")
        if pattern.partial_order is not None:
            raise ValueError("partial orders are outside the Section 4.2 form")
        return cls(
            [arm.path for arm in pattern.arms],
            [arm.target for arm in pattern.arms],
        )

    def __len__(self) -> int:
        return len(self.arms)


class Match(NamedTuple):
    """One arm match: the arm, its root-child index, and the matched node."""

    arm: int
    root_index: int
    oid: str


@dataclass
class EvalResult:
    """Outcome of an evaluation: matches, answers, and traversal cost."""

    matches: List[Match]
    cost: int
    calls: int
    arm_count: int

    def answers(self) -> List[Tuple[str, ...]]:
        """All answer tuples: one node per arm, root indexes increasing."""
        per_arm: List[List[Match]] = [[] for _ in range(self.arm_count)]
        for match in self.matches:
            per_arm[match.arm].append(match)
        results: Set[Tuple[str, ...]] = set()

        def build(arm: int, last_index: int, chosen: Tuple[str, ...]) -> None:
            if arm == len(per_arm):
                results.add(chosen)
                return
            for match in per_arm[arm]:
                if match.root_index > last_index:
                    build(arm + 1, match.root_index, chosen + (match.oid,))

        build(0, -1, ())
        return sorted(results)


class NaiveEvaluator:
    """The baseline: depth-first exploration of every edge."""

    def __init__(
        self,
        pattern: FlatPattern,
        graph: DataGraph,
        reach_alphabet=None,
        engine: Optional[Engine] = None,
    ):
        self.pattern = pattern
        self.adt = TraversalGraph(graph)
        if engine is None:
            engine = get_default_engine()
        alphabet = frozenset(graph.labels())
        self.nfas = [
            engine.thompson(arm, alphabet | frozenset(arm.symbols()))
            for arm in pattern.arms
        ]

    def run(self) -> EvalResult:
        matches: List[Match] = []
        root = self.adt.graph.root
        initial = tuple(nfa.initial_states() for nfa in self.nfas)

        def visit(oid: str, states: Tuple[FrozenSet[int], ...], root_index: int) -> None:
            edge = self.adt.first_edge(oid)
            index = 0
            while edge is not None:
                label = self.adt.label(edge)
                child = self.adt.target(edge)
                child_root_index = index if root_index < 0 else root_index
                stepped = tuple(
                    nfa.step(s, label) for nfa, s in zip(self.nfas, states)
                )
                for arm, (nfa, s) in enumerate(zip(self.nfas, stepped)):
                    if s & nfa.accepting:
                        matches.append(Match(arm, child_root_index, child))
                visit(child, stepped, child_root_index)
                edge = self.adt.next_edge(edge)
                index += 1

        visit(root, initial, -1)
        return EvalResult(matches, self.adt.cost, self.adt.calls, len(self.pattern))


@dataclass
class _Frame:
    """Per-node state of the adaptive DFS."""

    oid: str
    # Candidate typing: type id -> content-NFA state set after the
    # consumed children prefix (only completable candidates are kept).
    content: Dict[str, FrozenSet[int]]
    # Per-arm path-automaton states for the path from the root to this
    # node (backend-dependent; None marks a dead arm walk).
    arm_states: Tuple[Optional[object], ...]
    root_index: int  # root-child index of the current path (-1 at the root)


class AdaptiveEvaluator:
    """The paper's algorithm :math:`A_O` (Section 4.2).

    Produces the same answers as :class:`NaiveEvaluator` while exploring
    only edges justified by the extension property.
    """

    def __init__(
        self,
        pattern: FlatPattern,
        graph: DataGraph,
        schema: Schema,
        engine: Optional[Engine] = None,
    ):
        self.pattern = pattern
        self.adt = TraversalGraph(graph)
        self.schema = schema
        self.engine = engine if engine is not None else get_default_engine()
        self.reach = self.engine.reach(schema)
        # Arm path automata on the engine's backend (walk contract:
        # step() returns None when the walk dies).
        self.arm_runners = [self.reach.path(arm) for arm in pattern.arms]
        self.matches: List[Match] = []
        # Seen matches per arm: set of root-child indexes.
        self._seen: List[Set[int]] = [set() for _ in pattern.arms]
        self.decisions = 0  # oracle invocations, for instrumentation

    # -- content automata ------------------------------------------------

    def _content_nfa(self, tid: str) -> NFA:
        return self.engine.restricted_content_nfa(self.schema, tid)

    def _completable(self, tid: str, states: FrozenSet[int]) -> bool:
        nfa = self._content_nfa(tid)
        return bool(states & nfa.coreachable_states())

    # -- main loop --------------------------------------------------------

    def run(self) -> EvalResult:
        if self.schema.root not in self.schema.types:
            raise ValueError("schema has no root type")
        root_def = self.schema.type(self.schema.root)
        if root_def.is_atomic:
            return EvalResult([], self.adt.cost, self.adt.calls, len(self.pattern))
        root_frame = _Frame(
            oid=self.adt.graph.root,
            content={self.schema.root: self._content_nfa(self.schema.root).initial_states()},
            arm_states=tuple(runner.initial() for runner in self.arm_runners),
            root_index=-1,
        )
        self._stack: List[_Frame] = []
        self._visit(root_frame)
        return EvalResult(self.matches, self.adt.cost, self.adt.calls, len(self.pattern))

    def _visit(self, frame: _Frame) -> bool:
        """Process a node; return True if all its children were consumed."""
        self._stack.append(frame)
        fully = False
        if self._should_enter(frame):
            edge = self.adt.first_edge(frame.oid)
            if edge is None:
                fully = True
            index = 0
            while edge is not None:
                self._process_edge(frame, edge, index)
                if not self._should_continue(frame):
                    break
                following = self.adt.next_edge(edge)
                if following is None:
                    fully = True
                edge = following
                index += 1
        self._stack.pop()
        return fully

    def _process_edge(self, frame: _Frame, edge: EdgeHandle, index: int) -> None:
        label = self.adt.label(edge)
        child_oid = self.adt.target(edge)
        child_root_index = index if frame.root_index < 0 else frame.root_index
        stepped = tuple(
            runner.step(s, label) if s is not None else None
            for runner, s in zip(self.arm_runners, frame.arm_states)
        )
        for arm, (runner, s) in enumerate(zip(self.arm_runners, stepped)):
            if s is not None and runner.is_accepting(s):
                self.matches.append(Match(arm, child_root_index, child_oid))
                self._seen[arm].add(child_root_index)
        # Candidate types of the child per the parent's content automata.
        child_candidates = self._child_candidates(frame, label)
        child_frame = _Frame(
            oid=child_oid,
            content={
                tid: self._content_nfa(tid).initial_states()
                for tid in child_candidates
            },
            arm_states=stepped,
            root_index=child_root_index,
        )
        child_node = self.adt.graph.node(child_oid)
        fully_explored = False
        if not child_node.is_atomic and self._should_descend(child_frame):
            fully_explored = self._visit(child_frame)
        # Determine the child's possible types given what was (not) seen.
        # (A node's kind and atomic value are visible once reached; only
        # edge traversals are charged.)  If the child's children were only
        # partially consumed, its residual must merely be completable —
        # the data conforms, so the unseen suffix completes some word.
        if child_node.is_atomic:
            possible = self._atomic_candidates(frame, label, child_oid)
        elif fully_explored:
            possible = {
                tid
                for tid, states in child_frame.content.items()
                if states & self._content_nfa(tid).accepting
            }
        else:
            possible = {
                tid
                for tid, states in child_frame.content.items()
                if self._completable(tid, states)
            }
        # Advance the parent's candidate content states.
        new_content: Dict[str, FrozenSet[int]] = {}
        for tid, states in frame.content.items():
            nfa = self._content_nfa(tid)
            moved: Set[int] = set()
            for child_tid in possible:
                moved |= nfa.step(states, (label, child_tid))
            moved_frozen = frozenset(moved)
            if moved_frozen and self._completable(tid, moved_frozen):
                new_content[tid] = moved_frozen
        frame.content = new_content

    def _child_candidates(self, frame: _Frame, label: str) -> Set[str]:
        """Collection types the child may have, per the parent's content."""
        candidates: Set[str] = set()
        for tid, states in frame.content.items():
            nfa = self._content_nfa(tid)
            for q in states:
                closure = nfa.eps_closure([q])
                for state in closure:
                    for symbol, dst in nfa.arcs_from(state):
                        if symbol is EPS or symbol[0] != label:
                            continue
                        target = symbol[1]
                        if not self.schema.type(target).is_atomic:
                            candidates.add(target)
        return candidates

    def _atomic_candidates(self, frame: _Frame, label: str, child_oid: str) -> Set[str]:
        """Atomic types the child may have (its value is visible for free)."""
        child = self.adt.graph.node(child_oid)
        if not child.is_atomic:
            return set()
        from ..schema.model import atomic_matches

        result: Set[str] = set()
        for tid, states in frame.content.items():
            nfa = self._content_nfa(tid)
            for q in states:
                for state in nfa.eps_closure([q]):
                    for symbol, _dst in nfa.arcs_from(state):
                        if symbol is EPS or symbol[0] != label:
                            continue
                        target_def = self.schema.type(symbol[1])
                        if target_def.is_atomic and atomic_matches(
                            target_def.atomic, child.value
                        ):
                            result.add(symbol[1])
        return result

    # -- the extension-property oracle ------------------------------------

    def _should_enter(self, frame: _Frame) -> bool:
        """Decide ``firstEdge(frame.oid)``.

        For the root this asks whether any answer can exist at all; for
        deeper nodes the preceding descend decision already justified
        reading their children.
        """
        if frame.root_index < 0:
            self.decisions += 1
            return self._tuple_feasible(pending_arm=None, pending="root")
        return True

    def _should_descend(self, child_frame: _Frame) -> bool:
        """Decide whether to visit the child's subtree (strictly below it)."""
        self.decisions += 1
        if not child_frame.content:
            return False
        return self._region_feasible(child_frame, below=True)

    def _should_continue(self, frame: _Frame) -> bool:
        """Decide ``nextEdge``: can the unseen right part of this node's
        children hold an answer component?"""
        self.decisions += 1
        if not frame.content:
            return False
        if frame.root_index < 0:
            return self._tuple_feasible(pending_arm=None, pending="future")
        return self._region_feasible(frame, below=False)

    def _region_feasible(self, frame: _Frame, below: bool) -> bool:
        """Is there an extension with an answer component in the region?

        ``below=True``: strictly below ``frame`` (its content is fully
        unseen — candidate types with free subtrees).  ``below=False``:
        among the unseen right siblings inside ``frame``.
        """
        for arm in range(len(self.pattern.arms)):
            if not self._arm_potential(frame, arm, below):
                continue
            if self._tuple_feasible(
                pending_arm=arm, pending="below", j_cur=frame.root_index
            ):
                return True
        return False

    def _arm_potential(self, frame: _Frame, arm: int, below: bool) -> bool:
        """Can ``arm`` match strictly inside the region of ``frame``?"""
        state = frame.arm_states[arm]
        if state is None:
            return False
        runner = self.arm_runners[arm]
        regex = self.pattern.arms[arm]
        if below:
            # The node's content is unseen: any instance content of a
            # candidate type is possible; one Γ-step then free completion.
            for tid in frame.content:
                for label, target in self.reach.edges.get(tid, ()):
                    after = runner.step(state, label)
                    if after is None:
                        continue
                    if self._arm_completes(regex, target, after):
                        return True
            return False
        # Region = future children of this partially seen node: symbols
        # consumable from the residual content state sets.
        for tid, content_states in frame.content.items():
            content_nfa = self._content_nfa(tid)
            for symbol in self._residual_symbols(content_nfa, content_states):
                label, target = symbol
                after = runner.step(state, label)
                if after is None:
                    continue
                if self.schema.type(target).is_atomic:
                    if runner.is_accepting(after):
                        return True
                    continue
                if self._arm_completes(regex, target, after):
                    return True
        return False

    def _arm_completes(self, regex: Regex, tid: str, state: object) -> bool:
        """Can the arm reach acceptance at-or-below a ``tid`` node?"""
        runner = self.reach.path(regex)
        for _type, config_state in self.reach.completions(regex, tid, state):
            if runner.is_accepting(config_state):
                return True
        return False

    def _residual_symbols(self, content_nfa: NFA, states: FrozenSet[int]):
        """Symbols occurring in some completion of the content word."""
        seen = set(states)
        stack = list(states)
        symbols = set()
        while stack:
            q = stack.pop()
            for symbol, dst in content_nfa.arcs_from(q):
                if symbol is not EPS:
                    symbols.add(symbol)
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return sorted(symbols, key=repr)

    @staticmethod
    def _immediate_symbols(nfa: NFA, states: FrozenSet[int]):
        """Symbols consumable right now from a (closed) state set."""
        symbols = set()
        for q in states:
            for symbol, _dst in nfa.arcs_from(q):
                if symbol is not EPS:
                    symbols.add(symbol)
        return sorted(symbols, key=repr)

    def _tuple_feasible(
        self, pending_arm: Optional[int], pending: str, j_cur: int = -1
    ) -> bool:
        """Can a full answer tuple exist with the pending component?

        A tuple assigns strictly increasing root-child indexes to the arms
        in order.  Seen matches supply indexes ``<= j_cur`` (the current
        root child); the pending component (mode ``"below"``) sits exactly
        at ``j_cur``; any remaining arms must be served by *future* root
        children (indexes ``> j_cur``), which therefore form a suffix of
        the arm list, checked against the root's residual content language.

        Modes: ``"below"`` — arm ``pending_arm`` must sit at ``j_cur``;
        ``"future"`` — at least one arm must sit at a future index;
        ``"root"`` — nothing seen yet, all arms must be future-servable.
        """
        root_frame = self._stack[0] if self._stack else None
        if root_frame is None:
            return True
        arm_count = len(self.pattern.arms)
        future_ok = self._future_suffix_table(root_frame)

        if pending == "root":
            return future_ok[0]
        if pending == "future":
            # Split: arms < t on seen indexes, arms >= t (non-empty) future.
            return any(
                future_ok[t] and self._prefix_on_seen(t, bound=None)
                for t in range(arm_count)
            )
        # pending == "below": pending_arm at j_cur; earlier arms on seen
        # indexes strictly below j_cur; later arms all future.
        arm = pending_arm if pending_arm is not None else 0
        if not future_ok[arm + 1]:
            return False
        return self._prefix_on_seen(arm, bound=j_cur)

    def _prefix_on_seen(self, split: int, bound: Optional[int]) -> bool:
        """Can arms ``0..split-1`` take strictly increasing seen indexes
        (all ``< bound`` when given)?  Greedy-minimal choice is optimal."""
        last = -1
        for arm in range(split):
            candidates = [
                index
                for index in sorted(self._seen[arm])
                if index > last and (bound is None or index < bound)
            ]
            if not candidates:
                return False
            last = candidates[0]
        return True

    def _future_suffix_table(self, root_frame: _Frame) -> List[bool]:
        """future_ok[t]: can arms t..k-1 all match via future root children?

        Product of the root's residual content automaton with arm progress;
        a future child serves arm ``t`` when its label starts the arm and
        the arm completes inside the child's type.
        """
        arm_count = len(self.pattern.arms)
        result = [False] * (arm_count + 1)
        # The empty suffix needs the root's residual word to be completable.
        result[arm_count] = any(
            self._completable(tid, states)
            for tid, states in root_frame.content.items()
        )
        for tid, content_states in root_frame.content.items():
            content_nfa = self._content_nfa(tid)
            for t in range(arm_count - 1, -1, -1):
                if not result[t] and self._suffix_feasible(
                    content_nfa, content_states, t
                ):
                    result[t] = True
        return result

    def _suffix_feasible(
        self, content_nfa: NFA, content_states: FrozenSet[int], start_arm: int
    ) -> bool:
        arm_count = len(self.pattern.arms)
        initial = (content_states, start_arm)
        seen = {initial}
        stack = [initial]
        while stack:
            states, progress = stack.pop()
            if progress == arm_count and (states & content_nfa.accepting):
                return True
            for symbol in self._immediate_symbols(content_nfa, states):
                next_states = content_nfa.step(states, symbol)
                if not next_states:
                    continue
                label, target = symbol
                options = [progress]
                if progress < arm_count:
                    arm_runner = self.arm_runners[progress]
                    arm_start = arm_runner.initial()
                    after = (
                        arm_runner.step(arm_start, label)
                        if arm_start is not None
                        else None
                    )
                    if after is not None:
                        serves = False
                        if self.schema.type(target).is_atomic:
                            serves = arm_runner.is_accepting(after)
                        else:
                            serves = self._arm_completes(
                                self.pattern.arms[progress], target, after
                            )
                        if serves:
                            options.append(progress + 1)
                for new_progress in options:
                    state = (next_states, new_progress)
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)
        return False
