"""Transformations by Skolem functions (Section 4.3).

A transformation query pairs a WHERE pattern with *construct rules*.  Each
rule emits one output edge per binding::

    f(X) -label-> g(Y)      # collection edge between Skolem nodes
    f(X) -label-> value(V)  # leaf edge carrying V's atomic value

Skolem terms ``f(X)`` denote output nodes keyed by the function name and
the bound argument, so bindings sharing ``X`` *fuse* into one node — the
object-fusion abstraction of the mediator languages the paper cites.  A
designated nullary term (``result()`` by default) is the output root.

Implemented here:

* :meth:`TransformQuery.apply` — execute the transformation;
* :func:`infer_output_schema` — Section 4.3's type inference for
  transformations with single-variable Skolem functions: the possible
  types of each function's argument (from the Section 3 inference engine)
  index the output types, and joint inference over rule endpoints fills in
  the edge alternatives.  The result is a *sound* description (every
  output conforms to it); the paper shows a best description need not
  exist in general, and our tests exhibit that phenomenon;
* :func:`check_transformation` — transformation type checking: does every
  output conform to a required schema?  Decided as subsumption between the
  inferred schema and the required one (sound).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple, Union

from ..automata.syntax import EPSILON, Regex, Sym, alt, concat, star
from ..data.model import DataGraph, Edge, Node, NodeKind
from ..engine import Engine
from ..query.eval import iterate_bindings
from ..query.model import PatternKind, Query
from ..schema.model import Schema, TypeDef, TypeKind
from ..schema.subsumption import subsumes
from ..typing.satisfiability import SatisfiabilityChecker


class SkolemTerm(NamedTuple):
    """A Skolem term ``f(args...)``; args are variable names of the WHERE
    pattern (node variables, or ``$``-prefixed value/label variables)."""

    function: str
    args: Tuple[str, ...] = ()

    def render(self, binding: Dict[str, object]) -> str:
        values = ", ".join(str(binding[arg]) for arg in self.args)
        return f"&{self.function}({values})"


class ValueOf(NamedTuple):
    """A rule target copying the atomic value bound to a variable."""

    var: str


class ConstructRule(NamedTuple):
    """One construct rule: ``head -label-> target`` per binding.

    ``label`` is a constant label or a ``$``-prefixed label variable.
    ``target`` is a :class:`SkolemTerm` or :class:`ValueOf`.
    """

    head: SkolemTerm
    label: str
    target: Union[SkolemTerm, ValueOf]


class TransformQuery:
    """A Skolem-function transformation: WHERE pattern plus construct rules."""

    def __init__(
        self,
        where: Query,
        rules: Sequence[ConstructRule],
        root: SkolemTerm = SkolemTerm("result"),
        ordered: bool = False,
    ):
        if root.args:
            raise ValueError("the output root must be a nullary Skolem term")
        known = set(where.node_vars()) | set(where.value_vars()) | set(where.label_vars())
        for rule in rules:
            for arg in rule.head.args + (
                rule.target.args if isinstance(rule.target, SkolemTerm) else (rule.target.var,)
            ):
                if arg not in known:
                    raise ValueError(f"rule uses unknown variable {arg!r}")
            if rule.label.startswith("$") and rule.label not in where.label_vars():
                raise ValueError(f"rule uses unknown label variable {rule.label!r}")
        self.where = where
        self.rules = tuple(rules)
        self.root = root
        self.ordered = ordered

    def skolem_functions(self) -> Dict[str, Tuple[str, ...]]:
        """Function name -> argument variables (must be consistent)."""
        signatures: Dict[str, Tuple[str, ...]] = {self.root.function: ()}
        for rule in self.rules:
            terms = [rule.head]
            if isinstance(rule.target, SkolemTerm):
                terms.append(rule.target)
            for term in terms:
                if term.function in signatures:
                    if signatures[term.function] != term.args:
                        raise ValueError(
                            f"Skolem function {term.function!r} used with "
                            "inconsistent argument lists"
                        )
                else:
                    signatures[term.function] = term.args
        return signatures

    def is_single_variable(self) -> bool:
        """True if every Skolem function takes at most one argument."""
        return all(len(args) <= 1 for args in self.skolem_functions().values())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def apply(self, graph: DataGraph) -> DataGraph:
        """Run the transformation on a data graph.

        Output nodes are referenceable (several rules may point at the
        same fused node); collection nodes are unordered unless the
        transformation was built with ``ordered=True``, in which case
        edges keep first-creation order.
        """
        edges: Dict[str, List[Edge]] = {}
        edge_seen: Dict[str, Set[Edge]] = {}
        atomics: Dict[str, object] = {}
        root_oid = self.root.render({})
        edges.setdefault(root_oid, [])
        edge_seen.setdefault(root_oid, set())

        for binding in iterate_bindings(self.where, graph):
            for rule in self.rules:
                head_oid = rule.head.render(binding)
                edges.setdefault(head_oid, [])
                edge_seen.setdefault(head_oid, set())
                label = (
                    str(binding[rule.label])
                    if rule.label.startswith("$")
                    else rule.label
                )
                if isinstance(rule.target, SkolemTerm):
                    target_oid = rule.target.render(binding)
                    edges.setdefault(target_oid, [])
                    edge_seen.setdefault(target_oid, set())
                else:
                    value = self._value_of(binding, rule.target.var, graph)
                    target_oid = f"&val({value!r})"
                    atomics[target_oid] = value
                edge = Edge(label, target_oid)
                if edge not in edge_seen[head_oid]:
                    edge_seen[head_oid].add(edge)
                    edges[head_oid].append(edge)

        kind = NodeKind.ORDERED if self.ordered else NodeKind.UNORDERED
        nodes = [Node(root_oid, kind, edges=edges[root_oid])]
        for oid in edges:
            if oid == root_oid:
                continue
            if oid in atomics:
                continue
            nodes.append(Node(oid, kind, edges=edges[oid]))
        for oid, value in atomics.items():
            nodes.append(Node(oid, NodeKind.ATOMIC, value=value))
        reachable = set(DataGraph(nodes, validate=False).reachable_from(root_oid))
        pruned = [node for node in nodes if node.oid in reachable]
        return DataGraph(pruned)

    @staticmethod
    def _value_of(binding: Dict[str, object], var: str, graph: DataGraph) -> object:
        if var.startswith("$"):
            return binding[var]
        oid = binding[var]
        node = graph.node(oid)  # type: ignore[arg-type]
        if not node.is_atomic:
            raise ValueError(
                f"value({var}) requires {var!r} to bind an atomic node"
            )
        return node.value


def infer_output_schema(
    transform: TransformQuery,
    input_schema: Schema,
    engine: Optional[Engine] = None,
) -> Schema:
    """Infer a schema describing all possible outputs (Section 4.3).

    Requires single-variable Skolem functions (the case for which the
    paper gives an exact algorithm; with multi-variable functions the
    result would only be an approximation).  The inferred schema is sound:
    every ``transform.apply(G)`` with ``G`` conforming to ``input_schema``
    conforms to it.

    Raises:
        ValueError: for multi-variable Skolem functions.
    """
    if not transform.is_single_variable():
        raise ValueError(
            "output schema inference requires single-variable Skolem functions"
        )
    checker = SatisfiabilityChecker(transform.where, input_schema, engine)
    signatures = transform.skolem_functions()
    kind = TypeKind.ORDERED if transform.ordered else TypeKind.UNORDERED

    def arg_types(function: str) -> List[Optional[str]]:
        args = signatures[function]
        if not args:
            return [None]
        return _variable_domain(checker, transform.where, input_schema, args[0])

    def output_tid(function: str, arg_type: Optional[str]) -> str:
        suffix = f"_{arg_type}" if arg_type is not None else ""
        return f"&{function.upper()}{suffix}".replace("&&", "&")

    # Value leaves share per-domain atomic types.
    value_tids: Dict[str, str] = {}
    types: List[TypeDef] = []
    root_tid = output_tid(transform.root.function, None)
    produced: Set[str] = set()

    ordered_functions = [transform.root.function] + [
        name for name in signatures if name != transform.root.function
    ]
    for function in ordered_functions:
        for arg_type in arg_types(function):
            tid = output_tid(function, arg_type)
            if tid in produced:
                continue
            produced.add(tid)
            factors: List[Regex] = []
            for rule in transform.rules:
                if rule.head.function != function:
                    continue
                factors.append(
                    _rule_factor(
                        rule,
                        arg_type,
                        signatures,
                        checker,
                        transform,
                        input_schema,
                        output_tid,
                        value_tids,
                    )
                )
            types.append(TypeDef(tid, kind, regex=concat(*factors) if factors else EPSILON))
    for domain, tid in value_tids.items():
        types.append(TypeDef(tid, TypeKind.ATOMIC, atomic=domain))
    # Root first.
    types.sort(key=lambda t: t.tid != root_tid)
    return Schema(types)


def _variable_domain(
    checker: SatisfiabilityChecker, where: Query, schema: Schema, var: str
) -> List[Optional[str]]:
    from ..schema.model import ATOMIC_TYPE_NAMES

    if var in where.value_vars():
        domain = list(ATOMIC_TYPE_NAMES)
    elif var in where.label_vars():
        domain = sorted(schema.labels())
    else:
        domain = sorted(schema.reachable_types())
    return [value for value in domain if checker.satisfiable({var: value})]


def _rule_factor(
    rule: ConstructRule,
    head_type: Optional[str],
    signatures: Dict[str, Tuple[str, ...]],
    checker: SatisfiabilityChecker,
    transform: TransformQuery,
    input_schema: Schema,
    output_tid,
    value_tids: Dict[str, str],
) -> Regex:
    """The regex factor one rule contributes to its head's content model."""
    head_args = signatures[rule.head.function]
    base_pins: Dict[str, str] = {}
    if head_args and head_type is not None:
        base_pins[head_args[0]] = head_type

    labels = [rule.label]
    if rule.label.startswith("$"):
        labels = [
            label
            for label in sorted(input_schema.labels())
            if checker.satisfiable({**base_pins, rule.label: label})
        ]

    if isinstance(rule.target, SkolemTerm):
        target_args = signatures[rule.target.function]
        target_var = target_args[0] if target_args else None
        options: List[Regex] = []
        deterministic = target_var is not None and head_args and target_var == head_args[0]
        for label in labels:
            label_pins = dict(base_pins)
            if rule.label.startswith("$"):
                label_pins[rule.label] = label
            if target_var is None:
                options.append(Sym((label, output_tid(rule.target.function, None))))
                continue
            for target_type in _variable_domain(
                checker, transform.where, input_schema, target_var
            ):
                if not checker.satisfiable({**label_pins, target_var: target_type}):
                    continue
                options.append(
                    Sym((label, output_tid(rule.target.function, target_type)))
                )
        if not options:
            return EPSILON
        union = alt(*options)
        # A target keyed by the head's own argument is emitted exactly once
        # per head node; anything else may fuse 0..many distinct targets.
        if deterministic and len(labels) == 1:
            return union
        return star(union)

    # Value leaf: determine the atomic domains the bound value can have.
    var = rule.target.var
    head_var = head_args[0] if head_args else None
    deterministic = False
    if var == head_var and head_type is not None:
        # The value is keyed by the head's own argument: one edge per node,
        # with the domain fixed by the head's type.  For value-variable
        # arguments the "type" is already an atomic domain name.
        if head_var.startswith("$"):
            domains = [head_type]
        else:
            head_def = input_schema.type(head_type)
            domains = [head_def.atomic] if head_def.is_atomic else []
        deterministic = bool(domains)
    else:
        domains = _value_domains(checker, transform.where, input_schema, var, base_pins)
    options = []
    for label in labels:
        for domain in domains:
            tid = value_tids.setdefault(domain, f"&VAL_{domain.upper()}")
            options.append(Sym((label, tid)))
    if not options:
        return EPSILON
    union = alt(*options)
    if deterministic and len(labels) == 1:
        return union
    return star(union)


def _value_domains(
    checker: SatisfiabilityChecker,
    where: Query,
    schema: Schema,
    var: str,
    base_pins: Dict[str, str],
) -> List[str]:
    from ..schema.model import ATOMIC_TYPE_NAMES

    if var.startswith("$"):
        return [
            domain
            for domain in ATOMIC_TYPE_NAMES
            if checker.satisfiable({**base_pins, var: domain})
        ]
    result = []
    for tid in sorted(schema.reachable_types()):
        type_def = schema.type(tid)
        if not type_def.is_atomic:
            continue
        if checker.satisfiable({**base_pins, var: tid}):
            if type_def.atomic not in result:
                result.append(type_def.atomic)
    return result


def parse_transform(text: str) -> TransformQuery:
    """Parse a transformation from its textual form.

    Syntax: a WHERE query followed by CONSTRUCT definitions that read
    like a data graph over Skolem terms::

        SELECT WHERE Root = [paper -> P];
                     P = [title -> T, author.name -> N]; N = $n
        CONSTRUCT
            result()    = { entry -> byname($n) };
            byname($n)  = { who -> value($n), wrote -> paper(P) };
            paper(P)    = { title -> value(T) }

    The first CONSTRUCT head is the output root and must be nullary.
    ``value(V)`` copies the atomic value bound to ``V``; labels may be
    label variables ``$l``.
    """
    import re as _re

    parts = _re.split(r"\bCONSTRUCT\b", text, maxsplit=1)
    if len(parts) != 2:
        raise SyntaxError("a transformation needs a CONSTRUCT clause")
    from ..query.parser import parse_query

    where = parse_query(parts[0])
    from ..lexer import TokenStream

    stream = TokenStream(parts[1])
    rules: List[ConstructRule] = []
    root: Optional[SkolemTerm] = None
    while not stream.at_end():
        head = _parse_term(stream)
        if not isinstance(head, SkolemTerm):
            raise SyntaxError("construct heads must be Skolem terms")
        if root is None:
            root = head
        stream.expect("OP", "=")
        stream.expect("OP", "{")
        if not stream.match("OP", "}"):
            while True:
                if stream.match("OP", "$"):
                    label = "$" + str(stream.expect("IDENT").value)
                else:
                    label = str(stream.expect("IDENT").value)
                stream.expect("ARROW")
                target = _parse_term(stream)
                rules.append(ConstructRule(head, label, target))
                if stream.match("OP", "}"):
                    break
                stream.expect("OP", ",")
        if stream.match("OP", ";") is None:
            break
    if not stream.at_end():
        token = stream.current
        raise SyntaxError(
            f"unexpected {token.kind} {token.value!r} at line {token.line}"
        )
    if root is None:
        raise SyntaxError("CONSTRUCT clause is empty")
    return TransformQuery(where, rules, root=root)


def _parse_term(stream) -> Union[SkolemTerm, ValueOf]:
    name = str(stream.expect("IDENT").value)
    stream.expect("OP", "(")
    args: List[str] = []
    if not stream.match("OP", ")"):
        while True:
            if stream.match("OP", "$"):
                args.append("$" + str(stream.expect("IDENT").value))
            else:
                args.append(str(stream.expect("IDENT").value))
            if stream.match("OP", ")"):
                break
            stream.expect("OP", ",")
    if name == "value":
        if len(args) != 1:
            raise SyntaxError("value(...) takes exactly one variable")
        return ValueOf(args[0])
    return SkolemTerm(name, tuple(args))


def transform_to_string(transform: TransformQuery) -> str:
    """Render a transformation (parse round-trips)."""
    from ..query.parser import query_to_string

    def show_term(term: Union[SkolemTerm, ValueOf]) -> str:
        if isinstance(term, ValueOf):
            return f"value({term.var})"
        return f"{term.function}({', '.join(term.args)})"

    grouped: Dict[SkolemTerm, List[ConstructRule]] = {}
    order: List[SkolemTerm] = []
    for head in [transform.root] + [r.head for r in transform.rules]:
        if head not in grouped:
            grouped[head] = []
            order.append(head)
    for rule in transform.rules:
        grouped[rule.head].append(rule)
    lines = [query_to_string(transform.where, indent=False), "CONSTRUCT"]
    rendered = []
    for head in order:
        body = ", ".join(
            f"{rule.label} -> {show_term(rule.target)}" for rule in grouped[head]
        )
        rendered.append(f"  {show_term(head)} = {{{body}}}")
    lines.append(";\n".join(rendered))
    return "\n".join(lines)


def check_transformation(
    transform: TransformQuery,
    input_schema: Schema,
    output_schema: Schema,
    engine: Optional[Engine] = None,
) -> bool:
    """Transformation type checking (Section 4.3).

    Returns True when every output of ``transform`` on instances of
    ``input_schema`` conforms to ``output_schema``, decided soundly via
    subsumption of the inferred output schema.
    """
    inferred = infer_output_schema(transform, input_schema, engine)
    return subsumes(inferred, output_schema, engine=engine)
