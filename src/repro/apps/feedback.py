"""Feedback queries for query formulation (Section 4.1, Proposition 4.1).

Given a query ``Q`` and a schema ``S``, the *feedback query* ``Q'``
replaces each regular path expression ``Ri`` by a tightened ``Ri'`` such
that (a) ``Q`` and ``Q'`` are equivalent on all databases conforming to
``S``, (b) ``lang(Ri') ⊆ lang(Ri)``, and (c) ``Q'`` is minimal among such
queries.  The construction is the per-segment projection of the trace
intersection ``Tr(P) ∩ Tr(S)`` (Proposition 4.1's proof sketch).

The paper presents the construction for single ordered join-free pattern
definitions and notes the extension to multiple definitions is
straightforward: for join-free tree patterns, a definition's arm languages
factor through (i) the set of types its variable can take in a satisfying
binding and (ii) the sets of types its arm targets can take — both of
which the type-inference machinery supplies.  That is how
:func:`feedback_query` handles nested definitions: one trace product per
ordered definition, per viable context type, with marker alphabets
restricted to the globally inferred type sets.

Unordered definitions and label-variable arms are passed through
unchanged (the paper's treatment covers ordered patterns).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..automata.ops import union
from ..automata.syntax import EMPTY, Regex
from ..engine import Engine, get_default_engine
from ..query.model import PatternArm, PatternDef, PatternKind, Query
from ..schema.model import Schema
from ..typing.inference import inferred_types_of
from ..typing.reach import SchemaReach
from ..typing.satisfiability import SatisfiabilityChecker
from ..typing.traces import segment_projection, trace_product
from ..automata.ops import to_regex


class UnsatisfiableQueryError(ValueError):
    """Raised when the query is inconsistent with the schema.

    Per Section 4.1, this is itself useful feedback: the query (or a part
    of it) can never produce results on data conforming to the schema.
    """


def feedback_query(
    query: Query, schema: Schema, engine: Optional[Engine] = None
) -> Query:
    """Compute the feedback query (Proposition 4.1).

    Raises:
        UnsatisfiableQueryError: if the query is unsatisfiable w.r.t. the
            schema (every tightened language would be empty).
        ValueError: if the query has joins (the paper's construction is
            for join-free queries).
    """
    if engine is None:
        engine = get_default_engine()
    if not query.is_join_free():
        raise ValueError("feedback queries are defined for join-free queries")
    checker = SatisfiabilityChecker(query, schema, engine)
    if not checker.satisfiable({}):
        raise UnsatisfiableQueryError(
            "the query is unsatisfiable with respect to the schema"
        )
    reach = engine.reach(schema)
    type_cache: Dict[str, List[str]] = {}

    def types_of(var: str) -> List[str]:
        if var not in type_cache:
            type_cache[var] = inferred_types_of(query, schema, var, engine=engine)
        return type_cache[var]

    new_patterns: List[PatternDef] = []
    for pattern in query.patterns:
        if pattern.kind is not PatternKind.ORDERED or not pattern.arms:
            new_patterns.append(pattern)
            continue
        if any(arm.is_label_var for arm in pattern.arms) or pattern.partial_order is not None:
            new_patterns.append(pattern)
            continue
        tightened = _tighten_definition(pattern, query, schema, reach, types_of, engine)
        new_patterns.append(tightened)
    return Query(query.select, new_patterns, validate=False)


def _tighten_definition(
    pattern: PatternDef,
    query: Query,
    schema: Schema,
    reach: SchemaReach,
    types_of,
    engine: Optional[Engine] = None,
) -> PatternDef:
    arms = [arm.path for arm in pattern.arms]
    allowed = [types_of(arm.target) for arm in pattern.arms]
    context_types = [
        tid for tid in types_of(pattern.var) if schema.type(tid).is_ordered
    ]
    if not context_types or any(not targets for targets in allowed):
        # The definition can never match; leave it for the error message of
        # the caller (the query as a whole was satisfiable, so this branch
        # indicates an unordered context handled elsewhere).
        return pattern
    product = trace_product(schema, context_types, arms, allowed, reach, engine)
    new_arms = []
    for index, arm in enumerate(pattern.arms, start=1):
        projected = segment_projection(product, index)
        regex = to_regex(projected)
        new_arms.append(PatternArm(regex, pattern.arms[index - 1].target))
    return PatternDef(pattern.var, pattern.kind, arms=new_arms)
