"""Seeded random generators for the differential fuzzing subsystem.

Everything here is driven by an explicit :class:`random.Random` so that a
``(seed, case)`` pair pins the exact input — the property of the whole
oracle layer that makes ``repro fuzz`` counterexamples reproducible (see
``docs/testing.md``).  The shapes are deliberately small: the brute-force
oracles in :mod:`repro.oracle` are exponential in nodes/variables, so the
fuzzers trade input size for case count.

Unlike the benchmark families in :mod:`repro.workloads.schemas` and
:mod:`repro.workloads.queries` (which target specific Table-2 cells),
these generators aim for *coverage*: regexes with all constructors,
schemas mixing ordered/unordered/referenceable types, graphs with
sharing and cycles through referenceable nodes, queries with value
patterns, label variables, nesting, and partial orders.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..automata.syntax import (
    ANY,
    EPSILON,
    Regex,
    Sym,
    alt,
    concat,
    opt,
    star,
)
from ..data.model import DataGraph, Edge, Node, NodeKind
from ..query.model import LabelVar, PatternArm, PatternDef, PatternKind, Query
from ..schema.model import Schema, TypeDef, TypeKind

#: Default symbol vocabulary for plain-regex fuzzing.
DEFAULT_ALPHABET: Tuple[str, ...] = ("a", "b", "c")

#: Default atomic values used by the graph generator.
DEFAULT_VALUES: Tuple[object, ...] = ("v", "w", 1, 2.5)


def random_regex(
    rng: random.Random,
    symbols: Sequence[object] = DEFAULT_ALPHABET,
    max_depth: int = 3,
    allow_wildcard: bool = False,
    allow_epsilon: bool = True,
) -> Regex:
    """A random regex built from the full constructor set.

    The smart constructors may simplify the raw shape (that is the
    point: fuzz what users can actually build).  The result never
    denotes the empty language.
    """

    def build(depth: int) -> Regex:
        if depth <= 0:
            return _leaf()
        roll = rng.random()
        if roll < 0.35:
            return _leaf()
        if roll < 0.60:
            return concat(*(build(depth - 1) for _ in range(rng.randint(2, 3))))
        if roll < 0.85:
            return alt(*(build(depth - 1) for _ in range(rng.randint(2, 3))))
        if roll < 0.95:
            return star(build(depth - 1))
        return opt(build(depth - 1))

    def _leaf() -> Regex:
        if allow_wildcard and rng.random() < 0.15:
            return ANY
        if allow_epsilon and rng.random() < 0.10:
            return EPSILON
        return Sym(rng.choice(list(symbols)))

    return build(max_depth)


def random_path_regex(
    rng: random.Random,
    labels: Sequence[str],
    max_depth: int = 2,
) -> Regex:
    """A random *path* expression: non-nullable, non-empty (Table 1 rule)."""
    regex = random_regex(rng, labels, max_depth, allow_wildcard=True)
    if regex.nullable() or regex.is_empty_language():
        regex = concat(Sym(rng.choice(list(labels))), regex)
    return regex


def random_schema(
    rng: random.Random,
    n_types: int = 4,
    labels: Sequence[str] = DEFAULT_ALPHABET,
    allow_unordered: bool = True,
    allow_referenceable: bool = True,
) -> Schema:
    """A random well-formed schema with every type inhabited.

    Type ``i`` references only higher-numbered types, so the definition
    graph is acyclic and inhabitation follows by induction (content
    regexes are never the empty language).  Kinds mix ordered, unordered,
    and atomic; later types may be referenceable so that graphs with
    shared nodes have something to conform to.
    """
    refable = [
        allow_referenceable and index > 0 and rng.random() < 0.3
        for index in range(n_types)
    ]

    def tid(index: int) -> str:
        return ("&" if refable[index] else "") + f"T{index}"

    types: List[TypeDef] = []
    for index in range(n_types):
        later = list(range(index + 1, n_types))
        if not later or (index > 0 and rng.random() < 0.3):
            atomic = rng.choice(("string", "int", "float"))
            types.append(TypeDef(tid(index), TypeKind.ATOMIC, atomic=atomic))
            continue
        atoms = [
            Sym((rng.choice(list(labels)), tid(child)))
            for child in rng.sample(later, rng.randint(1, min(3, len(later))))
        ]
        regex = _regex_over_atoms(rng, atoms, max_depth=2)
        kind = (
            TypeKind.UNORDERED
            if allow_unordered and rng.random() < 0.35
            else TypeKind.ORDERED
        )
        types.append(TypeDef(tid(index), kind, regex=regex))
    return Schema(types)


def _regex_over_atoms(
    rng: random.Random, atoms: List[Regex], max_depth: int
) -> Regex:
    def build(depth: int) -> Regex:
        if depth <= 0 or rng.random() < 0.4:
            return rng.choice(atoms)
        roll = rng.random()
        if roll < 0.40:
            return concat(*(build(depth - 1) for _ in range(rng.randint(2, 3))))
        if roll < 0.75:
            return alt(*(build(depth - 1) for _ in range(2)))
        if roll < 0.90:
            return star(build(depth - 1))
        return opt(build(depth - 1))

    return build(max_depth)


def random_graph(
    rng: random.Random,
    labels: Sequence[str] = DEFAULT_ALPHABET,
    max_nodes: int = 6,
    values: Sequence[object] = DEFAULT_VALUES,
    share_probability: float = 0.3,
) -> DataGraph:
    """A random well-formed data graph (not necessarily conforming to
    anything).

    A spanning tree guarantees reachability from the root; extra edges —
    only ever pointing at referenceable nodes, per the Section-2 rules —
    introduce sharing and possibly cycles.
    """
    n_nodes = rng.randint(1, max_nodes)
    kinds: List[NodeKind] = []
    oids: List[str] = []
    for index in range(n_nodes):
        if index == 0 and n_nodes > 1:
            kind = rng.choice((NodeKind.ORDERED, NodeKind.UNORDERED))
        else:
            kind = rng.choice(
                (NodeKind.ORDERED, NodeKind.UNORDERED, NodeKind.ATOMIC)
            )
        referenceable = index > 0 and rng.random() < 0.35
        kinds.append(kind)
        oids.append(("&" if referenceable else "") + f"o{index}")
    edges: List[List[Edge]] = [[] for _ in range(n_nodes)]
    collection_indexes = [
        i for i, kind in enumerate(kinds) if kind is not NodeKind.ATOMIC
    ]
    for index in range(1, n_nodes):
        parents = [i for i in collection_indexes if i < index]
        if not parents:
            # Root was atomic: re-home the whole suffix under node 0.
            kinds[0] = NodeKind.ORDERED
            collection_indexes.insert(0, 0)
            parents = [0]
        parent = rng.choice(parents)
        edges[parent].append(Edge(rng.choice(list(labels)), oids[index]))
    referenceable_targets = [oid for oid in oids[1:] if oid.startswith("&")]
    if referenceable_targets:
        for index in collection_indexes:
            while rng.random() < share_probability:
                edges[index].append(
                    Edge(rng.choice(list(labels)), rng.choice(referenceable_targets))
                )
    nodes: List[Node] = []
    for index in range(n_nodes):
        if kinds[index] is NodeKind.ATOMIC and edges[index]:
            kinds[index] = NodeKind.ORDERED
        if kinds[index] is NodeKind.ATOMIC:
            nodes.append(
                Node(oids[index], NodeKind.ATOMIC, value=rng.choice(list(values)))
            )
        else:
            shuffled = list(edges[index])
            rng.shuffle(shuffled)
            nodes.append(Node(oids[index], kinds[index], edges=shuffled))
    return DataGraph(nodes)


def random_query(
    rng: random.Random,
    labels: Sequence[str] = DEFAULT_ALPHABET,
    values: Sequence[object] = DEFAULT_VALUES,
    max_defs: int = 3,
    max_arms: int = 3,
    max_node_vars: int = 4,
    allow_label_vars: bool = True,
    allow_partial_order: bool = True,
) -> Query:
    """A random well-formed selection query.

    Shapes covered: ordered and unordered collection patterns, nested
    definitions, constant-value and value-variable leaves, label
    variables, referenceable join targets, partial orders over ordered
    arms, and random SELECT projections.  Retries internally until the
    Section-2 validation passes (a handful of attempts at most).
    """
    labels = list(labels) or ["a"]
    for _attempt in range(20):
        try:
            return _random_query_once(
                rng,
                labels,
                list(values),
                max_defs,
                max_arms,
                max_node_vars,
                allow_label_vars,
                allow_partial_order,
            )
        except ValueError:
            continue
    root = PatternDef(
        "Root", PatternKind.ORDERED, arms=[PatternArm(Sym(labels[0]), "X0")]
    )
    return Query(["X0"], [root])


def _random_query_once(
    rng: random.Random,
    labels: List[str],
    values: List[object],
    max_defs: int,
    max_arms: int,
    max_node_vars: int,
    allow_label_vars: bool,
    allow_partial_order: bool,
) -> Query:
    fresh = iter(range(100))
    join_target: Optional[str] = "&J" if rng.random() < 0.25 else None
    label_var_names = ["l1", "l2"]

    def make_arm() -> PatternArm:
        if join_target is not None and rng.random() < 0.4:
            target = join_target
        else:
            target = f"X{next(fresh)}"
        if allow_label_vars and rng.random() < 0.2:
            return PatternArm(LabelVar(rng.choice(label_var_names)), target)
        return PatternArm(random_path_regex(rng, labels), target)

    def make_collection(var: str) -> PatternDef:
        ordered = rng.random() < 0.6
        arms = [make_arm() for _ in range(rng.randint(1, max_arms))]
        partial = None
        if ordered and allow_partial_order and len(arms) >= 2 and rng.random() < 0.4:
            pairs = [
                (i, j)
                for i in range(len(arms))
                for j in range(i + 1, len(arms))
                if rng.random() < 0.5
            ]
            partial = pairs  # i < j only, so always acyclic
        kind = PatternKind.ORDERED if ordered else PatternKind.UNORDERED
        return PatternDef(var, kind, arms=arms, partial_order=partial)

    patterns = [make_collection("Root")]
    defined = {"Root"}
    for _extra in range(rng.randint(0, max_defs - 1)):
        undefined = [
            target
            for pattern in patterns
            for target in pattern.targets()
            if target not in defined
        ]
        if not undefined:
            break
        var = rng.choice(undefined)
        defined.add(var)
        roll = rng.random()
        if roll < 0.25 and values:
            patterns.append(
                PatternDef(var, PatternKind.VALUE, value=rng.choice(values))
            )
        elif roll < 0.45:
            patterns.append(
                PatternDef(var, PatternKind.VALUE_VAR, value_var="v1")
            )
        else:
            patterns.append(make_collection(var))
    query = Query([], patterns, validate=True)
    if len(query.node_vars()) > max_node_vars:
        raise ValueError("too many node variables for the brute-force oracle")
    names = (
        list(query.node_vars()) + list(query.label_vars()) + list(query.value_vars())
    )
    select = [name for name in names if rng.random() < 0.5]
    return Query(select, patterns, validate=True)
