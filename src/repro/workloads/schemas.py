"""Schema families for the benchmark harness.

Each generator targets a row of Table 2 (or an application section):

* :func:`chain_schema`, :func:`document_schema`, :func:`random_dtd` —
  ordered + tagged (the DTD⁻/DTD⁺ rows);
* :func:`union_chain_schema` — ordered but untagged (union types);
* :func:`unordered_schema` — the unordered column;
* :func:`wide_document_schema` — parameterized fan-out for the Section 4.2
  evaluation benchmarks.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..automata.syntax import EPSILON, Regex, Sym, alt, concat, opt, star
from ..schema.model import Schema, TypeDef, TypeKind


def chain_schema(depth: int) -> Schema:
    """``T0 = [a1 -> T1]; ... ; T{n-1} = [an -> Tn]; Tn = string``.

    Ordered, tagged, tree — the simplest DTD⁻ family; size scales with
    ``depth``.
    """
    types: List[TypeDef] = []
    for level in range(depth):
        types.append(
            TypeDef(
                f"T{level}",
                TypeKind.ORDERED,
                regex=Sym((f"a{level + 1}", f"T{level + 1}")),
            )
        )
    types.append(TypeDef(f"T{depth}", TypeKind.ATOMIC, atomic="string"))
    return Schema(types)


def document_schema(n_sections: int = 3) -> Schema:
    """The paper's Document/paper/author schema, widened to ``n_sections``
    extra section levels per paper (ordered + tagged + tree)."""
    section_types = []
    for level in range(n_sections):
        section_types.append(
            TypeDef(
                f"SEC{level}",
                TypeKind.ORDERED,
                regex=concat(
                    Sym((f"head{level}", f"HEAD{level}")),
                    star(Sym((f"sec{level + 1}", f"SEC{level + 1}")))
                    if level < n_sections - 1
                    else EPSILON,
                ),
            )
        )
        section_types.append(
            TypeDef(f"HEAD{level}", TypeKind.ATOMIC, atomic="string")
        )
    types = [
        TypeDef("DOCUMENT", TypeKind.ORDERED, regex=star(Sym(("paper", "PAPER")))),
        TypeDef(
            "PAPER",
            TypeKind.ORDERED,
            regex=concat(
                Sym(("title", "TITLE")),
                star(Sym(("author", "AUTHOR"))),
                star(Sym(("sec1", "SEC1"))) if n_sections >= 2 else EPSILON,
            ),
        ),
        TypeDef(
            "AUTHOR",
            TypeKind.ORDERED,
            regex=concat(Sym(("name", "NAME")), Sym(("email", "EMAIL"))),
        ),
        TypeDef(
            "NAME",
            TypeKind.ORDERED,
            regex=concat(
                Sym(("firstname", "FIRSTNAME")), Sym(("lastname", "LASTNAME"))
            ),
        ),
    ]
    types += [t for t in section_types if t.tid != "SEC0"]
    types += [
        TypeDef("TITLE", TypeKind.ATOMIC, atomic="string"),
        TypeDef("EMAIL", TypeKind.ATOMIC, atomic="string"),
        TypeDef("FIRSTNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("LASTNAME", TypeKind.ATOMIC, atomic="string"),
    ]
    kept = []
    referenced = {"DOCUMENT"}
    for type_def in types:
        referenced |= {target for _l, target in type_def.symbols()}
    for type_def in types:
        if type_def.tid in referenced:
            kept.append(type_def)
    return Schema(kept)


def union_chain_schema(depth: int, width: int = 2) -> Schema:
    """Ordered but *untagged*: each label fans out to ``width`` types.

    ``T0 = [(a1 -> T1_0 | a1 -> T1_1 | ...)]; ...`` — the family that
    keeps joins NP-hard on ordered schemas (candidate sets do not
    collapse).
    """
    types: List[TypeDef] = []

    def tid(level: int, branch: int) -> str:
        # Leaves are referenceable so that join variables (which must be
        # referenceable) can target them.
        prefix = "&" if level == depth else ""
        return f"{prefix}T{level}_{branch}"

    for level in range(depth):
        options = [
            Sym((f"a{level + 1}", tid(level + 1, branch))) for branch in range(width)
        ]
        if level == 0:
            types.append(TypeDef("T0", TypeKind.ORDERED, regex=alt(*options)))
        else:
            for branch in range(width):
                types.append(
                    TypeDef(tid(level, branch), TypeKind.ORDERED, regex=alt(*options))
                )
    for branch in range(width):
        atomic = "string" if branch % 2 == 0 else "int"
        types.append(TypeDef(tid(depth, branch), TypeKind.ATOMIC, atomic=atomic))
    return Schema(types)


def join_schema(depth: int, n_joins: int = 1, width: int = 2) -> Schema:
    """Ordered, untagged schema for join benchmarks.

    For each join slot ``j`` the root has two chains (``aj...`` and
    ``bj...``) of the given depth, both ending at the *same* pool of
    ``width`` referenceable leaves — so a join variable referenced through
    both chains has ``width`` candidate types to enumerate.
    """
    types: List[TypeDef] = []
    factors: List[Regex] = []
    leaf_options = [Sym(("end", f"&L{branch}")) for branch in range(width)]
    for join in range(n_joins):
        for side in ("a", "b"):
            for level in range(1, depth + 1):
                tid = f"{side.upper()}{join}_{level}"
                if level == depth:
                    body: Regex = alt(*leaf_options)
                else:
                    body = Sym(
                        (f"{side}{join}_{level + 1}", f"{side.upper()}{join}_{level + 1}")
                    )
                types.append(TypeDef(tid, TypeKind.ORDERED, regex=body))
            factors.append(Sym((f"{side}{join}_1", f"{side.upper()}{join}_1")))
    types.insert(0, TypeDef("ROOT", TypeKind.ORDERED, regex=concat(*factors)))
    for branch in range(width):
        types.append(TypeDef(f"&L{branch}", TypeKind.ATOMIC, atomic="string"))
    return Schema(types)


def unordered_schema(width: int) -> Schema:
    """An unordered, untagged schema with per-label union types.

    ``ROOT = {(a1 -> A1 | a1 -> B1) . ... . (aw -> Aw | aw -> Bw)}`` —
    the rightmost column of Table 2: even join-free constant-label
    queries stay NP-complete here.
    """
    factors = []
    types: List[TypeDef] = []
    for index in range(1, width + 1):
        factors.append(
            alt(Sym((f"a{index}", f"A{index}")), Sym((f"a{index}", f"B{index}")))
        )
        types.append(
            TypeDef(
                f"A{index}",
                TypeKind.UNORDERED,
                regex=star(Sym((f"hit{index}", "LEAF"))),
            )
        )
        types.append(TypeDef(f"B{index}", TypeKind.UNORDERED, regex=EPSILON))
    root = TypeDef("ROOT", TypeKind.UNORDERED, regex=concat(*factors))
    types.append(TypeDef("LEAF", TypeKind.ATOMIC, atomic="string"))
    return Schema([root] + types)


def wide_document_schema(n_kinds: int) -> Schema:
    """DTD⁻ schema with ``n_kinds`` alternative entry kinds under the root.

    Only the first kind carries the queried payload; the rest is ballast
    the Section 4.2 optimizer should prune without exploring.
    """
    options = [Sym((f"kind{k}", f"KIND{k}")) for k in range(n_kinds)]
    types = [
        TypeDef("ROOT", TypeKind.ORDERED, regex=star(alt(*options))),
        TypeDef(
            "KIND0",
            TypeKind.ORDERED,
            regex=concat(Sym(("payload", "PAYLOAD")), star(Sym(("note", "NOTE")))),
        ),
        TypeDef("PAYLOAD", TypeKind.ATOMIC, atomic="string"),
        TypeDef("NOTE", TypeKind.ATOMIC, atomic="string"),
    ]
    for k in range(1, n_kinds):
        types.append(
            TypeDef(
                f"KIND{k}",
                TypeKind.ORDERED,
                regex=star(Sym((f"junk{k}", f"JUNK{k}"))),
            )
        )
        types.append(
            TypeDef(
                f"JUNK{k}", TypeKind.ORDERED, regex=star(Sym((f"junk{k}", f"JUNK{k}")))
            )
        )
    return Schema(types)


def random_dtd(
    n_types: int,
    rng: Optional[random.Random] = None,
    max_children: int = 3,
) -> Schema:
    """A random DTD⁻ schema: a tagged ordered tree grammar.

    Type ``Ti`` may only reference higher-numbered types (so the schema is
    acyclic and every type inhabited); leaves are strings.
    """
    rng = rng or random.Random()
    types: List[TypeDef] = []
    for index in range(n_types):
        later = list(range(index + 1, n_types))
        if not later:
            types.append(TypeDef(f"T{index}", TypeKind.ATOMIC, atomic="string"))
            continue
        n_children = rng.randint(1, min(max_children, len(later)))
        children = rng.sample(later, n_children)
        factors: List[Regex] = []
        for child in children:
            atom = Sym((f"l{child}", f"T{child}"))
            shape = rng.choice(["one", "star", "opt"])
            if shape == "star":
                factors.append(star(atom))
            elif shape == "opt":
                factors.append(opt(atom))
            else:
                factors.append(atom)
        types.append(TypeDef(f"T{index}", TypeKind.ORDERED, regex=concat(*factors)))
    # Unreferenced non-root types may remain; that is fine for benchmarks.
    return Schema(types)


def schema_corpus(count: int, seed: int = 0) -> List[Schema]:
    """A deterministic corpus of ``count`` distinct ordered schemas.

    The standing input of ``repro warm`` and the cold-start benchmark: a
    mix of the ordered families above (chain, document, union-chain,
    wide-document, random DTD) with sizes spread by ``seed``, every
    schema satisfying the generic wildcard query
    ``SELECT X WHERE Root = [_ -> X]``.  Equal ``(count, seed)`` pairs
    produce fingerprint-identical corpora, which is what makes warming
    idempotent across processes.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    schemas: List[Schema] = []
    seen = set()
    index = 0
    while len(schemas) < count:
        family = index % 5
        size = 2 + index // 5 + rng.randint(0, 2)
        if family == 0:
            schema = chain_schema(size + 1)
        elif family == 1:
            schema = document_schema(size)
        elif family == 2:
            schema = union_chain_schema(size, width=2)
        elif family == 3:
            schema = wide_document_schema(size + 1)
        else:
            schema = random_dtd(size + 3, rng=random.Random(seed * 1000 + index))
        index += 1
        fingerprint = schema.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        schemas.append(schema)
    return schemas
