"""Multi-domain schema/query corpora for the replay harness.

Ten themed domains — social graph, bibliography, commerce, telemetry,
filesystem, org chart, geo, citation, config, messaging — each a
deterministic function of ``(seed, scale)``: a themed ordered tree
grammar in the paper's type language, a pool of queries over it, a pool
of partial type assignments for ``/check``, and a pool of conforming
documents for ``/evaluate``.  This is the corpus layer the ROADMAP asks
for in the spirit of text2typeql's 15-domain validated query set: the
single-family synthetic generators in :mod:`repro.workloads.schemas`
measure one shape at a time, while a replay run over these domains
exercises the service the way mixed production traffic would.

Realism knobs:

* **Zipf-ish size skew across domains** — :func:`domain_corpus` assigns
  rank ``k`` (1-based) the scale ``max(1, base_scale // k)`` plus seeded
  jitter, so the first domains are an order of magnitude larger than the
  tail, and the per-domain query-pool sizes follow the same skew.
* **Long-tail query depth** — query paths are random walks over the
  schema graph whose depth is geometric (most queries are 1–2 labels,
  a few run the full chain), mixing plain label chains, wildcard steps,
  ``(_*)`` suffix patterns, and multi-arm fan-outs.
* **Hash-seed independence** — everything iterates sorted or
  insertion-ordered structures, so equal seeds produce *byte-identical*
  corpus NDJSON across processes regardless of ``PYTHONHASHSEED``
  (a regression test holds this; the artifact store and the pool tier's
  shard routing both rely on cross-process fingerprint agreement).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..automata.syntax import ANY, EPSILON, Regex, Sym, alt, concat, opt, star, word
from ..data import data_to_string
from ..query import parse_query, query_to_string
from ..query.model import PatternArm, PatternDef, PatternKind, Query
from ..schema import schema_to_string
from ..schema.model import Schema, TypeDef, TypeKind
from .instances import random_instance

#: The themed domains, in Zipf rank order (first = largest corpus).
DOMAIN_NAMES: Tuple[str, ...] = (
    "social",
    "bibliography",
    "commerce",
    "telemetry",
    "filesystem",
    "orgchart",
    "geo",
    "citation",
    "config",
    "messaging",
)


@dataclass(frozen=True)
class DomainCorpus:
    """One domain's deterministic corpus: schema + request pools."""

    name: str
    seed: int
    scale: int
    schema_text: str
    fingerprint: str
    #: Query texts for ``/satisfiable``, ``/infer``, ``/classify``.
    queries: Tuple[str, ...]
    #: ``(query, assignment)`` pairs for ``/check``.
    checks: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]
    #: Conforming documents (Table-1 text) for ``/evaluate``.
    documents: Tuple[str, ...]

    def check_payloads(self) -> List[Dict[str, object]]:
        """The ``/check`` request bodies (JSON-able) for this domain."""
        return [
            {"query": query, "assignment": dict(assignment)}
            for query, assignment in self.checks
        ]


# ----------------------------------------------------------------------
# Schema builders, one per domain
# ----------------------------------------------------------------------


def _sym(label: str, tid: str) -> Regex:
    return Sym((label, tid))


def _jitter(rng: random.Random, width: int) -> int:
    """A draw in ``[0, width)`` via ``random()``.

    Not ``randint``: the *first* ``_randbelow`` draw after seeding
    ``Random`` with consecutive strings is visibly biased toward 0
    (MT19937's first output word mixes slowly), which made several
    domains produce identical structure for runs of adjacent seeds.
    The float path consumes two well-tempered words and varies properly.
    """
    return min(width - 1, int(rng.random() * width))


def _social_schema(rng: random.Random, scale: int) -> Schema:
    n_tags = max(2, scale + _jitter(rng, 3))
    tag_options = [_sym(f"tag{i}", f"TAG{i}") for i in range(n_tags)]
    types = [
        TypeDef("NETWORK", TypeKind.ORDERED, regex=star(_sym("user", "USER"))),
        TypeDef(
            "USER",
            TypeKind.ORDERED,
            regex=concat(
                _sym("handle", "HANDLE"),
                opt(_sym("bio", "BIO")),
                star(_sym("post", "POST")),
                star(_sym("follows", "HANDLE")),
            ),
        ),
        TypeDef(
            "POST",
            TypeKind.ORDERED,
            regex=concat(
                _sym("text", "TEXT"),
                star(alt(*tag_options)),
                star(_sym("comment", "COMMENT")),
            ),
        ),
        TypeDef(
            "COMMENT",
            TypeKind.ORDERED,
            regex=concat(_sym("text", "TEXT"), star(_sym("reply", "COMMENT"))),
        ),
        TypeDef("HANDLE", TypeKind.ATOMIC, atomic="string"),
        TypeDef("BIO", TypeKind.ATOMIC, atomic="string"),
        TypeDef("TEXT", TypeKind.ATOMIC, atomic="string"),
    ]
    types += [
        TypeDef(f"TAG{i}", TypeKind.ATOMIC, atomic="string") for i in range(n_tags)
    ]
    return Schema(types)


def _bibliography_schema(rng: random.Random, scale: int) -> Schema:
    depth = max(1, scale + _jitter(rng, 2))
    types = [
        TypeDef(
            "LIBRARY",
            TypeKind.ORDERED,
            regex=star(alt(_sym("book", "BOOK"), _sym("article", "ARTICLE"))),
        ),
        TypeDef(
            "BOOK",
            TypeKind.ORDERED,
            regex=concat(
                _sym("title", "TITLE"),
                star(_sym("author", "AUTHOR")),
                opt(_sym("publisher", "PUBLISHER")),
                star(_sym("chapter", "CH1")) if depth >= 1 else EPSILON,
            ),
        ),
        TypeDef(
            "ARTICLE",
            TypeKind.ORDERED,
            regex=concat(
                _sym("title", "TITLE"),
                star(_sym("author", "AUTHOR")),
                _sym("journal", "JOURNAL"),
                _sym("year", "YEAR"),
            ),
        ),
        TypeDef(
            "AUTHOR",
            TypeKind.ORDERED,
            regex=concat(_sym("name", "NAME"), opt(_sym("orcid", "ORCID"))),
        ),
    ]
    for level in range(1, depth + 1):
        inner = (
            star(_sym(f"ch{level + 1}", f"CH{level + 1}"))
            if level < depth
            else EPSILON
        )
        types.append(
            TypeDef(
                f"CH{level}",
                TypeKind.ORDERED,
                regex=concat(_sym("heading", "HEADING"), inner),
            )
        )
    types += [
        TypeDef(name, TypeKind.ATOMIC, atomic=atomic)
        for name, atomic in (
            ("TITLE", "string"), ("PUBLISHER", "string"), ("JOURNAL", "string"),
            ("YEAR", "int"), ("NAME", "string"), ("ORCID", "string"),
            ("HEADING", "string"),
        )
    ]
    return Schema(types)


def _commerce_schema(rng: random.Random, scale: int) -> Schema:
    cat_depth = max(1, scale // 2 + _jitter(rng, 2))
    types = [
        TypeDef(
            "STORE",
            TypeKind.ORDERED,
            regex=concat(
                star(_sym("product", "PRODUCT")), star(_sym("order", "ORDER"))
            ),
        ),
        TypeDef(
            "PRODUCT",
            TypeKind.ORDERED,
            regex=concat(
                _sym("sku", "SKU"),
                _sym("pname", "PNAME"),
                _sym("price", "PRICE"),
                _sym("category", "CAT1"),
                star(_sym("review", "REVIEW")),
            ),
        ),
        TypeDef(
            "REVIEW",
            TypeKind.ORDERED,
            regex=concat(_sym("stars", "STARS"), opt(_sym("text", "RTEXT"))),
        ),
        TypeDef(
            "ORDER",
            TypeKind.ORDERED,
            regex=concat(
                _sym("customer", "CUSTOMER"),
                _sym("line", "LINE"),
                star(_sym("line", "LINE")),
            ),
        ),
        TypeDef(
            "LINE",
            TypeKind.ORDERED,
            regex=concat(_sym("sku", "SKU"), _sym("qty", "QTY")),
        ),
        TypeDef(
            "CUSTOMER",
            TypeKind.ORDERED,
            regex=concat(_sym("cname", "CNAME"), _sym("email", "EMAIL")),
        ),
    ]
    for level in range(1, cat_depth + 1):
        inner = (
            opt(_sym("sub", f"CAT{level + 1}")) if level < cat_depth else EPSILON
        )
        types.append(
            TypeDef(
                f"CAT{level}",
                TypeKind.ORDERED,
                regex=concat(_sym("label", "CLABEL"), inner),
            )
        )
    types += [
        TypeDef(name, TypeKind.ATOMIC, atomic=atomic)
        for name, atomic in (
            ("SKU", "string"), ("PNAME", "string"), ("PRICE", "float"),
            ("STARS", "int"), ("RTEXT", "string"), ("QTY", "int"),
            ("CNAME", "string"), ("EMAIL", "string"), ("CLABEL", "string"),
        )
    ]
    return Schema(types)


def _telemetry_schema(rng: random.Random, scale: int) -> Schema:
    n_levels = max(2, scale + _jitter(rng, 2))
    level_options = [_sym(f"lvl{i}", f"LEVEL{i}") for i in range(n_levels)]
    types = [
        TypeDef(
            "FEED",
            TypeKind.ORDERED,
            regex=star(alt(_sym("metric", "METRIC"), _sym("event", "EVENT"))),
        ),
        TypeDef(
            "METRIC",
            TypeKind.ORDERED,
            regex=concat(_sym("mname", "MNAME"), star(_sym("sample", "SAMPLE"))),
        ),
        TypeDef(
            "SAMPLE",
            TypeKind.ORDERED,
            regex=concat(_sym("ts", "TS"), _sym("value", "VALUE")),
        ),
        TypeDef(
            "EVENT",
            TypeKind.ORDERED,
            regex=concat(
                _sym("ts", "TS"), alt(*level_options), _sym("message", "MESSAGE")
            ),
        ),
        TypeDef("MNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("TS", TypeKind.ATOMIC, atomic="int"),
        TypeDef("VALUE", TypeKind.ATOMIC, atomic="float"),
        TypeDef("MESSAGE", TypeKind.ATOMIC, atomic="string"),
    ]
    types += [
        TypeDef(f"LEVEL{i}", TypeKind.ATOMIC, atomic="string")
        for i in range(n_levels)
    ]
    return Schema(types)


def _filesystem_schema(rng: random.Random, scale: int) -> Schema:
    n_attrs = max(1, scale // 2 + _jitter(rng, 2))
    types = [
        TypeDef("FS", TypeKind.ORDERED, regex=_sym("root", "DIR")),
        TypeDef(
            "DIR",
            TypeKind.ORDERED,
            regex=concat(
                _sym("dname", "DNAME"),
                star(alt(_sym("dir", "DIR"), _sym("file", "FILE"))),
            ),
        ),
        TypeDef(
            "FILE",
            TypeKind.ORDERED,
            regex=concat(
                _sym("fname", "FNAME"),
                _sym("size", "SIZE"),
                star(_sym("attr", "ATTR")),
            ),
        ),
        TypeDef(
            "ATTR",
            TypeKind.ORDERED,
            regex=concat(
                alt(*[_sym(f"key{i}", "KEY") for i in range(n_attrs)]),
                _sym("aval", "AVAL"),
            ),
        ),
        TypeDef("DNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("FNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("SIZE", TypeKind.ATOMIC, atomic="int"),
        TypeDef("KEY", TypeKind.ATOMIC, atomic="string"),
        TypeDef("AVAL", TypeKind.ATOMIC, atomic="string"),
    ]
    return Schema(types)


def _orgchart_schema(rng: random.Random, scale: int) -> Schema:
    n_titles = max(2, scale + _jitter(rng, 3))
    title_options = [_sym(f"title{i}", "ETITLE") for i in range(n_titles)]
    types = [
        TypeDef("ORG", TypeKind.ORDERED, regex=star(_sym("dept", "DEPT"))),
        TypeDef(
            "DEPT",
            TypeKind.ORDERED,
            regex=concat(
                _sym("dname", "DNAME"),
                _sym("head", "EMP"),
                star(_sym("team", "TEAM")),
            ),
        ),
        TypeDef(
            "TEAM",
            TypeKind.ORDERED,
            regex=concat(_sym("tname", "TNAME"), star(_sym("member", "EMP"))),
        ),
        TypeDef(
            "EMP",
            TypeKind.ORDERED,
            regex=concat(
                _sym("ename", "ENAME"),
                alt(*title_options),
                star(_sym("report", "EMP")),
            ),
        ),
        TypeDef("DNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("TNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("ENAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("ETITLE", TypeKind.ATOMIC, atomic="string"),
    ]
    return Schema(types)


def _geo_schema(rng: random.Random, scale: int) -> Schema:
    n_kinds = max(2, scale // 2 + 1 + _jitter(rng, 2))
    types = [
        TypeDef("WORLD", TypeKind.ORDERED, regex=star(_sym("region", "REGION"))),
        TypeDef(
            "REGION",
            TypeKind.ORDERED,
            regex=concat(
                _sym("rname", "RNAME"),
                star(alt(_sym("region", "REGION"), _sym("city", "CITY"))),
            ),
        ),
        TypeDef(
            "CITY",
            TypeKind.ORDERED,
            regex=concat(
                _sym("cname", "CNAME"),
                _sym("population", "POP"),
                star(_sym("poi", "POI")),
            ),
        ),
        TypeDef(
            "POI",
            TypeKind.ORDERED,
            regex=concat(
                _sym("pname", "PNAME"),
                alt(*[_sym(f"kind{i}", "PKIND") for i in range(n_kinds)]),
            ),
        ),
        TypeDef("RNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("CNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("POP", TypeKind.ATOMIC, atomic="int"),
        TypeDef("PNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("PKIND", TypeKind.ATOMIC, atomic="string"),
    ]
    return Schema(types)


def _citation_schema(rng: random.Random, scale: int) -> Schema:
    n_venues = max(2, scale + _jitter(rng, 3))
    venue_options = [_sym(f"venue{i}", f"VENUE{i}") for i in range(n_venues)]
    types = [
        TypeDef("GRAPH", TypeKind.ORDERED, regex=star(_sym("paper", "PAPER"))),
        TypeDef(
            "PAPER",
            TypeKind.ORDERED,
            regex=concat(
                _sym("title", "TITLE"),
                _sym("year", "YEAR"),
                alt(*venue_options),
                star(_sym("author", "AUTHOR")),
                star(_sym("cites", "CITATION")),
            ),
        ),
        TypeDef(
            "AUTHOR",
            TypeKind.ORDERED,
            regex=concat(_sym("name", "NAME"), opt(_sym("affiliation", "AFFIL"))),
        ),
        TypeDef(
            "CITATION",
            TypeKind.ORDERED,
            regex=concat(_sym("reftitle", "TITLE"), opt(_sym("refyear", "YEAR"))),
        ),
        TypeDef("TITLE", TypeKind.ATOMIC, atomic="string"),
        TypeDef("YEAR", TypeKind.ATOMIC, atomic="int"),
        TypeDef("NAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("AFFIL", TypeKind.ATOMIC, atomic="string"),
    ]
    types += [
        TypeDef(f"VENUE{i}", TypeKind.ATOMIC, atomic="string")
        for i in range(n_venues)
    ]
    return Schema(types)


def _config_schema(rng: random.Random, scale: int) -> Schema:
    n_nums = max(1, scale // 2 + _jitter(rng, 2))
    value_options = [
        _sym("str", "SVAL"),
        _sym("flag", "FVAL"),
    ] + [_sym(f"num{i}", "NVAL") for i in range(n_nums)]
    types = [
        TypeDef("CONFIG", TypeKind.ORDERED, regex=star(_sym("section", "SECTION"))),
        TypeDef(
            "SECTION",
            TypeKind.ORDERED,
            regex=concat(
                _sym("sname", "SNAME"),
                star(alt(_sym("option", "OPTION"), _sym("section", "SECTION"))),
            ),
        ),
        TypeDef(
            "OPTION",
            TypeKind.ORDERED,
            regex=concat(
                _sym("key", "OKEY"),
                alt(*value_options),
            ),
        ),
        TypeDef("SNAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("OKEY", TypeKind.ATOMIC, atomic="string"),
        TypeDef("SVAL", TypeKind.ATOMIC, atomic="string"),
        TypeDef("NVAL", TypeKind.ATOMIC, atomic="int"),
        TypeDef("FVAL", TypeKind.ATOMIC, atomic="string"),
    ]
    return Schema(types)


def _messaging_schema(rng: random.Random, scale: int) -> Schema:
    n_mimes = max(1, scale // 2 + _jitter(rng, 2))
    types = [
        TypeDef("MAILBOX", TypeKind.ORDERED, regex=star(_sym("thread", "THREAD"))),
        TypeDef(
            "THREAD",
            TypeKind.ORDERED,
            regex=concat(
                _sym("subject", "SUBJECT"),
                _sym("message", "MESSAGE"),
                star(_sym("message", "MESSAGE")),
            ),
        ),
        TypeDef(
            "MESSAGE",
            TypeKind.ORDERED,
            regex=concat(
                _sym("sender", "ADDR"),
                _sym("to", "ADDR"),
                star(_sym("to", "ADDR")),
                _sym("body", "BODY"),
                star(_sym("attachment", "ATTACHMENT")),
                star(_sym("reply", "MESSAGE")),
            ),
        ),
        TypeDef(
            "ATTACHMENT",
            TypeKind.ORDERED,
            regex=concat(
                _sym("aname", "ANAME"),
                alt(*[_sym(f"mime{i}", "MIME") for i in range(n_mimes)]),
            ),
        ),
        TypeDef("SUBJECT", TypeKind.ATOMIC, atomic="string"),
        TypeDef("ADDR", TypeKind.ATOMIC, atomic="string"),
        TypeDef("BODY", TypeKind.ATOMIC, atomic="string"),
        TypeDef("ANAME", TypeKind.ATOMIC, atomic="string"),
        TypeDef("MIME", TypeKind.ATOMIC, atomic="string"),
    ]
    return Schema(types)


_BUILDERS: Dict[str, Callable[[random.Random, int], Schema]] = {
    "social": _social_schema,
    "bibliography": _bibliography_schema,
    "commerce": _commerce_schema,
    "telemetry": _telemetry_schema,
    "filesystem": _filesystem_schema,
    "orgchart": _orgchart_schema,
    "geo": _geo_schema,
    "citation": _citation_schema,
    "config": _config_schema,
    "messaging": _messaging_schema,
}


# ----------------------------------------------------------------------
# Query generation: seeded walks over the schema graph
# ----------------------------------------------------------------------


def _adjacency(schema: Schema) -> Dict[str, List[Tuple[str, str]]]:
    """``tid -> sorted [(label, target)]`` — sorted for hash-seed stability."""
    edges: Dict[str, List[Tuple[str, str]]] = {}
    for tid in schema.tids():
        type_def = schema.type(tid)
        if type_def.is_atomic:
            continue
        edges[tid] = sorted(set(type_def.symbols()))
    return edges


def _long_tail_depth(rng: random.Random, cap: int) -> int:
    """Geometric depth: most walks stop at 1–2, a few run to ``cap``."""
    depth = 1
    while depth < cap and rng.random() < 0.55:
        depth += 1
    return depth


def _walk(
    schema: Schema,
    adjacency: Dict[str, List[Tuple[str, str]]],
    rng: random.Random,
    max_depth: int = 8,
) -> Tuple[List[str], str]:
    """A random label path from the root; returns ``(labels, end_tid)``."""
    labels: List[str] = []
    tid = schema.root
    for _ in range(_long_tail_depth(rng, max_depth)):
        options = adjacency.get(tid)
        if not options:
            break
        label, tid = rng.choice(options)
        labels.append(label)
    if not labels:
        label, tid = rng.choice(adjacency[schema.root])
        labels.append(label)
    return labels, tid


def _chain_query(labels: Sequence[str]) -> Query:
    root = PatternDef(
        "Root", PatternKind.ORDERED, arms=[PatternArm(word(list(labels)), "X")]
    )
    return Query(["X"], [root])


def _render_query(
    schema: Schema,
    adjacency: Dict[str, List[Tuple[str, str]]],
    rng: random.Random,
) -> str:
    """One seeded query: chain, wildcard-step, ``(_*)`` suffix, or fan-out."""
    labels, _tid = _walk(schema, adjacency, rng)
    roll = rng.random()
    if roll < 0.50:
        query = _chain_query(labels)
    elif roll < 0.70:
        # One step blurred to the wildcard: `a._.c`.
        pieces: List[Regex] = [Sym(label) for label in labels]
        pieces[rng.randrange(len(pieces))] = ANY
        root = PatternDef(
            "Root", PatternKind.ORDERED, arms=[PatternArm(concat(*pieces), "X")]
        )
        query = Query(["X"], [root])
    elif roll < 0.85:
        # Constant-suffix form `(_*).l` — the R.l restriction of Table 2.
        path = concat(star(ANY), Sym(labels[-1]))
        root = PatternDef(
            "Root", PatternKind.ORDERED, arms=[PatternArm(path, "X")]
        )
        query = Query(["X"], [root])
    else:
        # Two-arm fan-out from the root over distinct first labels.
        other, _ = _walk(schema, adjacency, rng)
        arms = [
            PatternArm(word(list(labels)), "X1"),
            PatternArm(word(list(other)), "X2"),
        ]
        root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
        query = Query(["X1", "X2"], [root])
    return query_to_string(query)


def _sampled_query(
    schema: Schema,
    adjacency: Dict[str, List[Tuple[str, str]]],
    rng: random.Random,
    attempts: int = 16,
) -> str:
    """Draw queries until one round-trips through the parser."""
    for _ in range(attempts):
        text = _render_query(schema, adjacency, rng)
        try:
            parse_query(text)
        except (ValueError, SyntaxError):
            continue
        return text
    raise RuntimeError(
        f"domain query generator produced {attempts} consecutive "
        f"unparsable queries — generator/printer mismatch"
    )


# ----------------------------------------------------------------------
# Corpus assembly
# ----------------------------------------------------------------------


def build_domain(
    name: str,
    seed: int = 0,
    scale: int = 4,
    n_queries: int = 12,
    n_checks: int = 4,
    n_documents: int = 2,
) -> DomainCorpus:
    """The deterministic corpus for one named domain.

    Equal ``(name, seed, scale, ...)`` tuples produce byte-identical
    corpora in any process; different seeds vary the schema structure
    (and therefore the fingerprint), which is what lets the replay
    harness mint arbitrarily many distinct schemas for cache pressure.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown domain {name!r} (expected one of {', '.join(DOMAIN_NAMES)})"
        )
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random(f"{name}:{seed}:{scale}")
    schema = builder(rng, scale)
    adjacency = _adjacency(schema)

    queries = tuple(
        _sampled_query(schema, adjacency, rng) for _ in range(max(1, n_queries))
    )
    checks = []
    for _ in range(max(0, n_checks)):
        labels, end_tid = _walk(schema, adjacency, rng)
        checks.append(
            (query_to_string(_chain_query(labels)), (("X", end_tid),))
        )
    documents = tuple(
        data_to_string(random_instance(schema, rng, max_depth=5, max_repeat=2))
        for _ in range(max(0, n_documents))
    )
    return DomainCorpus(
        name=name,
        seed=seed,
        scale=scale,
        schema_text=schema_to_string(schema),
        fingerprint=schema.fingerprint(),
        queries=queries,
        checks=tuple(checks),
        documents=documents,
    )


def domain_corpus(
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
    base_scale: int = 8,
    base_queries: int = 24,
) -> List[DomainCorpus]:
    """All (or the named) domains with Zipf-ish size skew by rank.

    Rank ``k`` (1-based) gets scale ``max(1, base_scale // k)`` plus a
    seeded jitter of 0–1 and a query pool of ``max(4, base_queries // k)``
    — so the head domains carry most of the corpus mass and the tail
    stays cheap, the shape real multi-tenant registries have.
    """
    chosen = tuple(names) if names is not None else DOMAIN_NAMES
    unknown = [name for name in chosen if name not in _BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown domains {unknown}; choose from {', '.join(DOMAIN_NAMES)}"
        )
    jitter = random.Random(f"corpus:{seed}")
    corpora = []
    for rank, name in enumerate(chosen, start=1):
        scale = max(1, base_scale // rank) + jitter.randint(0, 1)
        corpora.append(
            build_domain(
                name,
                seed=seed,
                scale=scale,
                n_queries=max(4, base_queries // rank),
                n_checks=max(2, 6 // rank),
                n_documents=2,
            )
        )
    return corpora


def pressure_variants(
    count: int,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
) -> List[DomainCorpus]:
    """``count`` corpora with pairwise-distinct fingerprints.

    Cycles the domains while stepping ``scale`` by 4 per lap — wider than
    any builder's seeded jitter (≤ 2), so the structural counts strictly
    increase per domain and no two variants can share a fingerprint.
    The replay harness uses this to mint more schemas than the registry
    LRU bound and force eviction + artifact-store reload under load.
    """
    chosen = tuple(names) if names is not None else DOMAIN_NAMES
    variants = []
    for index in range(max(0, count)):
        name = chosen[index % len(chosen)]
        scale = 2 + 4 * (index // len(chosen))
        variants.append(
            build_domain(
                name,
                seed=seed + index,
                scale=scale,
                n_queries=2,
                n_checks=1,
                n_documents=1,
            )
        )
    return variants


def corpus_records(corpora: Sequence[DomainCorpus]) -> List[Dict[str, object]]:
    """Flatten corpora into JSON-able NDJSON records (schemas first)."""
    records: List[Dict[str, object]] = []
    for corpus in corpora:
        records.append(
            {
                "kind": "schema",
                "domain": corpus.name,
                "seed": corpus.seed,
                "scale": corpus.scale,
                "fingerprint": corpus.fingerprint,
                "schema": corpus.schema_text,
            }
        )
    for corpus in corpora:
        for query in corpus.queries:
            records.append(
                {"kind": "query", "domain": corpus.name, "query": query}
            )
        for payload in corpus.check_payloads():
            records.append({"kind": "check", "domain": corpus.name, **payload})
        for document in corpus.documents:
            records.append(
                {"kind": "document", "domain": corpus.name, "data": document}
            )
    return records


def corpus_to_ndjson(corpora: Sequence[DomainCorpus]) -> str:
    """Deterministic NDJSON rendering (sorted keys, stable order).

    Byte-identical for equal seeds across processes and hash seeds —
    the property the determinism regression test pins.
    """
    return "".join(
        json.dumps(record, sort_keys=True) + "\n"
        for record in corpus_records(corpora)
    )
