"""Query families for the benchmark harness, one per Table-2 column."""

from __future__ import annotations

import random
from typing import List, Optional

from ..automata.syntax import ANY, Regex, Sym, concat, plus, star, word
from ..query.model import PatternArm, PatternDef, PatternKind, Query


def chain_query(depth: int, wildcard: bool = False) -> Query:
    """Join-free single-path query matching :func:`chain_schema`.

    ``SELECT X WHERE Root = [a1.a2...an -> X]`` — or, with ``wildcard``,
    ``[(_*).an -> X]`` (constant suffix, regular prefix).
    """
    if wildcard:
        path: Regex = concat(star(ANY), Sym(f"a{depth}"))
    else:
        path = word([f"a{level}" for level in range(1, depth + 1)])
    root = PatternDef("Root", PatternKind.ORDERED, arms=[PatternArm(path, "X")])
    return Query(["X"], [root])


def star_fanout_query(n_arms: int, label: str = "paper") -> Query:
    """Join-free query with ``n_arms`` sibling arms under one star label.

    ``SELECT X1..Xn WHERE Root = [paper -> X1, ..., paper -> Xn]``.
    """
    arms = [PatternArm(Sym(label), f"X{index + 1}") for index in range(n_arms)]
    root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
    return Query([f"X{index + 1}" for index in range(n_arms)], [root])


def bounded_join_query(depth: int, n_joins: int = 1) -> Query:
    """Queries with exactly ``n_joins`` node-join variables.

    Matches :func:`repro.workloads.schemas.join_schema`: each join
    variable ``&Jj`` is reached through both the ``aj...`` and ``bj...``
    chains, which converge on the same referenceable leaves.
    """
    arms: List[PatternArm] = []
    for join in range(n_joins):
        target = f"&J{join}"
        for side in ("a", "b"):
            path = word(
                [f"{side}{join}_{level}" for level in range(1, depth + 1)]
                + ["end"]
            )
            arms.append(PatternArm(path, target))
    root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
    return Query([], [root])


def constant_label_query(labels: List[str]) -> Query:
    """A constant-labels query: one arm per literal label path."""
    arms = [PatternArm(Sym(label), f"X{index}") for index, label in enumerate(labels)]
    root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
    return Query([], [root])


def constant_suffix_query(suffix: str, n_arms: int = 1) -> Query:
    """Arms of the form ``(_*).suffix`` (the R.l restriction)."""
    arms = [
        PatternArm(concat(star(ANY), Sym(suffix)), f"X{index}")
        for index in range(n_arms)
    ]
    root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
    return Query([f"X{index}" for index in range(n_arms)], [root])


def deep_tree_query(depth: int, branch_labels: Optional[List[str]] = None) -> Query:
    """A nested join-free pattern tree of the given depth.

    ``Root = [l -> X1]; X1 = [l -> X2]; ...`` — exercises the acyclic
    extended CFG construction on nested definitions.
    """
    labels = branch_labels or [f"a{level}" for level in range(1, depth + 1)]
    patterns = []
    previous = "Root"
    for level, label in enumerate(labels):
        target = f"X{level + 1}"
        patterns.append(
            PatternDef(
                previous, PatternKind.ORDERED, arms=[PatternArm(Sym(label), target)]
            )
        )
        previous = target
    return Query([f"X{len(labels)}"], patterns)


def random_join_free_query(
    schema_labels: List[str],
    n_arms: int,
    rng: Optional[random.Random] = None,
    max_path: int = 3,
) -> Query:
    """Random join-free flat query over the given label vocabulary."""
    rng = rng or random.Random()
    arms = []
    for index in range(n_arms):
        length = rng.randint(1, max_path)
        pieces: List[Regex] = []
        for _ in range(length):
            choice = rng.random()
            if choice < 0.2:
                pieces.append(ANY)
            elif choice < 0.3:
                pieces.append(star(ANY))
            else:
                pieces.append(Sym(rng.choice(schema_labels)))
        path = concat(*pieces)
        if path.nullable() or path.is_empty_language():
            path = concat(Sym(rng.choice(schema_labels)), path)
        arms.append(PatternArm(path, f"X{index + 1}"))
    root = PatternDef("Root", PatternKind.ORDERED, arms=arms)
    return Query([], [root])
