"""Seeded schema mutations for the evolution/delta subsystem.

:func:`mutate_schema` applies one random, *effective* edit to a schema
(the mutated schema is always well-formed and has a different
fingerprint) and reports which kind of edit it made.  Each kind maps
onto one change class of :mod:`repro.schema.delta`:

========================  ====================================
mutation kind             expected change class
========================  ====================================
``add_type``              ``add_type``
``drop_type``             ``drop_type``
``rename_type``           ``rename_type``
``widen_content``         ``change_content_model`` (widening)
``narrow_content``        ``change_content_model``
``rename_label``          ``change_edge_label``
``change_atomic``         ``change_atomic``
``change_kind``           ``change_kind``
========================  ====================================

The generator is the seeded workload behind the CI ``delta-smoke`` job
and the ``delta`` fuzz section: it produces (old, new) schema pairs
whose classified verdicts the brute-force oracle can cross-check.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..automata import Alt, Concat, Epsilon, Regex, Star, Sym, alt, concat, word
from ..schema import ATOMIC_TYPE_NAMES, Schema, TypeDef, TypeKind

#: Every mutation kind :func:`mutate_schema` can apply.
MUTATION_KINDS: Tuple[str, ...] = (
    "add_type",
    "drop_type",
    "rename_type",
    "widen_content",
    "narrow_content",
    "rename_label",
    "change_atomic",
    "change_kind",
)


def _fresh_name(base: str, taken) -> str:
    index = 0
    while f"{base}{index}" in taken:
        index += 1
    return f"{base}{index}"


def _collection_tids(schema: Schema) -> List[str]:
    return [t.tid for t in schema if not t.is_atomic]


def _atomic_tids(schema: Schema) -> List[str]:
    return [t.tid for t in schema if t.is_atomic]


def _replace(schema: Schema, replacement: TypeDef) -> Schema:
    types = [
        replacement if t.tid == replacement.tid else t for t in schema
    ]
    return Schema(types)


def _some_word(regex: Regex) -> Optional[List]:
    """One word of ``lang(regex)`` read off the syntax (None if empty)."""
    if isinstance(regex, Epsilon) or isinstance(regex, Star):
        return []
    if isinstance(regex, Sym):
        return [regex.symbol]
    if isinstance(regex, Concat):
        parts = []
        for part in regex.parts:
            picked = _some_word(part)
            if picked is None:
                return None

            parts.extend(picked)
        return parts
    if isinstance(regex, Alt):
        for part in regex.parts:
            picked = _some_word(part)
            if picked is not None:
                return picked
    return None


def _mutate_add_type(schema: Schema, rng: random.Random) -> Optional[Schema]:
    tid = _fresh_name("MUT", set(schema.tids()))
    domain = rng.choice(ATOMIC_TYPE_NAMES)
    types = list(schema) + [TypeDef(tid, TypeKind.ATOMIC, atomic=domain)]
    return Schema(types)


def _prune_target(regex: Regex, dropped: str) -> Regex:
    """Rewrite ``regex`` with every atom targeting ``dropped`` elided.

    Atoms become epsilon (not Empty: that would collapse enclosing
    concatenations to the empty language, leaving uninhabited types) and
    the smart constructors renormalize — ``a->T . b->U`` prunes to
    ``b->U``, ``(a->T)*`` to epsilon.
    """
    from ..automata import EPSILON, star

    if isinstance(regex, Sym):
        return EPSILON if regex.symbol[1] == dropped else regex
    if isinstance(regex, Concat):
        return concat(*(_prune_target(p, dropped) for p in regex.parts))
    if isinstance(regex, Alt):
        return alt(*(_prune_target(p, dropped) for p in regex.parts))
    if isinstance(regex, Star):
        return star(_prune_target(regex.inner, dropped))
    return regex


def _mutate_drop_type(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = [t.tid for t in schema if t.tid != schema.root]
    if not candidates:
        return None
    dropped = rng.choice(candidates)
    referenced = {target for t in schema for _label, target in t.symbols()}
    types = []
    for t in schema:
        if t.tid == dropped:
            continue
        if t.is_atomic or dropped not in referenced:
            types.append(t)
        else:
            types.append(
                TypeDef(t.tid, t.kind, regex=_prune_target(t.regex, dropped))
            )
    return Schema(types)


def _mutate_rename_type(schema: Schema, rng: random.Random) -> Optional[Schema]:
    old_tid = rng.choice(list(schema.tids()))
    prefix = "&" if old_tid.startswith("&") else ""
    new_tid = prefix + _fresh_name(
        "MUT", {tid.lstrip("&") for tid in schema.tids()}
    )

    def rename(symbol):
        label, target = symbol
        return (label, new_tid) if target == old_tid else symbol

    types = []
    for t in schema:
        tid = new_tid if t.tid == old_tid else t.tid
        if t.is_atomic:
            types.append(TypeDef(tid, t.kind, atomic=t.atomic))
        else:
            types.append(TypeDef(tid, t.kind, regex=t.regex.map_symbols(rename)))
    return Schema(types)


def _mutate_widen_content(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = _collection_tids(schema)
    if not candidates:
        return None
    tid = rng.choice(candidates)
    target_def = schema.type(tid)
    label = _fresh_name("mut", schema.labels())
    # Point the new alternative at an atomic type when one exists — atomic
    # types are always inhabited, so the widened language stays realizable.
    atomic = _atomic_tids(schema)
    target = rng.choice(atomic or list(schema.tids()))
    widened = alt(target_def.regex, Sym((label, target)))
    return _replace(schema, TypeDef(tid, target_def.kind, regex=widened))


def _mutate_narrow_content(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = []
    for tid in _collection_tids(schema):
        regex = schema.type(tid).regex
        if isinstance(regex, (Alt, Star)) or _some_word(regex) is not None:
            candidates.append(tid)
    if not candidates:
        return None
    tid = rng.choice(candidates)
    target_def = schema.type(tid)
    regex = target_def.regex
    if isinstance(regex, Alt):
        narrowed: Regex = rng.choice(list(regex.parts))
    elif isinstance(regex, Star):
        narrowed = concat()  # epsilon: keep only the zero-iteration word
    else:
        narrowed = word(_some_word(regex))
    return _replace(schema, TypeDef(tid, target_def.kind, regex=narrowed))


def _mutate_rename_label(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = [
        tid for tid in _collection_tids(schema) if schema.type(tid).symbols()
    ]
    if not candidates:
        return None
    tid = rng.choice(candidates)
    target_def = schema.type(tid)
    old_label = rng.choice(sorted({label for label, _t in target_def.symbols()}))
    new_label = _fresh_name("mut", schema.labels())

    def relabel(symbol):
        label, target = symbol
        return (new_label, target) if label == old_label else symbol

    renamed = target_def.regex.map_symbols(relabel)
    return _replace(schema, TypeDef(tid, target_def.kind, regex=renamed))


def _mutate_change_atomic(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = _atomic_tids(schema)
    if not candidates:
        return None
    tid = rng.choice(candidates)
    target_def = schema.type(tid)
    domain = rng.choice([d for d in ATOMIC_TYPE_NAMES if d != target_def.atomic])
    return _replace(schema, TypeDef(tid, TypeKind.ATOMIC, atomic=domain))


def _mutate_change_kind(schema: Schema, rng: random.Random) -> Optional[Schema]:
    candidates = _collection_tids(schema)
    if not candidates:
        return None
    tid = rng.choice(candidates)
    target_def = schema.type(tid)
    flipped = (
        TypeKind.UNORDERED if target_def.kind is TypeKind.ORDERED else TypeKind.ORDERED
    )
    return _replace(schema, TypeDef(tid, flipped, regex=target_def.regex))


_APPLIERS: dict = {
    "add_type": _mutate_add_type,
    "drop_type": _mutate_drop_type,
    "rename_type": _mutate_rename_type,
    "widen_content": _mutate_widen_content,
    "narrow_content": _mutate_narrow_content,
    "rename_label": _mutate_rename_label,
    "change_atomic": _mutate_change_atomic,
    "change_kind": _mutate_change_kind,
}


def mutate_schema(
    schema: Schema,
    rng: random.Random,
    kinds: Optional[Sequence[str]] = None,
) -> Tuple[Schema, str]:
    """Apply one effective random mutation; return ``(mutant, kind)``.

    ``kinds`` restricts the edit to a subset of :data:`MUTATION_KINDS`.
    Kinds are tried in random order until one applies *and* changes the
    fingerprint; raises :class:`ValueError` if none does (e.g. asking
    for ``change_atomic`` on a schema without atomic types).
    """
    chosen = list(kinds) if kinds is not None else list(MUTATION_KINDS)
    unknown = [kind for kind in chosen if kind not in _APPLIERS]
    if unknown:
        raise ValueError(
            f"unknown mutation kinds {unknown} (expected from {MUTATION_KINDS})"
        )
    rng.shuffle(chosen)
    fingerprint = schema.fingerprint()
    for kind in chosen:
        mutant = _APPLIERS[kind](schema, rng)
        if mutant is not None and mutant.fingerprint() != fingerprint:
            return mutant, kind
    raise ValueError(
        f"no mutation from {sorted(chosen)} applies to this schema"
    )
