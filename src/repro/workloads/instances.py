"""Instance generation from schemas: exhaustive enumeration and sampling.

Used in three places:

* the adaptive evaluator's extension oracle (Section 4.2) enumerates the
  conforming instances consistent with the data seen so far;
* property tests cross-validate conformance and satisfiability against
  brute force over enumerated instances;
* benchmarks sample random conforming documents of controlled size.

Enumeration is exhaustive for schemas whose instance sets are finite and
is cut off by ``max_nodes``/``max_word`` otherwise (star contents are
unrolled up to the bound).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..automata.nfa import EPS, NFA
from ..data.model import DataGraph, Edge, Node, NodeKind
from ..schema.model import Schema, TypeDef

#: Default atomic values used when materializing leaves.
DEFAULT_VALUES = {"string": "s", "int": 0, "float": 0.5}


def enumerate_instances(
    schema: Schema,
    max_nodes: int = 12,
    max_word: int = 4,
) -> Iterator[DataGraph]:
    """Yield conforming instances of ``schema`` (trees over referenceable
    expansion), smallest first, up to ``max_nodes`` nodes per instance.

    Referenceable types are expanded like any other type (so shared nodes
    are not produced; every enumerated instance is a tree).  ``max_word``
    bounds the child-sequence length of a single node.  For schemas whose
    content regexes are star-free and small, enumeration is exhaustive.
    """
    counter = itertools.count(1)

    def fresh_oid() -> str:
        return f"o{next(counter)}"

    def expand(tid: str, budget: int) -> Iterator[Tuple[List[Node], str, int]]:
        """Yield (nodes, root_oid, used) for subtrees of type ``tid``."""
        if budget <= 0:
            return
        type_def = schema.type(tid)
        oid = fresh_oid()
        if type_def.is_atomic:
            for value in _atomic_values(type_def.atomic):
                yield [Node(oid, NodeKind.ATOMIC, value=value)], oid, 1
            return
        kind = NodeKind.ORDERED if type_def.is_ordered else NodeKind.UNORDERED
        nfa = schema.compile_regex(tid)
        for word in _words_up_to(nfa, max_word):
            yield from _expand_word(oid, kind, word, budget, expand)

    def _expand_word(oid, kind, word, budget, expand_fn):
        def build(
            index: int, remaining: int
        ) -> Iterator[Tuple[List[Node], List[Edge], int]]:
            if index == len(word):
                yield [], [], 0
                return
            label, child_tid = word[index]
            for child_nodes, child_oid, child_used in expand_fn(
                child_tid, remaining
            ):
                for rest_nodes, rest_edges, rest_used in build(
                    index + 1, remaining - child_used
                ):
                    yield (
                        child_nodes + rest_nodes,
                        [Edge(label, child_oid)] + rest_edges,
                        child_used + rest_used,
                    )

        for nodes, edges, used in build(0, budget - 1):
            head = Node(oid, kind, edges=edges)
            yield [head] + nodes, oid, used + 1

    for nodes, root_oid, _used in expand(schema.root, max_nodes):
        ordered = [next(n for n in nodes if n.oid == root_oid)]
        ordered += [n for n in nodes if n.oid != root_oid]
        yield DataGraph(ordered, validate=False)


def _atomic_values(atomic: str) -> List[object]:
    return [DEFAULT_VALUES[atomic]]


def _words_up_to(nfa: NFA, max_length: int) -> Iterator[Tuple]:
    """All accepted words of length at most ``max_length``, shortest first."""
    seen_words: List[Tuple] = []
    frontier: List[Tuple[Tuple, object]] = [((), nfa.initial_states())]
    for _length in range(max_length + 1):
        next_frontier = []
        for word, states in frontier:
            if states & nfa.accepting:
                yield word
            for symbol in sorted(nfa.alphabet, key=repr):
                nxt = nfa.step(states, symbol)
                if nxt:
                    next_frontier.append((word + (symbol,), nxt))
        frontier = next_frontier


def random_instance(
    schema: Schema,
    rng: Optional[random.Random] = None,
    max_depth: int = 12,
    star_bias: float = 0.5,
    max_repeat: int = 3,
) -> DataGraph:
    """Sample a random conforming instance (a tree).

    Child words are sampled by a biased random walk over the content NFA:
    at accepting states the walk stops with probability ``1 - star_bias``
    (and always once ``max_repeat * fan-out`` symbols have been emitted or
    the depth budget runs out), so ``star_bias`` tunes document width.

    Raises:
        ValueError: if the root type is uninhabited.
    """
    rng = rng or random.Random()
    if schema.root not in schema.inhabited_types():
        raise ValueError(f"root type {schema.root!r} is uninhabited")
    inhabited = schema.inhabited_types()
    counter = itertools.count(1)
    nodes: List[Node] = []

    def fresh_oid() -> str:
        return f"o{next(counter)}"

    def sample(tid: str, depth: int) -> str:
        type_def = schema.type(tid)
        oid = fresh_oid()
        if type_def.is_atomic:
            nodes.append(
                Node(oid, NodeKind.ATOMIC, value=_random_value(type_def.atomic, rng))
            )
            return oid
        word = _sample_word(
            schema, tid, rng, inhabited, star_bias, max_repeat, shortest=depth <= 0
        )
        edges = []
        for label, child_tid in word:
            child_oid = sample(child_tid, depth - 1)
            edges.append(Edge(label, child_oid))
        kind = NodeKind.ORDERED if type_def.is_ordered else NodeKind.UNORDERED
        nodes.append(Node(oid, kind, edges=edges))
        return oid

    root_oid = sample(schema.root, max_depth)
    ordered = [next(n for n in nodes if n.oid == root_oid)]
    ordered += [n for n in nodes if n.oid != root_oid]
    return DataGraph(ordered, validate=False)


def _random_value(atomic: str, rng: random.Random) -> object:
    if atomic == "string":
        return "".join(rng.choice("abcdexyz") for _ in range(4))
    if atomic == "int":
        return rng.randrange(0, 100)
    return round(rng.uniform(0, 10), 3)


def _inhabitation_ranks(schema: Schema) -> Dict[str, int]:
    """Round at which each type became inhabited in the least fixpoint.

    A type of rank ``r`` has a content word all of whose targets have rank
    strictly below ``r`` — the handle that makes shortest-instance
    construction terminate on recursive schemas.
    """
    ranks: Dict[str, int] = {t.tid: 0 for t in schema if t.is_atomic}
    compiled = {t.tid: schema.compile_regex(t.tid) for t in schema if not t.is_atomic}
    round_index = 0
    changed = True
    while changed:
        changed = False
        round_index += 1
        known = set(ranks)
        for type_def in schema:
            if type_def.tid in ranks or type_def.is_atomic:
                continue
            nfa = compiled[type_def.tid]
            if _accepts_over_targets(nfa, known):
                ranks[type_def.tid] = round_index
                changed = True
    return ranks


def _accepts_over_targets(nfa: NFA, targets: Set[str]) -> bool:
    states = nfa.initial_states()
    seen = {states}
    stack = [states]
    while stack:
        current = stack.pop()
        if current & nfa.accepting:
            return True
        symbols = set()
        for q in current:
            for symbol, _dst in nfa.arcs_from(q):
                if symbol is not EPS and symbol[1] in targets:
                    symbols.add(symbol)
        for symbol in symbols:
            nxt = nfa.step(current, symbol)
            if nxt and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


def _sample_word(
    schema: Schema,
    tid: str,
    rng: random.Random,
    inhabited: frozenset,
    star_bias: float,
    max_repeat: int,
    shortest: bool,
) -> List[Tuple[str, str]]:
    """Sample a word of the type's content language over inhabited symbols.

    In ``shortest`` mode only symbols targeting strictly lower-rank types
    are used and the walk heads straight for acceptance, which guarantees
    termination on recursive schemas.
    """
    nfa = schema.compile_regex(tid)
    ranks = _inhabitation_ranks(schema)

    def allowed(symbol) -> bool:
        if symbol[1] not in inhabited:
            return False
        if shortest:
            return ranks.get(symbol[1], 10 ** 9) < ranks.get(tid, 10 ** 9)
        return True

    def arcs(states):
        result = set()
        for q in states:
            for symbol, _dst in nfa.arcs_from(q):
                if symbol is not EPS and allowed(symbol):
                    result.add(symbol)
        return sorted(result)

    word: List[Tuple[str, str]] = []
    states = nfa.initial_states()
    limit = max_repeat * max(4, len(schema.labels()))
    finishing = shortest
    while True:
        accepting_now = bool(states & nfa.accepting)
        if accepting_now and (finishing or rng.random() > star_bias):
            return word
        if len(word) >= limit:
            finishing = True
            if accepting_now:
                return word
        options = []
        for symbol in arcs(states):
            nxt = nfa.step(states, symbol)
            if not nxt:
                continue
            distance = _distance_to_accept(nfa, nxt, allowed)
            if distance is not None:
                options.append((symbol, nxt, distance))
        if not options:
            if accepting_now:
                return word
            raise RuntimeError(f"dead end sampling content of {tid!r}")
        if finishing:
            # Strictly decreasing distance to acceptance: cannot cycle.
            symbol, states_next, _distance = min(options, key=lambda o: o[2])
        else:
            symbol, states_next, _distance = rng.choice(options)
        word.append(symbol)
        states = states_next


def _distance_to_accept(nfa: NFA, states: frozenset, allowed) -> Optional[int]:
    """Length of a shortest allowed completion from ``states`` (BFS)."""
    from collections import deque

    seen = {states}
    queue = deque([(states, 0)])
    while queue:
        current, distance = queue.popleft()
        if current & nfa.accepting:
            return distance
        symbols = set()
        for q in current:
            for symbol, _dst in nfa.arcs_from(q):
                if symbol is not EPS and allowed(symbol):
                    symbols.add(symbol)
        for symbol in symbols:
            nxt = nfa.step(current, symbol)
            if nxt and nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, distance + 1))
    return None
