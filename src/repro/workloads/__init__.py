"""Synthetic workloads: schema/query families and instance generation.

These feed the benchmark harness: one schema family per Table-2 row, one
query family per column, plus conforming-instance enumeration/sampling
used by the Section 4.2 oracle and the property tests.
"""

from .generators import (
    random_graph,
    random_path_regex,
    random_query,
    random_regex,
    random_schema,
)
from .instances import (
    enumerate_instances,
    random_instance,
)
from .schemas import (
    chain_schema,
    join_schema,
    document_schema,
    random_dtd,
    schema_corpus,
    union_chain_schema,
    unordered_schema,
    wide_document_schema,
)
from .corpus import (
    CORPUS_OPERATIONS,
    batch_corpus,
    corpus_to_ndjson,
    write_corpus,
)
from .domains import (
    DOMAIN_NAMES,
    DomainCorpus,
    build_domain,
    corpus_records,
    domain_corpus,
    pressure_variants,
)
from .domains import corpus_to_ndjson as domain_corpus_ndjson
from .mutations import (
    MUTATION_KINDS,
    mutate_schema,
)
from .queries import (
    bounded_join_query,
    chain_query,
    constant_label_query,
    constant_suffix_query,
    deep_tree_query,
    random_join_free_query,
    star_fanout_query,
)

__all__ = [
    "CORPUS_OPERATIONS",
    "DOMAIN_NAMES",
    "DomainCorpus",
    "MUTATION_KINDS",
    "batch_corpus",
    "build_domain",
    "corpus_records",
    "domain_corpus",
    "domain_corpus_ndjson",
    "pressure_variants",
    "bounded_join_query",
    "chain_query",
    "chain_schema",
    "constant_label_query",
    "constant_suffix_query",
    "corpus_to_ndjson",
    "deep_tree_query",
    "document_schema",
    "enumerate_instances",
    "join_schema",
    "mutate_schema",
    "random_dtd",
    "random_graph",
    "random_instance",
    "random_join_free_query",
    "random_path_regex",
    "random_query",
    "random_regex",
    "random_schema",
    "schema_corpus",
    "star_fanout_query",
    "union_chain_schema",
    "unordered_schema",
    "wide_document_schema",
    "write_corpus",
]
