"""Seeded NDJSON corpora for the bulk-decision pipeline.

:func:`batch_corpus` emits what ``repro batch`` consumes: one schema text
plus many per-item JSON objects for a single operation, all derived from
a seed so that benchmark and test runs are reproducible.  The corpus is
deliberately *dirty* when asked (``corrupt_rate``): a slice of items get
unparsable query text, exercising the pipeline's per-item error
isolation at scale.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional, Tuple

from ..data import data_to_string, parse_data
from ..query import parse_query, query_to_string
from ..schema import schema_to_string
from .generators import random_query
from .instances import random_instance
from .schemas import document_schema

#: The operations :func:`batch_corpus` can emit items for.
CORPUS_OPERATIONS: Tuple[str, ...] = (
    "satisfiable",
    "infer",
    "classify",
    "conforms",
    "evaluate",
)

#: Query text that fails the parser — used for corrupted items.  (The
#: lexer treats ``_`` as the wildcard, so the marker avoids underscores.)
_CORRUPT_QUERY = "((( zzz9"


def batch_corpus(
    operation: str = "satisfiable",
    n_items: int = 1000,
    seed: int = 0,
    n_sections: int = 8,
    corrupt_rate: float = 0.0,
) -> Tuple[str, List[Dict[str, Any]]]:
    """A ``(schema_text, items)`` pair for one bulk operation.

    The schema is the paper's DOCUMENT family (``document_schema``);
    query items are seeded :func:`random_query` draws over its labels,
    data items are seeded conforming instances.  ``corrupt_rate`` is the
    fraction of items (rounded down) whose query text is replaced with
    an unparsable string; those must surface as per-item ``parse-error``
    envelopes, never as batch failures.
    """
    if operation not in CORPUS_OPERATIONS:
        raise ValueError(
            f"unknown corpus operation {operation!r} "
            f"(expected one of {', '.join(CORPUS_OPERATIONS)})"
        )
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if not 0.0 <= corrupt_rate <= 1.0:
        raise ValueError("corrupt_rate must be in [0, 1]")

    rng = random.Random(seed)
    schema = document_schema(n_sections)
    labels = sorted(schema.labels())
    items: List[Dict[str, Any]] = []
    for _ in range(n_items):
        items.append(_make_item(operation, schema, labels, rng))

    n_corrupt = int(n_items * corrupt_rate)
    if n_corrupt:
        for index in rng.sample(range(n_items), n_corrupt):
            item = dict(items[index])
            item["query"] = _CORRUPT_QUERY
            items[index] = item
    return schema_to_string(schema), items


#: Resample attempts before _make_item gives up on a seeded draw.  The
#: generators emit parser round-trippable output by construction, so one
#: draw should always suffice; the bound exists so a generator/printer
#: regression fails loudly instead of looping forever.
_MAX_RESAMPLES = 16


def _valid_query(text: str) -> bool:
    try:
        parse_query(text)
    except (ValueError, SyntaxError):
        return False
    return True


def _valid_data(text: str) -> bool:
    try:
        parse_data(text)
    except (ValueError, SyntaxError):
        return False
    return True


def _sampled(render, valid, rng: random.Random, what: str) -> str:
    """Draw, render, and parse-check; reject-and-resample on failure.

    Every clean corpus item must survive the same parse the pipeline
    applies, so generator output that doesn't round-trip is rejected
    here rather than surfacing later as phantom ``corpus_errors``.
    """
    for _ in range(_MAX_RESAMPLES):
        text = render(rng)
        if valid(text):
            return text
    raise RuntimeError(
        f"corpus generator produced {_MAX_RESAMPLES} consecutive "
        f"unparsable {what} items — generator/printer mismatch"
    )


def _make_item(
    operation: str, schema, labels: List[str], rng: random.Random
) -> Dict[str, Any]:
    def render_data(r: random.Random) -> str:
        return data_to_string(random_instance(schema, r, max_depth=6))

    def render_query(r: random.Random) -> str:
        return query_to_string(
            random_query(r, labels=labels, max_defs=2, max_arms=2)
        )

    if operation == "conforms":
        return {"data": _sampled(render_data, _valid_data, rng, "data")}
    query = _sampled(render_query, _valid_query, rng, "query")
    if operation == "evaluate":
        return {
            "query": query,
            "data": _sampled(render_data, _valid_data, rng, "data"),
            "limit": 16,
        }
    item: Dict[str, Any] = {"query": query}
    if operation == "infer":
        item["limit"] = 8
    return item


def corpus_to_ndjson(items: List[Dict[str, Any]]) -> str:
    """Render corpus items as the NDJSON ``repro batch --input`` reads."""
    return "".join(json.dumps(item) + "\n" for item in items)


def write_corpus(
    path: str,
    operation: str = "satisfiable",
    n_items: int = 1000,
    seed: int = 0,
    n_sections: int = 8,
    corrupt_rate: float = 0.0,
    schema_path: Optional[str] = None,
) -> Tuple[str, List[Dict[str, Any]]]:
    """Write an NDJSON corpus (and optionally its schema) to disk."""
    schema_text, items = batch_corpus(
        operation=operation,
        n_items=n_items,
        seed=seed,
        n_sections=n_sections,
        corrupt_rate=corrupt_rate,
    )
    with open(path, "w") as handle:
        handle.write(corpus_to_ndjson(items))
    if schema_path is not None:
        with open(schema_path, "w") as handle:
            handle.write(schema_text + "\n")
    return schema_text, items
