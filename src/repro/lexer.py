"""Shared tokenizer for the Table-1 textual grammars.

The paper uses one surface syntax family for data graphs, schemas, and
patterns (Table 1); this lexer serves all three parsers.  Tokens:

====================  =========================================
kind                  examples
====================  =========================================
``IDENT``             ``paper``, ``T5``, ``&o4`` (referenceable)
``STRING``            ``"John"`` (double-quoted, ``\\`` escapes)
``NUMBER``            ``3``, ``3.14``
``ARROW``             ``->``
``OP``                ``. | * + ? ( ) { } [ ] , ; = $ <``
``EOF``               end of input
====================  =========================================

A standalone ``_`` lexes as ``IDENT`` with value ``"_"``; the regex parser
interprets it as the wildcard, so labels cannot literally be named ``_``
(the paper reserves it for the wildcard too).
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional, Union


class Token(NamedTuple):
    """A lexed token: ``kind`` is IDENT/STRING/NUMBER/ARROW/OP/EOF."""

    kind: str
    value: Union[str, int, float]
    position: int
    line: int
    column: int


class LexError(ValueError):
    """Raised on characters that cannot start a token."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<arrow>->)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<ident>&?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op>[.|*+?(){}\[\],;=$<])
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; ``#`` starts a comment running to end of line.

    Raises:
        LexError: on an unrecognized character, with line/column info.
    """
    tokens: List[Token] = []
    append = tokens.append
    position = 0
    line = 1
    line_start = 0
    # One finditer sweep; a gap between consecutive matches is exactly an
    # unlexable character (every token pattern is anchored by the gap check).
    for match in _TOKEN_RE.finditer(text):
        if match.start() != position:
            raise LexError(
                f"unexpected character {text[position]!r} at line {line}, "
                f"column {position - line_start + 1}"
            )
        group = match.lastgroup
        if group == "ident":
            append(Token("IDENT", match.group(), position, line, position - line_start + 1))
        elif group == "op":
            append(Token("OP", match.group(), position, line, position - line_start + 1))
        elif group == "ws":
            raw = match.group()
            if "\n" in raw:
                line += raw.count("\n")
                line_start = match.start() + raw.rfind("\n") + 1
        elif group == "arrow":
            append(Token("ARROW", "->", position, line, position - line_start + 1))
        elif group == "number":
            raw = match.group()
            value: Union[int, float] = float(raw) if "." in raw else int(raw)
            append(Token("NUMBER", value, position, line, position - line_start + 1))
        else:  # string
            raw = match.group()[1:-1]
            value = re.sub(
                r"\\(.)", lambda m: _ESCAPES.get(m.group(1), m.group(1)), raw
            )
            append(Token("STRING", value, position, line, position - line_start + 1))
        position = match.end()
    if position != len(text):
        raise LexError(
            f"unexpected character {text[position]!r} at line {line}, "
            f"column {position - line_start + 1}"
        )
    append(Token("EOF", "", position, line, position - line_start + 1))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 0) -> Token:
        """Return the token ``offset`` positions ahead (clamped to EOF)."""
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def match(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        """Consume and return the current token if it matches, else None."""
        token = self.current
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self.advance()

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        """Consume a token of the given kind (and value), or raise."""
        token = self.match(kind, value)
        if token is None:
            want = f"{kind} {value!r}" if value is not None else kind
            got = self.current
            raise SyntaxError(
                f"expected {want}, found {got.kind} {got.value!r} "
                f"at line {got.line}, column {got.column}"
            )
        return token

    def at_end(self) -> bool:
        return self.current.kind == "EOF"
