"""Executable NP-hardness witnesses: 3SAT and the Theorem 3.1 reduction."""

from .sat import Cnf, dpll, random_3sat
from .threesat import (
    assignment_to_instance,
    formula_to_query,
    formula_to_schema,
    instance_to_assignment,
    reduce_formula,
)

__all__ = [
    "Cnf",
    "assignment_to_instance",
    "dpll",
    "formula_to_query",
    "formula_to_schema",
    "instance_to_assignment",
    "random_3sat",
    "reduce_formula",
]
