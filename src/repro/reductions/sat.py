"""3SAT substrate: CNF formulas, random instances, and a DPLL solver.

The NP-completeness results of Theorem 3.1 are proved by reduction from
3SAT.  To make those proofs *executable* (and to benchmark the NP cells of
Table 2 on genuinely hard inputs), this module provides the source side of
the reduction: a CNF representation, a random-formula generator pinned at
the classic hard clause/variable ratio, and an independent DPLL solver
used as the ground-truth oracle.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: A literal: positive ints are variables, negative ints their negations.
Literal = int
#: A clause: a tuple of literals (disjunction).
Clause = Tuple[Literal, ...]


class Cnf:
    """A CNF formula over variables ``1..n_vars``."""

    def __init__(self, n_vars: int, clauses: Iterable[Clause]):
        self.n_vars = n_vars
        self.clauses: Tuple[Clause, ...] = tuple(tuple(c) for c in clauses)
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > n_vars:
                    raise ValueError(f"literal {literal} out of range")

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment ``var -> bool``."""
        for clause in self.clauses:
            if not any(
                assignment[abs(literal)] == (literal > 0) for literal in clause
            ):
                return False
        return True

    def __repr__(self) -> str:
        return f"Cnf(vars={self.n_vars}, clauses={len(self.clauses)})"


def random_3sat(
    n_vars: int,
    n_clauses: Optional[int] = None,
    rng: Optional[random.Random] = None,
    ratio: float = 4.26,
) -> Cnf:
    """A uniform random 3SAT formula.

    Defaults to the satisfiability phase-transition ratio of ~4.26
    clauses per variable, where random instances are empirically hardest.
    """
    rng = rng or random.Random()
    if n_clauses is None:
        n_clauses = max(1, round(ratio * n_vars))
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), min(3, n_vars))
        clause = tuple(
            variable if rng.random() < 0.5 else -variable for variable in variables
        )
        clauses.append(clause)
    return Cnf(n_vars, clauses)


def dpll(formula: Cnf) -> Optional[Dict[int, bool]]:
    """Solve a CNF formula; return a satisfying assignment or None.

    Classic DPLL with unit propagation and pure-literal elimination —
    deliberately simple (it is a *substrate*, the benchmarks' ground
    truth), but complete.
    """
    clauses = [frozenset(c) for c in formula.clauses]
    assignment: Dict[int, bool] = {}

    def solve(clauses: List[FrozenSet[int]], assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        clauses, assignment = _propagate(clauses, dict(assignment))
        if clauses is None:
            return None
        if not clauses:
            return _complete(assignment, formula.n_vars)
        variable = abs(next(iter(min(clauses, key=len))))
        for value in (True, False):
            result = solve(
                _assign(clauses, variable, value), {**assignment, variable: value}
            )
            if result is not None:
                return result
        return None

    return solve(clauses, assignment)


def _propagate(
    clauses: List[FrozenSet[int]], assignment: Dict[int, bool]
) -> Tuple[Optional[List[FrozenSet[int]]], Dict[int, bool]]:
    changed = True
    while changed:
        changed = False
        # Unit propagation.
        for clause in clauses:
            if len(clause) == 1:
                literal = next(iter(clause))
                assignment[abs(literal)] = literal > 0
                clauses = _assign(clauses, abs(literal), literal > 0)
                if any(len(c) == 0 for c in clauses):
                    return None, assignment
                changed = True
                break
        if changed:
            continue
        # Pure literals.
        literals: Set[int] = set()
        for clause in clauses:
            literals |= clause
        for literal in sorted(literals, key=abs):
            if -literal not in literals:
                assignment[abs(literal)] = literal > 0
                clauses = _assign(clauses, abs(literal), literal > 0)
                changed = True
                break
    if any(len(clause) == 0 for clause in clauses):
        return None, assignment
    return clauses, assignment


def _assign(
    clauses: List[FrozenSet[int]], variable: int, value: bool
) -> List[FrozenSet[int]]:
    satisfied = variable if value else -variable
    falsified = -satisfied
    result = []
    for clause in clauses:
        if satisfied in clause:
            continue
        if falsified in clause:
            clause = clause - {falsified}
        result.append(clause)
    return result


def _complete(assignment: Dict[int, bool], n_vars: int) -> Dict[int, bool]:
    return {
        variable: assignment.get(variable, False)
        for variable in range(1, n_vars + 1)
    }
