"""The 3SAT reduction behind Theorem 3.1, as executable code.

Given a 3CNF formula over variables ``v1..vn`` and clauses ``c1..cm``, we
build a schema and a query such that the query is *type correct*
(satisfiable, problem (1) of Section 3) iff the formula is satisfiable:

* schema (unordered, untagged)::

      ROOT = { (v1 -> V1_T | v1 -> V1_F) . ... . (vn -> Vn_T | vn -> Vn_F) }
      Vi_T = { (cj1 -> SAT | cj2 -> SAT | ...)* }   # clauses true under vi=1
      Vi_F = { ... }                                # clauses true under vi=0
      SAT  = string

  a conforming instance picks, for every variable, the true or the false
  type — i.e. a truth assignment — and may expose a ``cj`` edge exactly
  for the clauses that assignment satisfies;

* query::

      SELECT WHERE Root = { _.c1 -> X1, _.c2 -> X2, ..., _.cm -> Xm }

  which asks for a witness edge per clause.

The reduction exercises exactly the hard combination the paper points at:
untagged union types + unordered data + path expressions.  Certificates
round-trip: a satisfying truth assignment yields a conforming witness
instance on which the query matches (:func:`assignment_to_instance`), and
the satisfiability checker's verdict is cross-checked against the DPLL
solver in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..automata.syntax import Regex, Sym, alt, concat, star
from ..data.model import DataGraph, Edge, Node, NodeKind
from ..query.model import PatternArm, PatternDef, PatternKind, Query
from ..schema.model import Schema, TypeDef, TypeKind
from ..automata.syntax import ANY
from .sat import Cnf


def variable_label(variable: int) -> str:
    return f"v{variable}"


def clause_label(index: int) -> str:
    return f"c{index + 1}"


def formula_to_schema(formula: Cnf) -> Schema:
    """The schema side of the reduction (unordered, untagged)."""
    factors: List[Regex] = []
    types: List[TypeDef] = []
    for variable in range(1, formula.n_vars + 1):
        true_tid = f"V{variable}_T"
        false_tid = f"V{variable}_F"
        label = variable_label(variable)
        factors.append(alt(Sym((label, true_tid)), Sym((label, false_tid))))
        for tid, polarity in ((true_tid, True), (false_tid, False)):
            satisfied = [
                clause_label(index)
                for index, clause in enumerate(formula.clauses)
                if any(
                    abs(literal) == variable and (literal > 0) == polarity
                    for literal in clause
                )
            ]
            if satisfied:
                body = star(alt(*(Sym((c, "SAT")) for c in satisfied)))
            else:
                from ..automata.syntax import EPSILON

                body = EPSILON
            types.append(TypeDef(tid, TypeKind.UNORDERED, regex=body))
    root = TypeDef("ROOT", TypeKind.UNORDERED, regex=concat(*factors))
    return Schema([root] + types + [TypeDef("SAT", TypeKind.ATOMIC, atomic="string")])


def formula_to_query(formula: Cnf) -> Query:
    """The query side of the reduction: one ``_.cj`` arm per clause."""
    arms = [
        PatternArm(concat(ANY, Sym(clause_label(index))), f"X{index + 1}")
        for index in range(len(formula.clauses))
    ]
    root = PatternDef("Root", PatternKind.UNORDERED, arms=arms)
    return Query([], [root])


def reduce_formula(formula: Cnf) -> Tuple[Schema, Query]:
    """The full reduction: (schema, query) with satisfiability ⟺ SAT."""
    return formula_to_schema(formula), formula_to_query(formula)


def assignment_to_instance(formula: Cnf, assignment: Dict[int, bool]) -> DataGraph:
    """The witness instance encoding a truth assignment.

    The instance conforms to :func:`formula_to_schema`'s output, and the
    reduction query matches on it iff the assignment satisfies the
    formula (all clause edges are exposed on the chosen polarity nodes).
    """
    nodes: List[Node] = []
    root_edges: List[Edge] = []
    leaf_counter = [0]

    def leaf() -> str:
        leaf_counter[0] += 1
        oid = f"sat{leaf_counter[0]}"
        nodes.append(Node(oid, NodeKind.ATOMIC, value="yes"))
        return oid

    for variable in range(1, formula.n_vars + 1):
        polarity = assignment[variable]
        satisfied = [
            clause_label(index)
            for index, clause in enumerate(formula.clauses)
            if any(
                abs(literal) == variable and (literal > 0) == polarity
                for literal in clause
            )
        ]
        oid = f"n{variable}"
        edges = [Edge(label, leaf()) for label in satisfied]
        nodes.append(Node(oid, NodeKind.UNORDERED, edges=edges))
        root_edges.append(Edge(variable_label(variable), oid))
    root = Node("root", NodeKind.UNORDERED, edges=root_edges)
    return DataGraph([root] + nodes)


def instance_to_assignment(schema: Schema, graph: DataGraph) -> Dict[int, bool]:
    """Read the truth assignment off a conforming witness instance."""
    from ..schema.conformance import find_type_assignment

    typing = find_type_assignment(graph, schema)
    if typing is None:
        raise ValueError("graph does not conform to the reduction schema")
    assignment: Dict[int, bool] = {}
    for edge in graph.root_node.edges:
        tid = typing[edge.target]
        variable = int(tid[1:].split("_")[0])
        assignment[variable] = tid.endswith("_T")
    return assignment
