"""Evaluation of selection queries on data graphs (Definitions 2.2–2.3).

A *binding* maps node variables to oids, label variables to labels, and
value variables to atomic values, subject to:

1. the root variable binds to the root node;
2. referenceable variables bind to referenceable nodes;
3. constant-value patterns match atomic nodes with that value;
4. value-variable patterns bind the variable to the node's atomic value;
5. collection patterns are *satisfied* at the bound node per Definition
   2.2: each arm ``R -> Y`` is witnessed by a path from the node to the
   binding of ``Y`` whose label word is in ``lang(R)``; for ordered
   patterns there must be a choice of witness first edges whose child
   positions strictly increase along every constraint in
   :meth:`~repro.query.model.PatternDef.order_pairs` (the full arm-list
   chain by default, the declared pairs for partially ordered patterns) —
   arms not related by any constraint may share a first edge — while
   unordered patterns use set semantics and may overlap arbitrarily.

Ordered patterns match only ordered nodes and unordered patterns only
unordered nodes, mirroring the kind split in Definition 2.2.

Path search runs the arm's regex NFA over the graph with memoization, so
regular path expressions (including ``_*``) terminate on cyclic data.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..automata.nfa import NFA
from ..automata.syntax import Regex
from ..data.model import AtomicValue, DataGraph
from ..engine import Engine, get_default_engine
from .model import LabelVar, PatternDef, PatternKind, Query, QueryError

#: A binding: node vars map to oids, ``$``-prefixed label/value variables
#: map to labels and atomic values respectively.
Binding = Dict[str, Union[str, AtomicValue]]


class _PathMatcher:
    """Finds regex-path matches from graph nodes, memoized per regex."""

    def __init__(self, graph: DataGraph, engine: Optional[Engine] = None):
        self.graph = graph
        self.engine = engine if engine is not None else get_default_engine()
        self.alphabet = frozenset(graph.labels())
        # cache[(regex, oid)] = mapping first-edge-index -> set of end oids
        self._cache: Dict[Tuple[Regex, str], Dict[int, FrozenSet[str]]] = {}

    def _nfa(self, regex: Regex) -> NFA:
        return self.engine.thompson(regex, self.alphabet | frozenset(regex.symbols()))

    def matches(self, regex: Regex, oid: str) -> Dict[int, FrozenSet[str]]:
        """All ways a path from ``oid`` matches ``regex``.

        Returns a mapping from the first edge's child position to the set
        of reachable end nodes (the possible bindings of the arm's target
        through that first edge).
        """
        key = (regex, oid)
        if key in self._cache:
            return self._cache[key]
        nfa = self._nfa(regex)
        start = nfa.initial_states()
        result: Dict[int, Set[str]] = {}
        node = self.graph.node(oid)
        for index, edge in enumerate(node.edges):
            after_first = nfa.step(start, edge.label)
            if not after_first:
                continue
            ends = self._closure_ends(nfa, edge.target, after_first)
            if ends:
                result[index] = ends
        frozen = {index: frozenset(ends) for index, ends in result.items()}
        self._cache[key] = frozen
        return frozen

    def _closure_ends(
        self, nfa: NFA, oid: str, states: FrozenSet[int]
    ) -> Set[str]:
        """Nodes reachable from (oid, states) at an accepting state."""
        ends: Set[str] = set()
        seen: Set[Tuple[str, FrozenSet[int]]] = set()
        stack: List[Tuple[str, FrozenSet[int]]] = [(oid, states)]
        while stack:
            current, current_states = stack.pop()
            if (current, current_states) in seen:
                continue
            seen.add((current, current_states))
            if current_states & nfa.accepting:
                ends.add(current)
            for edge in self.graph.node(current).edges:
                nxt = nfa.step(current_states, edge.label)
                if nxt:
                    stack.append((edge.target, nxt))
        return ends


def evaluate(
    query: Query,
    graph: DataGraph,
    limit: Optional[int] = None,
    engine: Optional[Engine] = None,
) -> List[Binding]:
    """Evaluate ``query`` on ``graph``; return the projected bindings.

    The result lists the distinct SELECT-projected bindings; each entry
    maps every selected variable to its value.  For boolean queries the
    result is ``[{}]`` when the query holds and ``[]`` otherwise.

    Args:
        limit: stop after this many distinct projected bindings (useful for
            existence checks and large result spaces).
    """
    known = (
        set(query.node_vars()) | set(query.label_vars()) | set(query.value_vars())
    )
    unbound = [name for name in query.select if name not in known]
    if unbound:
        # Reachable only for queries built with validate=False; validated
        # queries reject such SELECT clauses at construction time.
        raise QueryError(
            f"SELECT references variables never bound by the patterns: "
            f"{sorted(set(unbound))}"
        )
    results: List[Binding] = []
    seen: Set[Tuple] = set()
    for binding in iterate_bindings(query, graph, engine):
        projected = {name: binding[name] for name in query.select}
        key = tuple(sorted(projected.items()))
        if key in seen:
            continue
        seen.add(key)
        results.append(projected)
        if limit is not None and len(results) >= limit:
            break
    return results


def satisfies(
    query: Query, graph: DataGraph, engine: Optional[Engine] = None
) -> bool:
    """True if the query has at least one binding on the graph."""
    for _binding in iterate_bindings(query, graph, engine):
        return True
    return False


def iterate_bindings(
    query: Query, graph: DataGraph, engine: Optional[Engine] = None
) -> Iterator[Binding]:
    """Yield all full bindings of the query on the graph (Definition 2.3).

    Bindings include every node, label, and value variable.  The same full
    binding may be yielded once per distinct witness-path combination; use
    :func:`evaluate` for deduplicated, projected results.
    """
    matcher = _PathMatcher(graph, engine)
    ordered_defs = _definition_order(query)
    root_binding: Binding = {query.root_var: graph.root}
    if query.root_var.startswith("&") and not graph.root_node.is_referenceable:
        return
    yield from _extend(query, graph, matcher, ordered_defs, 0, root_binding)


def _definition_order(query: Query) -> List[PatternDef]:
    """Order definitions so each variable is bound before its definition.

    The root's definition comes first; every other definition follows some
    definition whose arms reference its variable (connectedness guarantees
    such an order exists).
    """
    remaining = {p.var: p for p in query.patterns}
    bound = {query.root_var}
    order: List[PatternDef] = []
    if query.root_var in remaining:
        order.append(remaining.pop(query.root_var))
        bound.update(order[-1].targets())
    progress = True
    while remaining and progress:
        progress = False
        for var in list(remaining):
            if var in bound:
                pattern = remaining.pop(var)
                order.append(pattern)
                bound.update(pattern.targets())
                progress = True
    if remaining:
        raise ValueError(
            f"patterns not reachable from the root: {sorted(remaining)}"
        )
    return order


def _extend(
    query: Query,
    graph: DataGraph,
    matcher: _PathMatcher,
    defs: List[PatternDef],
    index: int,
    binding: Binding,
) -> Iterator[Binding]:
    if index == len(defs):
        yield dict(binding)
        return
    pattern = defs[index]
    oid = binding[pattern.var]
    node = graph.node(oid)

    if pattern.kind is PatternKind.VALUE:
        if node.is_atomic and node.value == pattern.value:
            yield from _extend(query, graph, matcher, defs, index + 1, binding)
        return

    if pattern.kind is PatternKind.VALUE_VAR:
        if not node.is_atomic:
            return
        name = "$" + pattern.value_var
        if name in binding and binding[name] != node.value:
            return
        had = name in binding
        binding[name] = node.value
        yield from _extend(query, graph, matcher, defs, index + 1, binding)
        if not had:
            del binding[name]
        return

    # Collection pattern: kind must match the node's kind.
    if pattern.is_ordered != node.is_ordered or node.is_atomic:
        return

    yield from _match_arms(query, graph, matcher, defs, index, binding, pattern, oid)


def _match_arms(
    query: Query,
    graph: DataGraph,
    matcher: _PathMatcher,
    defs: List[PatternDef],
    index: int,
    binding: Binding,
    pattern: PatternDef,
    oid: str,
) -> Iterator[Binding]:
    node = graph.node(oid)
    # Per arm: list of (first_edge_index, end_oid) options.
    options: List[List[Tuple[int, str, Optional[Tuple[str, str]]]]] = []
    for arm in pattern.arms:
        arm_options: List[Tuple[int, str, Optional[Tuple[str, str]]]] = []
        if arm.is_label_var:
            name = "$" + arm.path.name
            bound_label = binding.get(name)
            for edge_index, edge in enumerate(node.edges):
                if bound_label is not None and edge.label != bound_label:
                    continue
                arm_options.append((edge_index, edge.target, (name, edge.label)))
        else:
            for edge_index, ends in matcher.matches(arm.path, oid).items():
                for end in sorted(ends):
                    arm_options.append((edge_index, end, None))
        if not arm_options:
            return
        options.append(arm_options)

    order_pairs = pattern.order_pairs()
    for combo in itertools.product(*options):
        if pattern.is_ordered:
            positions = [edge_index for edge_index, _end, _lv in combo]
            # First edges must respect the (partial) order: strictly
            # increasing along every constraint; unconstrained arm pairs
            # may come in any order or even share a first edge.
            if any(positions[i] >= positions[j] for i, j in order_pairs):
                continue
        new_node_bindings: List[Tuple[str, str]] = []
        new_label_bindings: List[Tuple[str, str]] = []
        feasible = True
        staged: Dict[str, Union[str, AtomicValue]] = {}
        for arm, (edge_index, end, label_binding) in zip(pattern.arms, combo):
            target = arm.target
            existing = binding.get(target, staged.get(target))
            if existing is not None:
                if existing != end:
                    feasible = False
                    break
            else:
                if target.startswith("&") and not graph.node(end).is_referenceable:
                    feasible = False
                    break
                staged[target] = end
                new_node_bindings.append((target, end))
            if label_binding is not None:
                name, label = label_binding
                existing_label = binding.get(name, staged.get(name))
                if existing_label is not None:
                    if existing_label != label:
                        feasible = False
                        break
                else:
                    staged[name] = label
                    new_label_bindings.append((name, label))
        if not feasible:
            continue
        binding.update(staged)
        yield from _extend(query, graph, matcher, defs, index + 1, binding)
        for name, _value in new_node_bindings + new_label_bindings:
            del binding[name]
