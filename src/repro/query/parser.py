"""Parser and printer for the query syntax (Table 1 plus SELECT/WHERE).

Grammar::

    Query   ::= SELECT [Var , ... , Var] WHERE PatDef ; ... ; PatDef
    PatDef  ::= nodeVar = value | nodeVar = $valueVar
              | nodeVar = { P } | nodeVar = [ P ]
    P       ::= L -> nodeVar , ... , L -> nodeVar
    L       ::= R | $labelVar

``R`` is a regular path expression over labels with the ``_`` wildcard.
An empty SELECT clause (``SELECT WHERE ...``) denotes a boolean query.

Example (the Abiteboul/Vianu query of Section 2)::

    SELECT X1
    WHERE Root = [paper -> X1];
          X1 = [author.name.(_*) -> X2, author.name.(_*) -> X3];
          X2 = "Vianu"; X3 = "Abiteboul"
"""

from __future__ import annotations

from typing import List, Optional

from ..automata.parser import parse_regex, regex_to_string
from ..automata.syntax import Regex, sym
from ..lexer import TokenStream
from .model import LabelVar, PatternArm, PatternDef, PatternKind, Query


def _path_atom(label: str, target: Optional[str]) -> Regex:
    if target is not None:
        raise SyntaxError("arrow atoms are not allowed in path expressions")
    return sym(label)


def parse_query(text: str, validate: bool = True) -> Query:
    """Parse a selection query."""
    stream = TokenStream(text)
    stream.expect("IDENT", "SELECT")
    select: List[str] = []
    while True:
        if stream.match("OP", "$"):
            select.append("$" + str(stream.expect("IDENT").value))
        elif stream.current.kind == "IDENT" and stream.current.value != "WHERE":
            select.append(str(stream.advance().value))
        else:
            break
        if stream.match("OP", ",") is None:
            break
    stream.expect("IDENT", "WHERE")
    patterns: List[PatternDef] = []
    while not stream.at_end():
        patterns.append(_parse_pattern_def(stream))
        if stream.match("OP", ";") is None:
            break
    if not stream.at_end():
        token = stream.current
        raise SyntaxError(
            f"unexpected {token.kind} {token.value!r} at line {token.line}, "
            f"column {token.column}"
        )
    return Query(select, patterns, validate=validate)


def _parse_pattern_def(stream: TokenStream) -> PatternDef:
    var = str(stream.expect("IDENT").value)
    stream.expect("OP", "=")
    if stream.match("OP", "{"):
        arms = _parse_arms(stream, "}")
        return PatternDef(var, PatternKind.UNORDERED, arms=arms)
    if stream.match("OP", "["):
        arms, partial = _parse_ordered_arms(stream)
        return PatternDef(var, PatternKind.ORDERED, arms=arms, partial_order=partial)
    if stream.match("OP", "$"):
        name = str(stream.expect("IDENT").value)
        return PatternDef(var, PatternKind.VALUE_VAR, value_var=name)
    token = stream.current
    if token.kind in ("STRING", "NUMBER"):
        stream.advance()
        return PatternDef(var, PatternKind.VALUE, value=token.value)
    raise SyntaxError(
        f"expected pattern body for {var!r}, found {token.kind} "
        f"{token.value!r} at line {token.line}, column {token.column}"
    )


def _parse_ordered_arms(stream):
    """Arms of an ordered pattern, optionally followed by a partial order:
    ``[a -> X, b -> Y ; 1 < 0]`` constrains arm 1's first edge before arm
    0's; with the suffix present, only the listed pairs are ordered."""
    arms: List[PatternArm] = []
    partial = None
    if stream.match("OP", "]"):
        return arms, partial
    while True:
        if stream.match("OP", ";"):
            partial = _parse_order_constraints(stream)
            stream.expect("OP", "]")
            return arms, partial
        if stream.match("OP", "$"):
            name = str(stream.expect("IDENT").value)
            path = LabelVar(name)
        else:
            path = parse_regex(stream, _path_atom, allow_arrow=False, allow_wildcard=True)
        stream.expect("ARROW")
        target = str(stream.expect("IDENT").value)
        arms.append(PatternArm(path, target))
        if stream.match("OP", "]"):
            return arms, partial
        if stream.current.kind == "OP" and stream.current.value == ";":
            continue  # the loop head consumes ';' and parses constraints
        stream.expect("OP", ",")


def _parse_order_constraints(stream):
    pairs = []
    if stream.current.kind == "OP" and stream.current.value == "]":
        return tuple(pairs)  # '[...;]': explicitly unconstrained
    while True:
        left = stream.expect("NUMBER")
        stream.expect("OP", "<")
        right = stream.expect("NUMBER")
        pairs.append((int(left.value), int(right.value)))
        if stream.match("OP", ",") is None:
            return tuple(pairs)


def _parse_arms(stream: TokenStream, closing: str) -> List[PatternArm]:
    arms: List[PatternArm] = []
    if stream.match("OP", closing):
        return arms
    while True:
        if stream.match("OP", "$"):
            name = str(stream.expect("IDENT").value)
            path = LabelVar(name)
        else:
            path = parse_regex(stream, _path_atom, allow_arrow=False, allow_wildcard=True)
        stream.expect("ARROW")
        target = str(stream.expect("IDENT").value)
        arms.append(PatternArm(path, target))
        if stream.match("OP", closing):
            return arms
        stream.expect("OP", ",")


def query_to_string(query: Query, indent: bool = True) -> str:
    """Render a query (parse round-trips)."""
    select = ", ".join(query.select)
    separator = ";\n      " if indent else "; "
    body = separator.join(_render_pattern(p) for p in query.patterns)
    space = "\n" if indent else " "
    select_part = f"SELECT {select}" if select else "SELECT"
    return f"{select_part}{space}WHERE {body}"


def _render_pattern(pattern: PatternDef) -> str:
    if pattern.kind is PatternKind.VALUE:
        return f"{pattern.var} = {_render_value(pattern.value)}"
    if pattern.kind is PatternKind.VALUE_VAR:
        return f"{pattern.var} = ${pattern.value_var}"
    open_, close = ("[", "]") if pattern.is_ordered else ("{", "}")
    arms = ", ".join(_render_arm(arm) for arm in pattern.arms)
    if pattern.partial_order is not None:
        constraints = ", ".join(f"{i} < {j}" for i, j in pattern.partial_order)
        suffix = f" ; {constraints}" if constraints else " ;"
        return f"{pattern.var} = {open_}{arms}{suffix}{close}"
    return f"{pattern.var} = {open_}{arms}{close}"


def _render_arm(arm: PatternArm) -> str:
    if arm.is_label_var:
        return f"${arm.path.name} -> {arm.target}"
    return f"{regex_to_string(arm.path)} -> {arm.target}"


def _render_value(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)
