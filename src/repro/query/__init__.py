"""Patterns and selection queries (Section 2): model, syntax, evaluation.

Provides the query model and Table-2 classifiers (:class:`Query`,
:class:`PatternDef`), the textual syntax (:func:`parse_query` /
:func:`query_to_string`), and full evaluation semantics per Definition 2.3
(:func:`evaluate`, :func:`satisfies`, :func:`iterate_bindings`).
"""

from .model import (
    LabelVar,
    PatternArm,
    PatternDef,
    PatternKind,
    Query,
    QueryError,
)
from .parser import parse_query, query_to_string
from .eval import Binding, evaluate, iterate_bindings, satisfies
from .xmlql import XmlqlError, parse_xmlql

__all__ = [
    "Binding",
    "LabelVar",
    "PatternArm",
    "PatternDef",
    "PatternKind",
    "Query",
    "QueryError",
    "XmlqlError",
    "evaluate",
    "iterate_bindings",
    "parse_query",
    "parse_xmlql",
    "query_to_string",
    "satisfies",
]
