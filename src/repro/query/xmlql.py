"""An XML-QL front end (Section 2's "relating our syntax to actual XML
query languages").

The paper shows its running query in XML-QL::

    WHERE <paper> $X1 </paper> IN Root,
          <author[$i].name.*> Vianu </> IN $X1,
          <author[$j].name.*> Abiteboul </> IN $X1,
          $i < $j
    CONSTRUCT <result> $X1 </result>

and notes that translating XML-QL patterns into the paper's pattern
notation is straightforward.  :func:`parse_xmlql` implements that
translation for a representative subset:

* element patterns ``<path> content </...>`` where ``path`` is a regular
  expression over element names (``.`` concatenation, ``|`` alternation,
  postfix ``*``/``+``/``?``, a bare ``*`` step meaning "any path" — the
  XML-QL idiom the paper writes as ``-*``) with an optional positional
  variable ``[$i]`` on the first step;
* content: a node variable ``$X``, a string/number constant (the bound
  element's value), or empty;
* ``IN Root`` / ``IN $X`` source clauses;
* order constraints ``$i < $j`` between positional variables;
* ``CONSTRUCT`` with variables, which become the SELECT clause.

Translation choices (documented per the paper's remarks):

* clauses over the same source become arms of one *ordered* pattern
  definition; arms with positional variables are sorted by the order
  constraints (which must determine a total order among them — the paper
  restricts attention to total orders), and arms without positional
  variables keep their textual order *after* the constrained ones only if
  textual order is consistent; mixing constrained and unconstrained arms
  on one source is rejected to avoid silently guessing;
* constants in content become fresh value-constant variables, exactly as
  the paper describes its own notation.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..automata.parser import parse_regex_string
from ..automata.syntax import ANY, Regex, concat, star
from ..data.model import AtomicValue
from .model import PatternArm, PatternDef, PatternKind, Query


class XmlqlError(SyntaxError):
    """Raised on XML-QL input outside the supported subset."""


class _Clause(NamedTuple):
    source: str  # "Root" or a node variable name
    path: Regex
    position_var: Optional[str]  # positional variable name, without "$"
    target: str  # node variable bound to the path's end
    value: Optional[AtomicValue]  # constant content, if any
    order: int  # textual order of appearance


_CLAUSE_RE = re.compile(
    r"<\s*(?P<path>[^>]+?)\s*>"
    r"\s*(?P<content>[^<]*?)\s*"
    r"</[^>]*>\s*IN\s+(?P<source>Root|\$[A-Za-z_][A-Za-z0-9_]*)",
    re.DOTALL,
)
_POSITION_RE = re.compile(r"\[\$([A-Za-z_][A-Za-z0-9_]*)\]")
_ORDER_RE = re.compile(
    r"\$(?P<left>[A-Za-z_][A-Za-z0-9_]*)\s*<\s*\$(?P<right>[A-Za-z_][A-Za-z0-9_]*)"
)
_CONSTRUCT_VAR_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


def parse_xmlql(text: str) -> Query:
    """Translate an XML-QL query (subset) into a :class:`Query`."""
    where, construct = _split(text)
    clauses, orders = _parse_where(where)
    select = _parse_construct(construct)
    return _translate(clauses, orders, select)


def _split(text: str) -> Tuple[str, str]:
    match = re.search(r"\bWHERE\b", text)
    if match is None:
        raise XmlqlError("XML-QL queries start with WHERE")
    rest = text[match.end():]
    construct_match = re.search(r"\bCONSTRUCT\b", rest)
    if construct_match is None:
        return rest, ""
    return rest[: construct_match.start()], rest[construct_match.end():]


def _parse_where(text: str) -> Tuple[List[_Clause], List[Tuple[str, str]]]:
    clauses: List[_Clause] = []
    orders: List[Tuple[str, str]] = []
    fresh = itertools.count(1)
    consumed_spans: List[Tuple[int, int]] = []
    for order_index, match in enumerate(_CLAUSE_RE.finditer(text)):
        consumed_spans.append(match.span())
        path_text = match.group("path").strip()
        # A positional variable may annotate a step: author[$i].name.*
        position: Optional[str] = None
        position_matches = _POSITION_RE.findall(path_text)
        if len(position_matches) > 1:
            raise XmlqlError(
                f"at most one positional variable per clause: {path_text!r}"
            )
        if position_matches:
            position = position_matches[0]
            path_text = _POSITION_RE.sub("", path_text)
        regex = _parse_path(path_text)
        content = match.group("content").strip()
        value: Optional[AtomicValue] = None
        if content.startswith("$"):
            target = content[1:]
        elif content:
            target = f"_c{next(fresh)}"
            value = _parse_constant(content)
        else:
            target = f"_e{next(fresh)}"
        source = match.group("source")
        source_var = source[1:] if source.startswith("$") else source
        clauses.append(
            _Clause(source_var, regex, position, target, value, order_index)
        )
    if not clauses:
        raise XmlqlError("no element clauses found in WHERE")
    remainder = text
    for start, end in reversed(consumed_spans):
        remainder = remainder[:start] + remainder[end:]
    for match in _ORDER_RE.finditer(remainder):
        orders.append((match.group("left"), match.group("right")))
    leftovers = _ORDER_RE.sub("", remainder).replace(",", "").strip()
    if leftovers:
        raise XmlqlError(f"unsupported XML-QL constructs: {leftovers[:60]!r}")
    return clauses, orders


def _parse_path(text: str) -> Regex:
    """Parse an XML-QL path: names, '.', '|', postfix operators, '*' step."""
    # A bare '*' step means "any path" (the paper's -*): turn standalone
    # '*' atoms into (_*) before reusing the regular path parser.
    rewritten = re.sub(r"(?<![\w)*+?])\*", "(_*)", text)
    try:
        return parse_regex_string(rewritten)
    except SyntaxError as error:
        raise XmlqlError(f"bad XML-QL path {text!r}: {error}") from error


def _parse_constant(text: str) -> AtomicValue:
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text  # bare word: string constant (as in the paper's example)


def _parse_construct(text: str) -> List[str]:
    seen: Dict[str, None] = {}
    for match in _CONSTRUCT_VAR_RE.finditer(text):
        seen.setdefault(match.group(1))
    return list(seen)


def _translate(
    clauses: List[_Clause],
    orders: List[Tuple[str, str]],
    select: List[str],
) -> Query:
    by_source: Dict[str, List[_Clause]] = {}
    source_order: List[str] = []
    for clause in clauses:
        if clause.source not in by_source:
            by_source[clause.source] = []
            source_order.append(clause.source)
        by_source[clause.source].append(clause)
    if "Root" not in by_source:
        raise XmlqlError("at least one clause must be rooted at Root")

    patterns: List[PatternDef] = []
    value_defs: List[PatternDef] = []
    for source in source_order:
        group = sorted(by_source[source], key=lambda c: c.order)
        arms = [PatternArm(clause.path, clause.target) for clause in group]
        partial = _order_constraints(group, orders)
        patterns.append(
            PatternDef(source, PatternKind.ORDERED, arms=arms, partial_order=partial)
        )
        for clause in group:
            if clause.value is not None:
                value_defs.append(
                    PatternDef(clause.target, PatternKind.VALUE, value=clause.value)
                )
    # Root definition must come first.
    patterns.sort(key=lambda p: p.var != "Root")
    return Query(select, patterns + value_defs)


def _order_constraints(
    group: List[_Clause], orders: List[Tuple[str, str]]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Translate ``$i < $j`` constraints into arm-index order pairs.

    Clauses without positional variables follow XML-QL's document-order
    reading only if *no* clause of the group is positional; as soon as
    positional variables appear, exactly the declared constraints apply
    (a genuine partial order — the paper's Section 2 remark).
    """
    positioned = {c.position_var: index for index, c in enumerate(group) if c.position_var}
    if not positioned:
        return None  # plain total (textual/document) order
    pairs = []
    for left, right in orders:
        if left in positioned and right in positioned:
            pairs.append((positioned[left], positioned[right]))
    return tuple(pairs)
