"""Patterns and selection queries (Section 2, Table 1).

A selection query is ``SELECT vars WHERE patterndefs``.  Each pattern
definition is one of::

    X = value          # constant atomic value
    X = $v             # value variable
    X = { P }          # unordered pattern
    X = [ P ]          # ordered pattern

where ``P`` is a list of arms ``L -> Y`` and each ``L`` is a regular path
expression over labels (wildcard ``_`` allowed) or a label variable ``$l``.
The first defined node variable is the *root variable*.  Node variables
prefixed with ``&`` are referenceable and may be shared; other node
variables may occur at most once on right-hand sides.

The module also implements the query classifiers of Section 3 that index
Table 2: projection-free, constant labels, constant suffix, join-free and
bounded joins.
"""

from __future__ import annotations

import enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..automata.syntax import Regex, last_symbols, literal_word
from ..data.model import AtomicValue


class LabelVar(NamedTuple):
    """A label variable ``$name`` used in edge position."""

    name: str


#: An arm's path: either a regular path expression or a label variable.
Path = Union[Regex, LabelVar]


class PatternArm(NamedTuple):
    """One arm ``L -> Y`` of a collection pattern."""

    path: Path
    target: str

    @property
    def is_label_var(self) -> bool:
        return isinstance(self.path, LabelVar)


class PatternKind(enum.Enum):
    """The four pattern-definition shapes of Table 1."""

    VALUE = "value"
    VALUE_VAR = "value_var"
    UNORDERED = "unordered"
    ORDERED = "ordered"


class PatternDef:
    """One pattern definition ``X = ...``.

    Ordered definitions may carry a *partial order* over their arms (the
    paper's Section 2 remark on XML-QL's ``i < j`` constraints):
    ``partial_order`` lists pairs ``(i, j)`` meaning arm ``i``'s witness
    path must take a strictly earlier first edge than arm ``j``'s;
    unconstrained arm pairs may come in any order and may even share their
    first edge (the unordered behaviour).  ``partial_order=None`` (the
    default) is the paper's main case: the total order of the arm list.
    """

    __slots__ = ("var", "kind", "value", "value_var", "arms", "partial_order")

    def __init__(
        self,
        var: str,
        kind: PatternKind,
        value: Optional[AtomicValue] = None,
        value_var: Optional[str] = None,
        arms: Sequence[PatternArm] = (),
        partial_order: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        if kind is PatternKind.VALUE and value is None:
            raise ValueError(f"pattern {var!r}: constant pattern needs a value")
        if kind is PatternKind.VALUE_VAR and value_var is None:
            raise ValueError(f"pattern {var!r}: value-variable pattern needs a name")
        if kind in (PatternKind.VALUE, PatternKind.VALUE_VAR) and arms:
            raise ValueError(f"pattern {var!r}: atomic patterns cannot have arms")
        for arm in arms:
            if isinstance(arm.path, Regex):
                if arm.path.nullable():
                    raise ValueError(
                        f"pattern {var!r}: path expression to {arm.target!r} "
                        "accepts the empty word; paths must be non-empty"
                    )
                if arm.path.is_empty_language():
                    raise ValueError(
                        f"pattern {var!r}: path expression to {arm.target!r} "
                        "denotes the empty language"
                    )
        if partial_order is not None:
            if kind is not PatternKind.ORDERED:
                raise ValueError(
                    f"pattern {var!r}: partial orders apply to ordered patterns"
                )
            n_arms = len(arms)
            for left, right in partial_order:
                if not (0 <= left < n_arms and 0 <= right < n_arms) or left == right:
                    raise ValueError(
                        f"pattern {var!r}: bad order constraint ({left}, {right})"
                    )
            if _order_has_cycle(len(arms), partial_order):
                raise ValueError(
                    f"pattern {var!r}: the order constraints contain a cycle"
                )
        self.var = var
        self.kind = kind
        self.value = value
        self.value_var = value_var
        self.arms = tuple(arms)
        self.partial_order = (
            tuple(sorted(set(map(tuple, partial_order))))
            if partial_order is not None
            else None
        )

    @property
    def is_collection(self) -> bool:
        return self.kind in (PatternKind.ORDERED, PatternKind.UNORDERED)

    @property
    def is_ordered(self) -> bool:
        return self.kind is PatternKind.ORDERED

    def order_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The effective first-edge order constraints.

        For plain ordered patterns this is the total order of the arm
        list; for partially ordered patterns, the declared pairs.
        """
        if self.kind is not PatternKind.ORDERED:
            return ()
        if self.partial_order is not None:
            return self.partial_order
        return tuple((i, i + 1) for i in range(len(self.arms) - 1))

    def targets(self) -> Tuple[str, ...]:
        return tuple(arm.target for arm in self.arms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternDef):
            return NotImplemented
        return (
            self.var == other.var
            and self.kind == other.kind
            and self.value == other.value
            and self.value_var == other.value_var
            and self.arms == other.arms
            and self.partial_order == other.partial_order
        )

    def __hash__(self) -> int:
        return hash(
            (self.var, self.kind, self.value, self.value_var, self.arms, self.partial_order)
        )

    def __repr__(self) -> str:
        return f"PatternDef({self.var!r}, {self.kind.value})"


def _order_has_cycle(n_arms: int, pairs: Sequence[Tuple[int, int]]) -> bool:
    adjacency: Dict[int, List[int]] = {}
    for left, right in pairs:
        adjacency.setdefault(left, []).append(right)
    state = [0] * n_arms  # 0 unvisited, 1 in progress, 2 done

    def visit(node: int) -> bool:
        if state[node] == 1:
            return True
        if state[node] == 2:
            return False
        state[node] = 1
        for successor in adjacency.get(node, []):
            if visit(successor):
                return True
        state[node] = 2
        return False

    return any(visit(node) for node in range(n_arms))


class QueryError(ValueError):
    """Raised when a query violates the well-formedness rules of Section 2."""


class Query:
    """A selection query ``SELECT select WHERE patterns``.

    An empty ``select`` denotes a boolean query (Section 3.2).

    Args:
        select: the projected variable names (node, value, or label
            variables; label variables keep their ``$`` prefix).
        patterns: the pattern definitions; the first variable is the root.
        validate: if True (default) enforce single definitions, non-empty
            paths, connectedness, and the referenceability rules.
    """

    __slots__ = ("select", "patterns")

    def __init__(
        self,
        select: Iterable[str],
        patterns: Iterable[PatternDef],
        validate: bool = True,
    ):
        self.select = tuple(select)
        self.patterns = tuple(patterns)
        if not self.patterns:
            raise QueryError("a query needs at least one pattern definition")
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def root_var(self) -> str:
        return self.patterns[0].var

    def definition(self, var: str) -> Optional[PatternDef]:
        """The definition of a node variable, or None if only referenced."""
        for pattern in self.patterns:
            if pattern.var == var:
                return pattern
        return None

    def node_vars(self) -> Tuple[str, ...]:
        """All node variables, defined or referenced, in first-seen order."""
        seen: Dict[str, None] = {}
        for pattern in self.patterns:
            seen.setdefault(pattern.var)
            for arm in pattern.arms:
                seen.setdefault(arm.target)
        return tuple(seen)

    def defined_vars(self) -> Tuple[str, ...]:
        return tuple(pattern.var for pattern in self.patterns)

    def label_vars(self) -> Tuple[str, ...]:
        """All label variables, in first-seen order (with ``$`` prefix)."""
        seen: Dict[str, None] = {}
        for pattern in self.patterns:
            for arm in pattern.arms:
                if arm.is_label_var:
                    seen.setdefault("$" + arm.path.name)
        return tuple(seen)

    def value_vars(self) -> Tuple[str, ...]:
        """All value variables, in first-seen order (with ``$`` prefix)."""
        seen: Dict[str, None] = {}
        for pattern in self.patterns:
            if pattern.kind is PatternKind.VALUE_VAR:
                seen.setdefault("$" + pattern.value_var)
        return tuple(seen)

    def reference_counts(self) -> Dict[str, int]:
        """How many times each node variable occurs on right-hand sides."""
        counts: Dict[str, int] = {}
        for pattern in self.patterns:
            for arm in pattern.arms:
                counts[arm.target] = counts.get(arm.target, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        defined: Set[str] = set()
        for pattern in self.patterns:
            if pattern.var in defined:
                raise QueryError(f"variable {pattern.var!r} defined more than once")
            defined.add(pattern.var)
        counts = self.reference_counts()
        for var, count in counts.items():
            if not var.startswith("&") and count > 1:
                raise QueryError(
                    f"non-referenceable variable {var!r} occurs {count} times "
                    "on right-hand sides"
                )
        root = self.root_var
        if not root.startswith("&") and counts.get(root, 0) > 0:
            raise QueryError(
                f"non-referenceable root variable {root!r} may not occur on "
                "right-hand sides"
            )
        self._check_connected()
        self._check_variable_sorts()
        self._check_select()

    def _check_connected(self) -> None:
        adjacency: Dict[str, List[str]] = {}
        for pattern in self.patterns:
            adjacency.setdefault(pattern.var, []).extend(pattern.targets())
        seen = {self.root_var}
        stack = [self.root_var]
        while stack:
            var = stack.pop()
            for target in adjacency.get(var, []):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        missing = set(self.node_vars()) - seen
        if missing:
            raise QueryError(
                f"pattern is not connected: root does not reach {sorted(missing)}"
            )

    def _check_variable_sorts(self) -> None:
        label_names = {name[1:] for name in self.label_vars()}
        value_names = {name[1:] for name in self.value_vars()}
        clash = label_names & value_names
        if clash:
            raise QueryError(
                f"variables used both as label and value variables: {sorted(clash)}"
            )

    def _check_select(self) -> None:
        known = (
            set(self.node_vars()) | set(self.label_vars()) | set(self.value_vars())
        )
        unknown = [name for name in self.select if name not in known]
        if unknown:
            raise QueryError(
                f"SELECT references variables never bound by the patterns: "
                f"{sorted(set(unknown))} (known: {sorted(known)})"
            )

    # ------------------------------------------------------------------
    # Classifiers (the Table-2 query restrictions)
    # ------------------------------------------------------------------

    def is_projection_free(self) -> bool:
        """True if every variable (of any sort) appears in SELECT."""
        selected = set(self.select)
        names = set(self.node_vars()) | set(self.label_vars()) | set(self.value_vars())
        return names <= selected

    def is_boolean(self) -> bool:
        """True for an empty SELECT clause."""
        return not self.select

    def is_constant_labels(self) -> bool:
        """True if every path is a constant label word and no label variables
        occur (the *constant labels* restriction)."""
        for pattern in self.patterns:
            for arm in pattern.arms:
                if arm.is_label_var:
                    return False
                if literal_word(arm.path) is None:
                    return False
        return True

    def is_constant_suffix(self) -> bool:
        """True if every path expression ends with a determined constant
        label (the *constant suffix* restriction ``R.l``)."""
        for pattern in self.patterns:
            for arm in pattern.arms:
                if arm.is_label_var:
                    return False
                suffix = last_symbols(arm.path)
                if suffix is None or len(suffix) != 1:
                    return False
        return True

    def node_join_vars(self) -> Tuple[str, ...]:
        """Node variables violating the join-free condition.

        A variable joins if it is referred to multiple times, or if it
        transitively refers to itself (a cycle through the pattern).
        """
        violations: Dict[str, None] = {}
        for var, count in self.reference_counts().items():
            if count > 1:
                violations.setdefault(var)
        adjacency: Dict[str, List[str]] = {}
        for pattern in self.patterns:
            adjacency.setdefault(pattern.var, []).extend(pattern.targets())
        for var in self.defined_vars():
            if self._reaches(adjacency, var, var):
                violations.setdefault(var)
        return tuple(violations)

    @staticmethod
    def _reaches(adjacency: Dict[str, List[str]], source: str, goal: str) -> bool:
        stack = list(adjacency.get(source, []))
        seen: Set[str] = set()
        while stack:
            var = stack.pop()
            if var == goal:
                return True
            if var in seen:
                continue
            seen.add(var)
            stack.extend(adjacency.get(var, []))
        return False

    def label_join_vars(self) -> Tuple[str, ...]:
        """Label variables used more than once (label joins)."""
        counts: Dict[str, int] = {}
        for pattern in self.patterns:
            for arm in pattern.arms:
                if arm.is_label_var:
                    counts[arm.path.name] = counts.get(arm.path.name, 0) + 1
        return tuple("$" + name for name, count in counts.items() if count > 1)

    def value_join_vars(self) -> Tuple[str, ...]:
        """Value variables used more than once (value joins)."""
        counts: Dict[str, int] = {}
        for pattern in self.patterns:
            if pattern.kind is PatternKind.VALUE_VAR:
                counts[pattern.value_var] = counts.get(pattern.value_var, 0) + 1
        return tuple("$" + name for name, count in counts.items() if count > 1)

    def join_width(self) -> int:
        """Number of variables violating the join-free conditions.

        This is the bound ``B`` of the *bounded joins* restriction: the
        satisfiability algorithm enumerates candidate types/labels for
        exactly these variables.
        """
        return len(self.node_join_vars()) + len(self.label_join_vars())

    def is_join_free(self) -> bool:
        """True if no node variable or label variable joins."""
        return self.join_width() == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.select == other.select and self.patterns == other.patterns

    def __hash__(self) -> int:
        return hash((self.select, self.patterns))

    def __repr__(self) -> str:
        return f"Query(select={list(self.select)}, patterns={len(self.patterns)})"
