"""Regular-language substrate: regex AST, NFA/DFA, products, bag languages.

This subpackage is self-contained (no dependency on the data/schema/query
layers) and implements everything the traces technique of the paper needs:
Thompson construction, subset construction, minimization, products,
containment, projections, regex extraction, and the unordered (bag)
language membership test of Section 2.
"""

from .syntax import (
    ANY,
    EMPTY,
    EPSILON,
    Alt,
    Any,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    Symbol,
    alt,
    concat,
    last_symbols,
    literal_word,
    opt,
    plus,
    star,
    sym,
    word,
)
from .nfa import EPS, NFA, thompson
from .dfa import DFA, determinize
from .ops import (
    concat_nfa,
    equivalent,
    intersect,
    is_subset,
    relabel,
    to_regex,
    trim,
    union,
)
from .bag import (
    bag_accepts,
    bag_accepts_regex,
    homogeneous_alternatives,
    homogeneous_symbol,
)
from .parser import parse_regex, parse_regex_string, regex_to_string

__all__ = [
    "ANY",
    "EMPTY",
    "EPSILON",
    "EPS",
    "Alt",
    "Any",
    "Concat",
    "DFA",
    "Empty",
    "Epsilon",
    "NFA",
    "Regex",
    "Star",
    "Sym",
    "Symbol",
    "alt",
    "bag_accepts",
    "bag_accepts_regex",
    "concat",
    "concat_nfa",
    "determinize",
    "equivalent",
    "homogeneous_alternatives",
    "homogeneous_symbol",
    "intersect",
    "is_subset",
    "last_symbols",
    "literal_word",
    "opt",
    "parse_regex",
    "parse_regex_string",
    "plus",
    "regex_to_string",
    "relabel",
    "star",
    "sym",
    "thompson",
    "to_regex",
    "trim",
    "union",
    "word",
]
