"""Unordered regular languages: bag membership in ``ulang(R)``.

Section 2 of the paper defines the *unordered language* of a regular
expression ``R`` as the set of finite bags ``b`` such that some ordering of
``b`` is a word of ``lang(R)``.  Deciding bag membership is NP-complete in
general (it degenerates to a sequencing problem), which is precisely where
the hardness of conformance and satisfiability for unordered types comes
from (Table 2, rightmost column).

This module provides:

* an exact decision procedure (:func:`bag_accepts`) via dynamic programming
  over sub-bags — exponential only in the number of *distinct* symbols of
  the bag times their multiplicities (``prod(count_i + 1)`` sub-bags), which
  is fine for the node fan-outs seen in practice;
* the PTIME fast path for *homogeneous collections* ``{(a -> T)*}`` that the
  paper singles out (:func:`homogeneous_symbol`).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .nfa import EPS, NFA, thompson
from .syntax import Regex, Star, Sym, Symbol, Alt


def homogeneous_symbol(regex: Regex) -> Optional[Symbol]:
    """If ``regex`` is ``(s)*`` for a single atom ``s``, return ``s``.

    Homogeneous unordered collections ``{(a -> T)*}`` admit constant-time
    bag membership: every bag drawn from the single symbol belongs to the
    unordered language.  Returns None for any other shape.
    """
    if isinstance(regex, Star) and isinstance(regex.inner, Sym):
        return regex.inner.symbol
    return None


def homogeneous_alternatives(regex: Regex) -> Optional[FrozenSet[Symbol]]:
    """If ``regex`` is ``(s1 | ... | sk)*``, return the atom set.

    This generalizes homogeneous collections to a union of allowed edge
    symbols, each repeatable freely — still a PTIME bag membership test
    (the bag's support must be a subset of the atoms).
    """
    if not isinstance(regex, Star):
        return None
    inner = regex.inner
    if isinstance(inner, Sym):
        return frozenset([inner.symbol])
    if isinstance(inner, Alt) and all(isinstance(p, Sym) for p in inner.parts):
        return frozenset(p.symbol for p in inner.parts)
    return None


def bag_accepts(nfa: NFA, bag: Iterable[Symbol]) -> bool:
    """Return True if some ordering of ``bag`` is accepted by ``nfa``.

    Dynamic programming: for each sub-bag (counter vector over the distinct
    symbols of the bag) compute the set of NFA states reachable by consuming
    some permutation of that sub-bag.  The full bag is in the unordered
    language iff an accepting state is reachable from the full vector.
    """
    counts = Counter(bag)
    symbols = sorted(counts, key=repr)
    full = tuple(counts[s] for s in symbols)
    start = nfa.initial_states()
    if not any(full):
        return bool(start & nfa.accepting)

    # reach[vector] = frozenset of states after consuming that sub-bag.
    reach: Dict[Tuple[int, ...], FrozenSet[int]] = {tuple([0] * len(symbols)): start}
    # Process vectors in order of total size so predecessors exist.
    frontier: List[Tuple[int, ...]] = [tuple([0] * len(symbols))]
    for _ in range(sum(full)):
        next_frontier: Dict[Tuple[int, ...], Set[int]] = {}
        for vector in frontier:
            states = reach[vector]
            if not states:
                continue
            for i, symbol in enumerate(symbols):
                if vector[i] >= full[i]:
                    continue
                stepped = nfa.step(states, symbol)
                if not stepped:
                    continue
                nxt = vector[:i] + (vector[i] + 1,) + vector[i + 1:]
                next_frontier.setdefault(nxt, set()).update(stepped)
        frontier = []
        for vector, states in next_frontier.items():
            frozen = frozenset(states)
            reach[vector] = frozen
            frontier.append(vector)
    final = reach.get(full, frozenset())
    return bool(final & nfa.accepting)


def bag_run_groups(
    nfa: NFA, groups: Sequence[Tuple[FrozenSet[Symbol], int]]
) -> Optional[List[List[Symbol]]]:
    """Find symbol choices for an unordered node's edges, if any ordering works.

    ``groups`` lists ``(choices, count)`` pairs: ``count`` interchangeable
    positions, each of which must consume one symbol from ``choices``.  (In
    conformance, a group collects the child edges that share both a label
    and a candidate-type set, since such edges are interchangeable.)

    Returns, per group, the list of ``count`` symbols chosen (order within a
    group is immaterial), such that some interleaving of all chosen symbols
    is accepted by ``nfa``; or None if no choice works.

    The DP explores sub-multiset vectors, so it is exponential only in the
    number of groups (bounded by node fan-out), mirroring the paper's
    observation that unordered matching is the hard case.
    """
    counts = tuple(count for _choices, count in groups)
    zero = tuple([0] * len(groups))
    start = nfa.initial_states()
    # back[(vector, state)] = (prev_vector, prev_state, group_index, symbol)
    back: Dict[Tuple[Tuple[int, ...], int], Tuple[Tuple[int, ...], int, int, Symbol]] = {}
    reach: Dict[Tuple[int, ...], FrozenSet[int]] = {zero: start}
    frontier = [zero]
    for _ in range(sum(counts)):
        next_frontier: Dict[Tuple[int, ...], Set[int]] = {}
        for vector in frontier:
            states = reach[vector]
            for i, (choices, count) in enumerate(groups):
                if vector[i] >= count:
                    continue
                nxt_vector = vector[:i] + (vector[i] + 1,) + vector[i + 1:]
                for symbol in choices:
                    for q in states:
                        for arc_symbol, dst in nfa.arcs_from(q):
                            if arc_symbol is EPS or arc_symbol != symbol:
                                continue
                            for closed in nfa.eps_closure([dst]):
                                key = (nxt_vector, closed)
                                if key in back or (
                                    nxt_vector in reach and closed in reach[nxt_vector]
                                ):
                                    continue
                                back[key] = (vector, q, i, symbol)
                                next_frontier.setdefault(nxt_vector, set()).add(closed)
        frontier = []
        for vector, states in next_frontier.items():
            merged = states | set(reach.get(vector, frozenset()))
            reach[vector] = frozenset(merged)
            frontier.append(vector)
    full = counts
    final_states = [q for q in reach.get(full, frozenset()) if q in nfa.accepting]
    if sum(counts) == 0:
        return [[] for _ in groups] if (start & nfa.accepting) else None
    if not final_states:
        return None
    chosen: List[List[Symbol]] = [[] for _ in groups]
    vector, state = full, final_states[0]
    while vector != zero:
        prev_vector, prev_state, group_index, symbol = back[(vector, state)]
        chosen[group_index].append(symbol)
        vector, state = prev_vector, prev_state
    return chosen


def bag_accepts_regex(regex: Regex, alphabet: Iterable[Symbol], bag: Iterable[Symbol]) -> bool:
    """Convenience wrapper: compile ``regex`` and test bag membership.

    Applies the homogeneous fast paths before falling back to the DP.
    """
    bag = list(bag)
    atoms = homogeneous_alternatives(regex)
    if atoms is not None:
        return all(symbol in atoms for symbol in bag)
    return bag_accepts(thompson(regex, alphabet), bag)
