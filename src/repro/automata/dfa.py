"""Deterministic finite automata: subset construction, minimization, complement.

DFAs are *total*: every (state, symbol) pair has a successor, using an
explicit sink state where needed.  Totality makes complementation a matter of
flipping the accepting set, which is how language containment and schema
subsumption are decided elsewhere in the library.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .nfa import NFA
from .syntax import Symbol


class DFA:
    """A complete deterministic finite automaton.

    Attributes:
        n_states: number of states, ``0 .. n_states-1``.
        alphabet: finite alphabet.
        start: start state.
        accepting: frozenset of accepting states.
        transition: mapping ``(state, symbol) -> state``; total.
    """

    __slots__ = ("n_states", "alphabet", "start", "accepting", "transition")

    def __init__(
        self,
        n_states: int,
        alphabet: Iterable[Symbol],
        start: int,
        accepting: Iterable[int],
        transition: Dict[Tuple[int, Symbol], int],
    ):
        self.n_states = n_states
        self.alphabet = frozenset(alphabet)
        self.start = start
        self.accepting = frozenset(accepting)
        self.transition = dict(transition)
        if n_states < 1:
            raise ValueError(f"a DFA needs at least one state, got {n_states}")
        if not 0 <= start < n_states:
            raise ValueError(
                f"start state {start} out of range 0..{n_states - 1}"
            )
        out_of_range = sorted(
            state for state in self.accepting if not 0 <= state < n_states
        )
        if out_of_range:
            raise ValueError(
                f"accepting states {out_of_range} out of range 0..{n_states - 1}"
            )
        for (src, symbol), dst in self.transition.items():
            if not 0 <= src < n_states or symbol not in self.alphabet:
                raise ValueError(
                    f"transition from ({src}, {symbol!r}) is outside the "
                    "state space or alphabet"
                )
            if not 0 <= dst < n_states:
                raise ValueError(
                    f"transition ({src}, {symbol!r}) -> {dst} leaves the "
                    f"state space 0..{n_states - 1}"
                )
        missing = [
            (state, symbol)
            for state in range(n_states)
            for symbol in sorted(self.alphabet, key=repr)
            if (state, symbol) not in self.transition
        ]
        if missing:
            raise ValueError(
                "transition function is not total; missing "
                f"{missing[:3]}{'...' if len(missing) > 3 else ''} "
                f"({len(missing)} of {n_states * len(self.alphabet)} pairs)"
            )

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Return True if ``word`` is accepted."""
        state = self.start
        for symbol in word:
            if symbol not in self.alphabet:
                return False
            state = self.transition[(state, symbol)]
        return state in self.accepting

    def complement(self) -> "DFA":
        """Return a DFA for the complement language (w.r.t. alphabet*)."""
        accepting = frozenset(range(self.n_states)) - self.accepting
        return DFA(self.n_states, self.alphabet, self.start, accepting, self.transition)

    def reachable_states(self) -> FrozenSet[int]:
        """Return states reachable from the start state."""
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for symbol in self.alphabet:
                dst = self.transition[(state, symbol)]
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """Return True if no word is accepted."""
        return not (self.reachable_states() & self.accepting)

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (shared state numbering)."""
        transitions: Dict[int, List[Tuple[object, int]]] = {}
        for (src, symbol), dst in self.transition.items():
            transitions.setdefault(src, []).append((symbol, dst))
        return NFA(self.n_states, self.alphabet, self.start, self.accepting, transitions)

    def minimize(self) -> "DFA":
        """Return the minimal DFA for the same language (Moore's algorithm)."""
        reachable = sorted(self.reachable_states())
        index = {state: i for i, state in enumerate(reachable)}
        # Initial partition: accepting vs non-accepting.
        block = [0 if state in self.accepting else 1 for state in reachable]
        symbols = sorted(self.alphabet, key=repr)
        while True:
            signature = {}
            new_block = []
            next_id = 0
            for i, state in enumerate(reachable):
                key = (block[i],) + tuple(
                    block[index[self.transition[(state, symbol)]]] for symbol in symbols
                )
                if key not in signature:
                    signature[key] = next_id
                    next_id = next_id + 1
                new_block.append(signature[key])
            if new_block == block:
                break
            block = new_block
        n_states = max(block) + 1 if block else 1
        transition = {}
        for i, state in enumerate(reachable):
            for symbol in symbols:
                transition[(block[i], symbol)] = block[index[self.transition[(state, symbol)]]]
        accepting = {block[i] for i, state in enumerate(reachable) if state in self.accepting}
        start = block[index[self.start]]
        return DFA(n_states, self.alphabet, start, accepting, transition)

    def __repr__(self) -> str:
        return f"DFA(states={self.n_states}, alphabet={len(self.alphabet)})"


def determinize(nfa: NFA) -> DFA:
    """Subset construction; the result is total (includes a sink if needed)."""
    symbols = sorted(nfa.alphabet, key=repr)
    start_set = nfa.initial_states()
    ids: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    transition: Dict[Tuple[int, Symbol], int] = {}
    queue = [start_set]
    while queue:
        current = queue.pop()
        current_id = ids[current]
        for symbol in symbols:
            nxt = nfa.step(current, symbol)
            if nxt not in ids:
                ids[nxt] = len(order)
                order.append(nxt)
                queue.append(nxt)
            transition[(current_id, symbol)] = ids[nxt]
    accepting = {ids[s] for s in order if s & nfa.accepting}
    return DFA(len(order), nfa.alphabet, 0, accepting, transition)
