"""Operations on automata: products, containment, projections, regex extraction.

These are the workhorses of the traces technique (Section 3.4): satisfiability
is an emptiness test on a product automaton, type inference reads marker
symbols off the product, and feedback queries (Section 4.1) project the
product onto path segments and convert the result back to a regular
expression by state elimination.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .dfa import DFA, determinize
from .nfa import EPS, NFA
from .syntax import (
    EMPTY,
    EPSILON,
    Regex,
    Symbol,
    alt,
    concat,
    star,
    sym,
)


def intersect(left: NFA, right: NFA) -> NFA:
    """Product automaton accepting the intersection of the two languages.

    The result's alphabet is the union of both alphabets; a symbol outside
    one side's alphabet can never be matched by that side, so such symbols
    simply never appear in accepted words.
    """
    alphabet = left.alphabet | right.alphabet
    ids: Dict[Tuple[int, int], int] = {}
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    order: List[Tuple[int, int]] = []

    def state_id(pair: Tuple[int, int]) -> int:
        if pair not in ids:
            ids[pair] = len(order)
            order.append(pair)
        return ids[pair]

    start = state_id((left.start, right.start))
    queue = [(left.start, right.start)]
    seen = {(left.start, right.start)}
    while queue:
        lq, rq = queue.pop()
        src = state_id((lq, rq))
        # dict-as-ordered-set: parallel identical arcs in a source NFA would
        # otherwise multiply into duplicate product transitions.
        moves: Dict[Tuple[object, Tuple[int, int]], None] = {}
        for symbol, dst in left.arcs_from(lq):
            if symbol is EPS:
                moves[(EPS, (dst, rq))] = None
        for symbol, dst in right.arcs_from(rq):
            if symbol is EPS:
                moves[(EPS, (lq, dst))] = None
        for lsym, ldst in dict.fromkeys(left.arcs_from(lq)):
            if lsym is EPS:
                continue
            for rsym, rdst in dict.fromkeys(right.arcs_from(rq)):
                if rsym is EPS:
                    continue
                if lsym == rsym:
                    moves[(lsym, (ldst, rdst))] = None
        for symbol, pair in moves:
            dst = state_id(pair)
            transitions.setdefault(src, []).append((symbol, dst))
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    accepting = [
        ids[pair]
        for pair in order
        if pair[0] in left.accepting and pair[1] in right.accepting
    ]
    return NFA(len(order), alphabet, start, accepting, transitions)


def union(left: NFA, right: NFA) -> NFA:
    """Automaton accepting the union of the two languages.

    Parallel identical arcs in either operand are collapsed to one arc in
    the result (order-preserving dedupe per source state).
    """
    alphabet = left.alphabet | right.alphabet
    offset = 1  # new start state is 0
    right_offset = offset + left.n_states
    transitions: Dict[int, List[Tuple[object, int]]] = {
        0: [(EPS, left.start + offset), (EPS, right.start + right_offset)]
    }
    for src, arcs in left.transitions.items():
        transitions[src + offset] = [
            (symbol, dst + offset) for symbol, dst in dict.fromkeys(arcs)
        ]
    for src, arcs in right.transitions.items():
        transitions[src + right_offset] = [
            (symbol, dst + right_offset) for symbol, dst in dict.fromkeys(arcs)
        ]
    accepting = [q + offset for q in left.accepting]
    accepting += [q + right_offset for q in right.accepting]
    n_states = 1 + left.n_states + right.n_states
    return NFA(n_states, alphabet, 0, accepting, transitions)


def concat_nfa(parts: Sequence[NFA]) -> NFA:
    """Automaton accepting the concatenation of the given languages, in order."""
    if not parts:
        raise ValueError("concat_nfa requires at least one automaton")
    alphabet = frozenset(itertools.chain.from_iterable(p.alphabet for p in parts))
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    offsets = []
    total = 0
    for part in parts:
        offsets.append(total)
        for src, arcs in part.transitions.items():
            transitions[src + total] = [(symbol, dst + total) for symbol, dst in arcs]
        total += part.n_states
    for i in range(len(parts) - 1):
        next_start = parts[i + 1].start + offsets[i + 1]
        for q in parts[i].accepting:
            transitions.setdefault(q + offsets[i], []).append((EPS, next_start))
    accepting = [q + offsets[-1] for q in parts[-1].accepting]
    return NFA(total, alphabet, parts[0].start + offsets[0], accepting, transitions)


def relabel(nfa: NFA, fn: Callable[[Symbol], Optional[Symbol]]) -> NFA:
    """Apply a homomorphism to the arcs of ``nfa``.

    ``fn(symbol)`` returns the replacement symbol, or None to erase the
    symbol (the arc becomes an epsilon transition).  Erasure implements the
    projections of Sections 3.4 and 4.1: dropping marker symbols, or dropping
    everything *except* markers.
    """
    new_alphabet: Set[Symbol] = set()
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    for src, arcs in nfa.transitions.items():
        new_arcs: List[Tuple[object, int]] = []
        for symbol, dst in arcs:
            if symbol is EPS:
                new_arcs.append((EPS, dst))
                continue
            mapped = fn(symbol)
            if mapped is None:
                new_arcs.append((EPS, dst))
            else:
                new_alphabet.add(mapped)
                new_arcs.append((mapped, dst))
        transitions[src] = new_arcs
    return NFA(nfa.n_states, new_alphabet, nfa.start, nfa.accepting, transitions)


def trim(nfa: NFA) -> NFA:
    """Remove states not on any accepting path; keeps at least the start."""
    useful = nfa.useful_states() | {nfa.start}
    order = sorted(useful)
    index = {state: i for i, state in enumerate(order)}
    transitions: Dict[int, List[Tuple[object, int]]] = {}
    for src in order:
        arcs = [
            (symbol, index[dst])
            for symbol, dst in nfa.arcs_from(src)
            if dst in useful
        ]
        if arcs:
            transitions[index[src]] = arcs
    accepting = [index[q] for q in nfa.accepting if q in useful]
    return NFA(len(order), nfa.alphabet, index[nfa.start], accepting, transitions)


def is_subset(left: NFA, right: NFA) -> bool:
    """Decide language containment ``L(left) ⊆ L(right)``.

    Implemented as emptiness of ``L(left) ∩ complement(L(right))``; the
    complement is taken over the union of both alphabets so that words of
    ``left`` using symbols unknown to ``right`` are correctly rejected.
    """
    alphabet = left.alphabet | right.alphabet
    widened = NFA(right.n_states, alphabet, right.start, right.accepting, right.transitions)
    comp = determinize(widened).complement()
    return intersect(left, comp.to_nfa()).is_empty()


def equivalent(left: NFA, right: NFA) -> bool:
    """Decide language equality."""
    return is_subset(left, right) and is_subset(right, left)


def run_with_choices(
    nfa: NFA, choice_sets: Sequence[Iterable[Symbol]]
) -> Optional[List[Symbol]]:
    """Find an accepted word choosing one symbol per position.

    ``choice_sets[i]`` is the set of symbols allowed at position ``i``.
    Returns a witness word (one symbol per position) or None.  This is the
    engine behind conformance of *ordered* nodes: position ``i`` corresponds
    to the i-th child edge, whose allowed symbols are ``(label, T)`` for
    every type ``T`` in the child's candidate set.
    """
    layers: List[FrozenSet[int]] = [nfa.initial_states()]
    # back[(i, state)] = (previous_state, symbol) for witness extraction.
    back: Dict[Tuple[int, int], Tuple[int, Symbol]] = {}
    for i, choices in enumerate(choice_sets):
        nxt: Set[int] = set()
        for symbol in choices:
            for q in layers[i]:
                for arc_symbol, dst in nfa.arcs_from(q):
                    if arc_symbol is EPS or arc_symbol != symbol:
                        continue
                    for closed in nfa.eps_closure([dst]):
                        if (i + 1, closed) not in back:
                            back[(i + 1, closed)] = (q, symbol)
                            nxt.add(closed)
        if not nxt:
            return None
        layers.append(frozenset(nxt))
    final = [q for q in layers[-1] if q in nfa.accepting]
    if not final:
        return None
    word: List[Symbol] = []
    state = final[0]
    for i in range(len(choice_sets), 0, -1):
        previous, symbol = back[(i, state)]
        word.append(symbol)
        state = previous
    word.reverse()
    return word


def to_regex(nfa: NFA) -> Regex:
    """Convert an automaton back to a regular expression (state elimination).

    The output is not guaranteed to be the syntactically smallest expression,
    but the smart constructors keep it reasonable for display.  Used by the
    feedback-query application (Section 4.1) to present tightened path
    expressions to the user.
    """
    pruned = trim(nfa)
    if pruned.is_empty():
        return EMPTY
    # Normalize: fresh start state 0' and single final state f'.
    n = pruned.n_states
    start, final = n, n + 1
    # expr[(i, j)] = regex labelling the (i -> j) edge of the GNFA.
    expr: Dict[Tuple[int, int], Regex] = {}

    def add_edge(i: int, j: int, regex: Regex) -> None:
        if isinstance(regex, type(EMPTY)):
            return
        expr[(i, j)] = alt(expr[(i, j)], regex) if (i, j) in expr else regex

    add_edge(start, pruned.start, EPSILON)
    for q in pruned.accepting:
        add_edge(q, final, EPSILON)
    for src, arcs in pruned.transitions.items():
        for symbol, dst in arcs:
            add_edge(src, dst, EPSILON if symbol is EPS else sym(symbol))

    for victim in range(n):  # eliminate original states one by one
        loop = expr.pop((victim, victim), None)
        loop_regex = star(loop) if loop is not None else EPSILON
        incoming = [(i, r) for (i, j), r in expr.items() if j == victim and i != victim]
        outgoing = [(j, r) for (i, j), r in expr.items() if i == victim and j != victim]
        for (i, _), (j, _) in itertools.product(incoming, outgoing):
            expr.pop((i, victim), None)
            expr.pop((victim, j), None)
        for (i, rin), (j, rout) in itertools.product(incoming, outgoing):
            add_edge(i, j, concat(rin, loop_regex, rout))
        # Drop any leftover edges touching the victim.
        for key in [k for k in expr if victim in k]:
            expr.pop(key)
    return expr.get((start, final), EMPTY)
