"""The compile pipeline: NFA → subset construction → Hopcroft → tables.

Every decision procedure in this reproduction bottoms out in membership,
product emptiness, or containment questions on automata built from the
schema and the query.  The classic NFA simulation (`repro.automata.nfa`)
answers those questions over frozensets of states — flexible, but every
step allocates and hashes.  This module lowers a hot automaton once into
a :class:`CompiledDFA`:

* the alphabet is *interned* into a dense ``symbol -> id`` table
  (repr-sorted for determinism);
* the transition function is one flat ``array('i')`` row per state, with
  ``-1`` as the explicit dead entry;
* the accepting set is an integer bitset.

The lowering subset-constructs only the reachable part of the powerset
automaton, then minimizes with Hopcroft's algorithm.  Minimization runs
over the construction *plus an implicit sink*, so every state whose
right language is empty collapses into the sink's block, which is then
dropped: the resulting table is simultaneously minimal and pruned to
co-accessible states, and a walk is dead exactly when an entry is
``-1``.  ``member``, ``product_empty`` and ``is_subset`` are then tight
index arithmetic over those rows.

Compiled automata are plain data (tuples, arrays, ints), so they pickle
cheaply; the batch process executor ships them to workers instead of
re-parsing schema text (see :mod:`repro.engine.artifact`).

The dead-state convention travels through the layers above as
``Optional`` states: a walk that has died is ``None``, never a falsy
state value (state ``0`` is a perfectly live integer state).
:class:`NFARunner` gives the legacy NFA walk the same ``None``-is-dead
contract so both backends are interchangeable behind
``Engine(backend=...)``.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .nfa import EPS, NFA
from .syntax import Symbol

#: Version tag embedded in every pickled :class:`CompiledDFA`; bump when
#: the table layout changes so stale artifacts fail loudly.
PICKLE_VERSION = 1


class CompiledDFA:
    """A minimized, co-accessible-pruned DFA as dense integer tables.

    Attributes:
        symbols: the interned live alphabet, repr-sorted — symbols that
            move the automaton somewhere from some state; all others are
            dead everywhere and are simply absent.
        columns: per-symbol table column, parallel to ``symbols``.
            Symbols with identical transition behaviour everywhere (e.g.
            the labels a wildcard expanded to) share one column, so a
            path regex naming 3 of a schema's 40 labels gets a 4-column
            table, not a 40-column one.
        n_states: number of live states (``0 .. n_states-1``); may be 0
            for the empty language.
        start: the start state, or ``-1`` when the language is empty.
        table: row-major transition table of ``n_states * n_symbols``
            entries (``n_symbols`` counts *columns*, not symbols); ``-1``
            marks a dead transition (no accepting state is reachable
            after it).
        accepting: bitset of accepting states (bit ``q`` set iff state
            ``q`` accepts).

    Because dead states are pruned at build time, *every* stored state
    can still reach acceptance; this is what makes the word searches in
    :mod:`repro.typing.satisfiability` prune for free on this backend.
    """

    __slots__ = (
        "symbols",
        "columns",
        "n_states",
        "start",
        "table",
        "accepting",
        "symbol_ids",
        "n_symbols",
        "_avail",
    )

    def __init__(
        self,
        symbols: Tuple[Symbol, ...],
        columns: Tuple[int, ...],
        n_states: int,
        start: int,
        table: array,
        accepting: int,
    ):
        self.symbols = symbols
        self.columns = columns
        self.n_states = n_states
        self.start = start
        self.table = table
        self.accepting = accepting
        self.symbol_ids: Dict[Symbol, int] = dict(zip(symbols, columns))
        self.n_symbols = (max(columns) + 1) if columns else 0
        self._avail: Dict[int, Tuple[Symbol, ...]] = {}

    # ------------------------------------------------------------------
    # Pickling: plain data plus a version tag
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (PICKLE_VERSION, self.symbols, self.columns, self.n_states,
                self.start, self.table.tobytes(), self.accepting)

    def __setstate__(self, state):
        version = state[0]
        if version != PICKLE_VERSION:
            raise ValueError(
                f"CompiledDFA pickle version {version} is not supported "
                f"(expected {PICKLE_VERSION})"
            )
        _version, symbols, columns, n_states, start, table_bytes, accepting = state
        table = array("i")
        table.frombytes(table_bytes)
        self.__init__(symbols, columns, n_states, start, table, accepting)

    # ------------------------------------------------------------------
    # The runner contract (shared with NFARunner): None is dead
    # ------------------------------------------------------------------

    def initial(self) -> Optional[int]:
        """The start state, or None when the language is empty."""
        return self.start if self.start >= 0 else None

    def step(self, state: int, symbol: Symbol) -> Optional[int]:
        """One transition; None when the walk dies."""
        sid = self.symbol_ids.get(symbol)
        if sid is None:
            return None
        nxt = self.table[state * self.n_symbols + sid]
        return nxt if nxt >= 0 else None

    def is_accepting(self, state: int) -> bool:
        return bool((self.accepting >> state) & 1)

    def available_symbols(self, state: int) -> Tuple[Symbol, ...]:
        """Symbols with a live transition out of ``state`` (table order).

        Because dead states are pruned, every returned symbol leads to a
        state that can still reach acceptance.  Cached per state.
        """
        cached = self._avail.get(state)
        if cached is None:
            base = state * self.n_symbols
            table = self.table
            cached = tuple(
                symbol
                for symbol, col in zip(self.symbols, self.columns)
                if table[base + col] >= 0
            )
            self._avail[state] = cached
        return cached

    # ------------------------------------------------------------------
    # Decision procedures as index arithmetic
    # ------------------------------------------------------------------

    def member(self, word: Sequence[Symbol]) -> bool:
        """Membership: one table lookup per symbol."""
        state = self.start
        if state < 0:
            return False
        table = self.table
        ids = self.symbol_ids
        m = self.n_symbols
        for symbol in word:
            sid = ids.get(symbol)
            if sid is None:
                return False
            state = table[state * m + sid]
            if state < 0:
                return False
        return bool((self.accepting >> state) & 1)

    def is_empty(self) -> bool:
        """Emptiness is a start-state check: dead states were pruned."""
        return self.start < 0

    def shortest_word(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word, or None when the language is empty."""
        if self.start < 0:
            return None
        parents: Dict[int, Tuple[int, Symbol]] = {}
        queue = deque([self.start])
        seen = {self.start}
        m = self.n_symbols
        target = None
        if (self.accepting >> self.start) & 1:
            return ()
        while queue and target is None:
            state = queue.popleft()
            base = state * m
            for symbol, col in zip(self.symbols, self.columns):
                nxt = self.table[base + col]
                if nxt < 0 or nxt in seen:
                    continue
                seen.add(nxt)
                parents[nxt] = (state, symbol)
                if (self.accepting >> nxt) & 1:
                    target = nxt
                    break
                queue.append(nxt)
        if target is None:
            return None
        word: List[Symbol] = []
        state = target
        while state != self.start:
            state, symbol = parents[state]
            word.append(symbol)
        word.reverse()
        return tuple(word)

    def product_empty(self, other: "CompiledDFA") -> bool:
        """Emptiness of ``L(self) ∩ L(other)`` over the shared alphabet."""
        if self.start < 0 or other.start < 0:
            return True
        # Column pairs, deduplicated: symbols sharing columns on both
        # sides are interchangeable in the product.
        other_ids = other.symbol_ids
        shared = sorted(
            {
                (col, other_ids[symbol])
                for symbol, col in zip(self.symbols, self.columns)
                if symbol in other_ids
            }
        )
        m_self, m_other = self.n_symbols, other.n_symbols
        acc_self, acc_other = self.accepting, other.accepting
        start = (self.start, other.start)
        seen: Set[Tuple[int, int]] = {start}
        stack = [start]
        while stack:
            a, b = stack.pop()
            if (acc_self >> a) & 1 and (acc_other >> b) & 1:
                return False
            base_a = a * m_self
            base_b = b * m_other
            for ca, cb in shared:
                na = self.table[base_a + ca]
                if na < 0:
                    continue
                nb = other.table[base_b + cb]
                if nb < 0:
                    continue
                pair = (na, nb)
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
        return True

    def is_subset(self, other: "CompiledDFA") -> bool:
        """``L(self) ⊆ L(other)`` without materializing a complement.

        Walks the product where the ``other`` side may be dead (``-1``):
        a dead right-hand side rejects the current word and all of its
        extensions, so reaching an accepting left state there (or at a
        non-accepting right state) is a counterexample.
        """
        if self.start < 0:
            return True
        # Column pairs (ours, other's or -1 for "not in other's alphabet",
        # which sends other to its dead state), deduplicated: a symbol
        # class must be split when its members behave differently in
        # ``other``, which the per-symbol mapping does implicitly.
        other_ids = other.symbol_ids
        pairs = sorted(
            {
                (col, other_ids.get(symbol, -1))
                for symbol, col in zip(self.symbols, self.columns)
            }
        )
        m_self, m_other = self.n_symbols, other.n_symbols
        start = (self.start, other.start)  # other.start may be -1 already
        seen: Set[Tuple[int, int]] = {start}
        stack = [start]
        while stack:
            a, b = stack.pop()
            if (self.accepting >> a) & 1:
                if b < 0 or not (other.accepting >> b) & 1:
                    return False
            base_a = a * m_self
            for ca, cb in pairs:
                na = self.table[base_a + ca]
                if na < 0:
                    continue
                if b >= 0 and cb >= 0:
                    nb = other.table[b * m_other + cb]
                else:
                    nb = -1
                pair = (na, nb)
                if pair not in seen:
                    seen.add(pair)
                    stack.append(pair)
        return True

    def equivalent(self, other: "CompiledDFA") -> bool:
        """Language equality, as containment both ways."""
        return self.is_subset(other) and other.is_subset(self)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Alias for :meth:`member` (NFA-compatible spelling)."""
        return self.member(word)

    def __repr__(self) -> str:
        return (
            f"CompiledDFA(states={self.n_states}, symbols={self.n_symbols}, "
            f"empty={self.start < 0})"
        )


class NFARunner:
    """The legacy NFA subset walk behind the compiled runner contract.

    States are frozensets of NFA states; a dead walk is ``None`` (never
    an empty frozenset), matching :class:`CompiledDFA` so the decision
    procedures can hold either backend without branching.
    """

    __slots__ = ("nfa", "_start", "_avail")

    def __init__(self, nfa: NFA):
        self.nfa = nfa
        self._start: Optional[FrozenSet[int]] = None
        self._avail: Dict[FrozenSet[int], Tuple[Symbol, ...]] = {}

    def initial(self) -> Optional[FrozenSet[int]]:
        if self._start is None:
            self._start = self.nfa.initial_states()
        return self._start

    def step(
        self, states: FrozenSet[int], symbol: Symbol
    ) -> Optional[FrozenSet[int]]:
        nxt = self.nfa.step(states, symbol)
        return nxt if nxt else None

    def is_accepting(self, states: FrozenSet[int]) -> bool:
        return bool(states & self.nfa.accepting)

    def available_symbols(self, states: FrozenSet[int]) -> Tuple[Symbol, ...]:
        cached = self._avail.get(states)
        if cached is None:
            symbols = set()
            for q in states:
                for symbol, _dst in self.nfa.arcs_from(q):
                    if symbol is not EPS:
                        symbols.add(symbol)
            cached = tuple(sorted(symbols))
            self._avail[states] = cached
        return cached

    def member(self, word: Sequence[Symbol]) -> bool:
        return self.nfa.accepts(word)

    def __repr__(self) -> str:
        return f"NFARunner({self.nfa!r})"


# ----------------------------------------------------------------------
# Subset construction (lazy: reachable subsets only)
# ----------------------------------------------------------------------


def _subset_construct(
    nfa: NFA,
) -> Tuple[Tuple[Symbol, ...], Tuple[int, ...], List[List[int]], int, List[bool]]:
    """Determinize the reachable part of ``nfa``.

    Returns ``(symbols, columns, rows, start, accepting_flags)`` where
    ``rows[q]`` holds one target per *column* with ``-1`` for "no move" —
    the dead subset is never materialized as a state.

    Two alphabet reductions keep the table narrow:

    * Only symbols on some non-EPS arc get a column at all; the rest of
      the alphabet is dead at every state, which is exactly what an
      absent symbol already means to every CompiledDFA operation.
    * Symbols with *identical arc sets* — e.g. the 40 labels a wildcard
      expanded to — share one column (``columns`` maps each symbol to
      its class), so the construction and minimization pay per class,
      not per label.
    """
    profiles: Dict[Symbol, List[Tuple[int, int]]] = {}
    for q, arcs in nfa.transitions.items():
        for s, d in arcs:
            if s is not EPS:
                profiles.setdefault(s, []).append((q, d))
    symbols = tuple(sorted(profiles, key=repr))
    class_ids: Dict[Tuple[Tuple[int, int], ...], int] = {}
    columns: List[int] = []
    col_arcs: List[List[Tuple[int, int]]] = []
    for s in symbols:
        arcs = profiles[s]
        key = tuple(sorted(arcs))
        cid = class_ids.get(key)
        if cid is None:
            cid = len(col_arcs)
            class_ids[key] = cid
            col_arcs.append(arcs)
        columns.append(cid)
    m = len(col_arcs)
    # Per NFA state, the (column, destination) arcs of one representative
    # symbol per class — what one subset-state expansion iterates.
    consuming: Dict[int, List[Tuple[int, int]]] = {}
    for cid, arcs in enumerate(col_arcs):
        for q, d in arcs:
            consuming.setdefault(q, []).append((cid, d))
    eps_closure = nfa.eps_closure
    start_set = nfa.initial_states()
    ids: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    rows: List[List[int]] = []
    index = 0
    while index < len(order):
        current = order[index]
        moved: List[Optional[Set[int]]] = [None] * m
        for q in current:
            for cid, d in consuming.get(q, ()):
                bucket = moved[cid]
                if bucket is None:
                    moved[cid] = {d}
                else:
                    bucket.add(d)
        row = []
        for bucket in moved:
            if bucket is None:
                row.append(-1)
                continue
            nxt = eps_closure(bucket)
            target = ids.get(nxt)
            if target is None:
                target = len(order)
                ids[nxt] = target
                order.append(nxt)
            row.append(target)
        rows.append(row)
        index += 1
    accepting = [bool(subset & nfa.accepting) for subset in order]
    return symbols, tuple(columns), rows, 0, accepting


# ----------------------------------------------------------------------
# Hopcroft minimization
# ----------------------------------------------------------------------


def hopcroft_partition(
    n_states: int,
    n_symbols: int,
    rows: Sequence[Sequence[int]],
    accepting: Sequence[bool],
) -> List[int]:
    """Myhill–Nerode classes of a *total* DFA via Hopcroft's algorithm.

    ``rows[q][c]`` must be a valid state for every pair (no ``-1``
    entries — callers add an explicit sink first).  Returns a block id
    per state; two states share a block iff their right languages are
    equal.  Runs in the classic ``O(n_symbols · n_states · log
    n_states)`` via the smaller-half rule.
    """
    if n_states == 0:
        return []
    # Inverse transitions: preimage[c][q] = states entering q on c.
    preimage: List[Dict[int, List[int]]] = [dict() for _ in range(n_symbols)]
    for q in range(n_states):
        row = rows[q]
        for c in range(n_symbols):
            preimage[c].setdefault(row[c], []).append(q)

    finals = {q for q in range(n_states) if accepting[q]}
    nonfinals = set(range(n_states)) - finals
    blocks: List[Set[int]] = []
    block_of = [0] * n_states
    for group in (finals, nonfinals):
        if group:
            bid = len(blocks)
            blocks.append(set(group))
            for q in group:
                block_of[q] = bid
    if len(blocks) < 2:
        return block_of

    smaller = 0 if len(blocks[0]) <= len(blocks[1]) else 1
    worklist: Set[Tuple[int, int]] = {(smaller, c) for c in range(n_symbols)}
    while worklist:
        splitter_id, c = worklist.pop()
        # The splitter's members may change later; snapshot the preimage.
        x: Set[int] = set()
        pre_c = preimage[c]
        for q in blocks[splitter_id]:
            x.update(pre_c.get(q, ()))
        if not x:
            continue
        # Find blocks cut by X and split them.
        touched: Dict[int, Set[int]] = {}
        for q in x:
            touched.setdefault(block_of[q], set()).add(q)
        for bid, inside in touched.items():
            block = blocks[bid]
            if len(inside) == len(block):
                continue
            outside = block - inside
            # Keep the larger part in place; the smaller becomes new.
            if len(inside) <= len(outside):
                new_part, blocks[bid] = inside, outside
            else:
                new_part, blocks[bid] = outside, inside
            new_id = len(blocks)
            blocks.append(new_part)
            for q in new_part:
                block_of[q] = new_id
            for d in range(n_symbols):
                if (bid, d) in worklist:
                    worklist.add((new_id, d))
                else:
                    worklist.add(
                        (bid, d) if len(blocks[bid]) <= len(new_part) else (new_id, d)
                    )
    return block_of


def _minimize_rows(
    n_states: int,
    n_symbols: int,
    rows: List[List[int]],
    accepting: List[bool],
    start: int,
) -> Tuple[int, int, array, int]:
    """Hopcroft-minimize partial rows and lower them to the dense table.

    The partial construction (``-1`` = no move) is completed with an
    implicit sink before minimization; every state whose right language
    is empty then lands in the sink's block, which is dropped — pruning
    and minimization in one pass.  Blocks are renumbered by a BFS from
    the start block over symbol order, so the output is deterministic.

    Returns ``(n_states, start, table, accepting_bitset)``.
    """
    sink = n_states
    total_rows: List[List[int]] = [
        [sink if target < 0 else target for target in row] for row in rows
    ]
    total_rows.append([sink] * n_symbols)
    flags = list(accepting) + [False]
    block_of = hopcroft_partition(n_states + 1, n_symbols, total_rows, flags)
    dead_block = block_of[sink]
    if block_of[start] == dead_block:
        return 0, -1, array("i"), 0

    # Renumber live blocks in BFS discovery order from the start block.
    representative: Dict[int, int] = {}
    for q in range(n_states):
        representative.setdefault(block_of[q], q)
    new_ids: Dict[int, int] = {block_of[start]: 0}
    queue = deque([block_of[start]])
    order: List[int] = [block_of[start]]
    while queue:
        bid = queue.popleft()
        row = total_rows[representative[bid]]
        for c in range(n_symbols):
            target_block = block_of[row[c]]
            if target_block == dead_block or target_block in new_ids:
                continue
            new_ids[target_block] = len(order)
            order.append(target_block)
            queue.append(target_block)

    n_min = len(order)
    table = array("i", [-1]) * (n_min * n_symbols)
    accepting_bits = 0
    for new_id, bid in enumerate(order):
        row = total_rows[representative[bid]]
        base = new_id * n_symbols
        for c in range(n_symbols):
            target_block = block_of[row[c]]
            if target_block != dead_block:
                table[base + c] = new_ids[target_block]
        if flags[representative[bid]]:
            accepting_bits |= 1 << new_id
    return n_min, 0, table, accepting_bits


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def compile_nfa(nfa: NFA) -> CompiledDFA:
    """Lower an NFA through the full pipeline: subset → Hopcroft → tables."""
    symbols, columns, rows, start, accepting = _subset_construct(nfa)
    n_cols = (max(columns) + 1) if columns else 0
    n_states, new_start, table, accepting_bits = _minimize_rows(
        len(rows), n_cols, rows, accepting, start
    )
    return CompiledDFA(symbols, columns, n_states, new_start, table, accepting_bits)


def compile_dfa(dfa) -> CompiledDFA:
    """Lower an existing :class:`repro.automata.dfa.DFA` (tests, tools)."""
    symbols = tuple(sorted(dfa.alphabet, key=repr))
    # Symbols with identical transition vectors share one table column.
    class_ids: Dict[Tuple[int, ...], int] = {}
    columns: List[int] = []
    col_symbols: List[Symbol] = []
    for symbol in symbols:
        vector = tuple(dfa.transition[(q, symbol)] for q in range(dfa.n_states))
        cid = class_ids.get(vector)
        if cid is None:
            cid = len(col_symbols)
            class_ids[vector] = cid
            col_symbols.append(symbol)
        columns.append(cid)
    rows = [
        [dfa.transition[(q, symbol)] for symbol in col_symbols]
        for q in range(dfa.n_states)
    ]
    accepting = [q in dfa.accepting for q in range(dfa.n_states)]
    n_states, start, table, accepting_bits = _minimize_rows(
        dfa.n_states, len(col_symbols), rows, accepting, dfa.start
    )
    return CompiledDFA(symbols, tuple(columns), n_states, start, table, accepting_bits)


def run_with_choices_compiled(
    dfa: CompiledDFA, choice_sets: Sequence[Iterable[Symbol]]
) -> Optional[List[Symbol]]:
    """Compiled counterpart of :func:`repro.automata.ops.run_with_choices`.

    Finds an accepted word picking one symbol per position from
    ``choice_sets[i]``; the DFA makes each layer a plain integer map.
    Choices are tried in repr order so the witness is deterministic
    across processes (frozenset iteration order is not).
    """
    state = dfa.start
    if state < 0:
        return None
    m = dfa.n_symbols
    layer: Dict[int, Optional[Tuple[int, Symbol]]] = {state: None}
    layers: List[Dict[int, Optional[Tuple[int, Symbol]]]] = [layer]
    for choices in choice_sets:
        nxt: Dict[int, Optional[Tuple[int, Symbol]]] = {}
        for symbol in sorted(choices, key=repr):
            sid = dfa.symbol_ids.get(symbol)
            if sid is None:
                continue
            for q in layer:
                target = dfa.table[q * m + sid]
                if target >= 0 and target not in nxt:
                    nxt[target] = (q, symbol)
        if not nxt:
            return None
        layer = nxt
        layers.append(layer)
    final = [q for q in layer if (dfa.accepting >> q) & 1]
    if not final:
        return None
    word: List[Symbol] = []
    state = min(final)
    for i in range(len(choice_sets), 0, -1):
        state, symbol = layers[i][state]  # type: ignore[misc]
        word.append(symbol)
    word.reverse()
    return word
