"""Nondeterministic finite automata over arbitrary hashable symbols.

Automata in this project are always *concrete*: their transition relation is
over a finite alphabet fixed at construction time.  The ``_`` wildcard of the
pattern grammar (Table 1) is expanded against the supplied alphabet when a
regex is compiled (:func:`thompson`), following the standard reduction: since
schemas, queries and data graphs mention only finitely many labels, all other
labels behave identically and can be represented by one reserved symbol that
the caller adds to the alphabet.

States are consecutive integers so that product constructions and closures
stay cheap.  The class is deliberately minimal; richer operations (products,
containment, projections) live in :mod:`repro.automata.ops`.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .syntax import Any, Alt, Concat, Empty, Epsilon, Regex, Star, Sym, Symbol

#: Marker used internally for epsilon transitions.
EPS = ("__eps__",)


class NFA:
    """A nondeterministic finite automaton with epsilon transitions.

    Attributes:
        n_states: number of states; states are ``0 .. n_states-1``.
        alphabet: the finite alphabet, as a frozenset of symbols.
        start: the (single) start state.
        accepting: frozenset of accepting states.
        transitions: per-state adjacency: ``transitions[q]`` is a list of
            ``(symbol, destination)`` pairs where ``symbol`` is either an
            alphabet symbol or :data:`EPS`.
    """

    __slots__ = ("n_states", "alphabet", "start", "accepting", "transitions")

    def __init__(
        self,
        n_states: int,
        alphabet: Iterable[Symbol],
        start: int,
        accepting: Iterable[int],
        transitions: Dict[int, List[Tuple[object, int]]],
    ):
        self.n_states = n_states
        self.alphabet = frozenset(alphabet)
        self.start = start
        self.accepting = frozenset(accepting)
        self.transitions = {q: list(arcs) for q, arcs in transitions.items()}

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def arcs_from(self, state: int) -> List[Tuple[object, int]]:
        """Return the outgoing ``(symbol, dst)`` arcs of ``state``."""
        return self.transitions.get(state, [])

    def eps_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """Return the epsilon closure of a set of states."""
        seen: Set[int] = set(states)
        stack = list(seen)
        while stack:
            q = stack.pop()
            for symbol, dst in self.arcs_from(q):
                if symbol is EPS and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def step(self, states: FrozenSet[int], symbol: Symbol) -> FrozenSet[int]:
        """One symbol-consuming move followed by epsilon closure."""
        moved = set()
        for q in states:
            for arc_symbol, dst in self.arcs_from(q):
                if arc_symbol is not EPS and arc_symbol == symbol:
                    moved.add(dst)
        if not moved:
            return frozenset()
        return self.eps_closure(moved)

    def initial_states(self) -> FrozenSet[int]:
        """Return the epsilon closure of the start state."""
        return self.eps_closure([self.start])

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Return True if ``word`` is in the automaton's language."""
        current = self.initial_states()
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    def is_accepting_set(self, states: Iterable[int]) -> bool:
        """Return True if any of ``states`` is accepting."""
        return any(q in self.accepting for q in states)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_states(self) -> FrozenSet[int]:
        """Return all states reachable from the start state."""
        seen = {self.start}
        stack = [self.start]
        while stack:
            q = stack.pop()
            for _symbol, dst in self.arcs_from(q):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def coreachable_states(self) -> FrozenSet[int]:
        """Return all states from which an accepting state is reachable."""
        reverse: Dict[int, List[int]] = {}
        for src, arcs in self.transitions.items():
            for _symbol, dst in arcs:
                reverse.setdefault(dst, []).append(src)
        seen = set(self.accepting)
        stack = list(seen)
        while stack:
            q = stack.pop()
            for src in reverse.get(q, []):
                if src not in seen:
                    seen.add(src)
                    stack.append(src)
        return frozenset(seen)

    def useful_states(self) -> FrozenSet[int]:
        """States on some path from the start to an accepting state."""
        return self.reachable_states() & self.coreachable_states()

    def is_empty(self) -> bool:
        """Return True if the language is empty."""
        return not (self.reachable_states() & self.accepting)

    def useful_symbols(self) -> FrozenSet[Symbol]:
        """Return symbols appearing on some accepting path.

        These are exactly the symbols that occur in at least one word of
        the language — the ingredient for the schema graph of Section 3.4.
        """
        useful = self.useful_states()
        found: Set[Symbol] = set()
        for src in useful:
            for symbol, dst in self.arcs_from(src):
                if symbol is not EPS and dst in useful:
                    found.add(symbol)
        return frozenset(found)

    def shortest_word(self) -> Optional[Tuple[Symbol, ...]]:
        """Return a shortest accepted word, or None if the language is empty."""
        start = self.initial_states()
        if start & self.accepting:
            return ()
        queue = deque([(start, ())])
        seen = {start}
        while queue:
            states, word = queue.popleft()
            for symbol in self.alphabet:
                nxt = self.step(states, symbol)
                if not nxt or nxt in seen:
                    continue
                new_word = word + (symbol,)
                if nxt & self.accepting:
                    return new_word
                seen.add(nxt)
                queue.append((nxt, new_word))
        return None

    def enumerate_words(self, max_length: int) -> Iterable[Tuple[Symbol, ...]]:
        """Yield all accepted words of length at most ``max_length``.

        Intended for tests and small examples; the number of words can be
        exponential in ``max_length``.
        """
        start = self.initial_states()
        stack: List[Tuple[FrozenSet[int], Tuple[Symbol, ...]]] = [(start, ())]
        while stack:
            states, word = stack.pop()
            if states & self.accepting:
                yield word
            if len(word) == max_length:
                continue
            for symbol in sorted(self.alphabet, key=repr):
                nxt = self.step(states, symbol)
                if nxt:
                    stack.append((nxt, word + (symbol,)))

    def __repr__(self) -> str:
        return (
            f"NFA(states={self.n_states}, alphabet={len(self.alphabet)}, "
            f"accepting={sorted(self.accepting)})"
        )


class _Builder:
    """Mutable helper for assembling NFAs state by state."""

    def __init__(self, alphabet: Iterable[Symbol]):
        self.alphabet = frozenset(alphabet)
        self.n_states = 0
        self.transitions: Dict[int, List[Tuple[object, int]]] = {}

    def new_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add_arc(self, src: int, symbol: object, dst: int) -> None:
        self.transitions.setdefault(src, []).append((symbol, dst))

    def finish(self, start: int, accepting: Iterable[int]) -> NFA:
        return NFA(self.n_states, self.alphabet, start, accepting, self.transitions)


def thompson(regex: Regex, alphabet: Iterable[Symbol]) -> NFA:
    """Compile ``regex`` into an NFA over the given finite alphabet.

    Wildcards (:class:`repro.automata.syntax.Any`) expand to one arc per
    alphabet symbol.  Atoms outside the alphabet are rejected, which catches
    alphabet-mismatch bugs early.
    """
    alphabet = frozenset(alphabet)
    missing = regex.symbols() - alphabet
    if missing:
        raise ValueError(f"regex mentions symbols outside the alphabet: {sorted(map(repr, missing))}")
    builder = _Builder(alphabet)

    def build(node: Regex) -> Tuple[int, int]:
        """Return (entry, exit) states for ``node``."""
        entry = builder.new_state()
        exit_ = builder.new_state()
        if isinstance(node, Empty):
            pass  # no arc: exit unreachable
        elif isinstance(node, Epsilon):
            builder.add_arc(entry, EPS, exit_)
        elif isinstance(node, Sym):
            builder.add_arc(entry, node.symbol, exit_)
        elif isinstance(node, Any):
            for symbol in alphabet:
                builder.add_arc(entry, symbol, exit_)
        elif isinstance(node, Concat):
            previous = entry
            for part in node.parts:
                sub_entry, sub_exit = build(part)
                builder.add_arc(previous, EPS, sub_entry)
                previous = sub_exit
            builder.add_arc(previous, EPS, exit_)
        elif isinstance(node, Alt):
            for part in node.parts:
                sub_entry, sub_exit = build(part)
                builder.add_arc(entry, EPS, sub_entry)
                builder.add_arc(sub_exit, EPS, exit_)
        elif isinstance(node, Star):
            sub_entry, sub_exit = build(node.inner)
            builder.add_arc(entry, EPS, sub_entry)
            builder.add_arc(sub_exit, EPS, sub_entry)
            builder.add_arc(entry, EPS, exit_)
            builder.add_arc(sub_exit, EPS, exit_)
        else:
            raise TypeError(f"unknown regex node: {node!r}")
        return entry, exit_

    entry, exit_ = build(regex)
    return builder.finish(entry, [exit_])
