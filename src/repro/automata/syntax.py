"""Regular-expression abstract syntax over arbitrary hashable symbols.

The paper (Table 1) uses regular expressions in three places with different
atom vocabularies:

* schema definitions: atoms are ``label -> Tid`` pairs,
* pattern path expressions: atoms are labels or the wildcard ``_``,
* traces (Section 3.4): atoms are labels mixed with variable markers.

This module therefore keeps the symbol type fully generic: an atom is any
hashable Python object.  The wildcard is represented structurally (:class:`Any`)
and is only given meaning when a regex is compiled against a concrete finite
alphabet (see :mod:`repro.automata.nfa`).  All regexes in this project are
compiled against finite alphabets: because a schema, query, and data graph
mention only finitely many labels, every unmentioned label behaves identically
and is modelled by a single reserved symbol (``OTHER``, introduced by callers).

Construction goes through the smart constructors :func:`concat`, :func:`alt`,
:func:`star`, which perform light simplification (identity and absorbing
elements) so that printed regexes stay readable.

Nodes are *hash-consed*: construction canonicalizes and interns, so two
structurally equal expressions are the same object (``alt(a, b) is
alt(a, b)``).  This makes regexes O(1) to hash and compare and lets the
compilation engine (:mod:`repro.engine`) use them directly as cache keys.
Every node carries a structural hash computed once at interning time.
"""

from __future__ import annotations

import itertools
from typing import (
    Callable,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)
from weakref import WeakValueDictionary

Symbol = Hashable

#: The hash-consing table: structural key -> the unique live node for it.
#: Weak values let unreferenced expressions be collected; the engine cache
#: holds strong references to whatever it still needs.
_INTERN: "WeakValueDictionary" = WeakValueDictionary()


def _interned(cls: type, key: Tuple, attrs: Tuple[Tuple[str, object], ...]) -> "Regex":
    """Return the unique node for ``key``, creating and registering it once."""
    node = _INTERN.get(key)
    if node is None:
        node = object.__new__(cls)
        for name, value in attrs:
            object.__setattr__(node, name, value)
        object.__setattr__(node, "_hash", hash(key))
        _INTERN[key] = node
    return node


class Regex:
    """Base class for regular-expression AST nodes.

    Instances are immutable, hash-consed, and hashable; equality is
    structural and — thanks to interning — coincides with identity for
    nodes built in the same process.  Use the module-level smart
    constructors rather than instantiating ``Concat``/``Alt``/``Star``
    directly when building expressions programmatically.

    Nodes pickle by structure (each subclass defines ``__reduce__``
    through its constructor), so unpickling in another process re-interns
    into that process's hash-consing table — identity-based equality
    keeps holding across a pickle round-trip.
    """

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Regex nodes are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Regex nodes are immutable")

    def symbols(self) -> FrozenSet[Symbol]:
        """Return the set of concrete atoms occurring in the expression."""
        raise NotImplementedError

    def has_wildcard(self) -> bool:
        """Return True if the expression contains the ``_`` wildcard."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Return True if the empty word belongs to the language."""
        raise NotImplementedError

    def is_empty_language(self) -> bool:
        """Return True if the language is syntactically empty.

        This is exact for expressions built with the smart constructors,
        which float :class:`Empty` to the top.
        """
        return isinstance(self, Empty)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "Regex":
        """Return a copy with every atom ``s`` replaced by ``fn(s)``."""
        raise NotImplementedError

    def children(self) -> Tuple["Regex", ...]:
        """Return immediate sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Regex"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Operator sugar so tests and examples can write ``a + b | c``.
    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def __or__(self, other: "Regex") -> "Regex":
        return alt(self, other)


class Empty(Regex):
    """The empty language (no words at all)."""

    __slots__ = ()
    _instance: Optional["Empty"] = None

    def __new__(cls) -> "Empty":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()

    def has_wildcard(self) -> bool:
        return False

    def nullable(self) -> bool:
        return False

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return self

    def __reduce__(self):
        return (Empty, ())

    def __eq__(self, other: object) -> bool:
        return self is other or isinstance(other, Empty)

    def __hash__(self) -> int:
        return hash("Empty")

    def __repr__(self) -> str:
        return "Empty()"


class Epsilon(Regex):
    """The language containing only the empty word."""

    __slots__ = ()
    _instance: Optional["Epsilon"] = None

    def __new__(cls) -> "Epsilon":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()

    def has_wildcard(self) -> bool:
        return False

    def nullable(self) -> bool:
        return True

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return self

    def __reduce__(self):
        return (Epsilon, ())

    def __eq__(self, other: object) -> bool:
        return self is other or isinstance(other, Epsilon)

    def __hash__(self) -> int:
        return hash("Epsilon")

    def __repr__(self) -> str:
        return "Epsilon()"


class Sym(Regex):
    """A single concrete atom."""

    __slots__ = ("symbol", "_hash", "__weakref__")

    def __new__(cls, symbol: Symbol) -> "Sym":
        return _interned(cls, ("Sym", symbol), (("symbol", symbol),))

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset([self.symbol])

    def has_wildcard(self) -> bool:
        return False

    def nullable(self) -> bool:
        return False

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return Sym(fn(self.symbol))

    def __reduce__(self):
        return (Sym, (self.symbol,))

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Sym) and self.symbol == other.symbol)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Sym({self.symbol!r})"


class Any(Regex):
    """The wildcard ``_``: matches any single symbol of the alphabet.

    The wildcard has no fixed language on its own; it is interpreted
    relative to the alphabet supplied at automaton-compilation time.
    """

    __slots__ = ()
    _instance: Optional["Any"] = None

    def __new__(cls) -> "Any":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()

    def has_wildcard(self) -> bool:
        return True

    def nullable(self) -> bool:
        return False

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return self

    def __reduce__(self):
        return (Any, ())

    def __eq__(self, other: object) -> bool:
        return self is other or isinstance(other, Any)

    def __hash__(self) -> int:
        return hash("Any")

    def __repr__(self) -> str:
        return "Any()"


class Concat(Regex):
    """Concatenation of two or more sub-expressions."""

    __slots__ = ("parts", "_hash", "__weakref__")

    def __new__(cls, parts: Sequence[Regex]) -> "Concat":
        parts = tuple(parts)
        return _interned(cls, ("Concat", parts), (("parts", parts),))

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset(itertools.chain.from_iterable(p.symbols() for p in self.parts))

    def has_wildcard(self) -> bool:
        return any(p.has_wildcard() for p in self.parts)

    def nullable(self) -> bool:
        return all(p.nullable() for p in self.parts)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return concat(*(p.map_symbols(fn) for p in self.parts))

    def children(self) -> Tuple[Regex, ...]:
        return self.parts

    def __reduce__(self):
        return (Concat, (self.parts,))

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Concat) and self.parts == other.parts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Concat({list(self.parts)!r})"


class Alt(Regex):
    """Alternation (union) of two or more sub-expressions."""

    __slots__ = ("parts", "_hash", "__weakref__")

    def __new__(cls, parts: Sequence[Regex]) -> "Alt":
        parts = tuple(parts)
        return _interned(cls, ("Alt", parts), (("parts", parts),))

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset(itertools.chain.from_iterable(p.symbols() for p in self.parts))

    def has_wildcard(self) -> bool:
        return any(p.has_wildcard() for p in self.parts)

    def nullable(self) -> bool:
        return any(p.nullable() for p in self.parts)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return alt(*(p.map_symbols(fn) for p in self.parts))

    def children(self) -> Tuple[Regex, ...]:
        return self.parts

    def __reduce__(self):
        return (Alt, (self.parts,))

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Alt) and self.parts == other.parts)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Alt({list(self.parts)!r})"


class Star(Regex):
    """Kleene closure of a sub-expression."""

    __slots__ = ("inner", "_hash", "__weakref__")

    def __new__(cls, inner: Regex) -> "Star":
        return _interned(cls, ("Star", inner), (("inner", inner),))

    def symbols(self) -> FrozenSet[Symbol]:
        return self.inner.symbols()

    def has_wildcard(self) -> bool:
        return self.inner.has_wildcard()

    def nullable(self) -> bool:
        return True

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> Regex:
        return star(self.inner.map_symbols(fn))

    def children(self) -> Tuple[Regex, ...]:
        return (self.inner,)

    def __reduce__(self):
        return (Star, (self.inner,))

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Star) and self.inner == other.inner)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Star({self.inner!r})"


EMPTY = Empty()
EPSILON = Epsilon()
ANY = Any()


def sym(symbol: Symbol) -> Regex:
    """Build an atom expression for ``symbol``."""
    return Sym(symbol)


def concat(*parts: Regex) -> Regex:
    """Smart concatenation: flattens, drops epsilons, absorbs Empty."""
    flat = []
    for part in parts:
        if isinstance(part, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(flat)


def alt(*parts: Regex) -> Regex:
    """Smart alternation: flattens, deduplicates, drops Empty."""
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        candidates = part.parts if isinstance(part, Alt) else (part,)
        for cand in candidates:
            if cand not in seen:
                seen.add(cand)
                flat.append(cand)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(flat)


def star(inner: Regex) -> Regex:
    """Smart Kleene star: collapses nested stars and trivial bodies."""
    if isinstance(inner, (Empty, Epsilon)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """``R+`` as ``R.R*``."""
    return concat(inner, star(inner))


def opt(inner: Regex) -> Regex:
    """``R?`` as ``R | eps``."""
    return alt(inner, EPSILON)


def word(symbols: Iterable[Symbol]) -> Regex:
    """Build the concatenation of the given atoms (a single-word language)."""
    return concat(*(Sym(s) for s in symbols))


def literal_word(regex: Regex) -> Optional[Tuple[Symbol, ...]]:
    """If ``regex`` denotes exactly one word built from atoms, return it.

    Returns None when the expression uses alternation, star, or wildcards,
    i.e. whenever the language is not a single concrete word.  Used by the
    query classifier to detect *constant label* path expressions (Section 3).
    """
    if isinstance(regex, Epsilon):
        return ()
    if isinstance(regex, Sym):
        return (regex.symbol,)
    if isinstance(regex, Concat):
        pieces = []
        for part in regex.parts:
            piece = literal_word(part)
            if piece is None:
                return None
            pieces.extend(piece)
        return tuple(pieces)
    return None


def last_symbols(regex: Regex) -> Optional[FrozenSet[Symbol]]:
    """Return the set of atoms that can end a word of ``regex``.

    Returns None if a word can end with a wildcard-matched symbol (so the
    last-symbol set is not determined by the expression alone) or if the
    empty word is in the language (no last symbol).  Used to detect the
    *constant suffix* restriction ``R.l`` of Section 3.
    """
    if regex.nullable():
        return None
    result = _last_symbols(regex)
    return result


def _last_symbols(regex: Regex) -> Optional[FrozenSet[Symbol]]:
    if isinstance(regex, (Empty, Epsilon)):
        return frozenset()
    if isinstance(regex, Sym):
        return frozenset([regex.symbol])
    if isinstance(regex, Any):
        return None
    if isinstance(regex, Alt):
        acc = set()
        for part in regex.parts:
            sub = _last_symbols(part)
            if sub is None:
                return None
            acc.update(sub)
        return frozenset(acc)
    if isinstance(regex, Concat):
        acc = set()
        # Walk suffix parts from the right while they may be skipped (nullable).
        for part in reversed(regex.parts):
            sub = _last_symbols(part)
            if sub is None:
                return None
            acc.update(sub)
            if not part.nullable():
                return frozenset(acc)
        return frozenset(acc)
    if isinstance(regex, Star):
        return _last_symbols(regex.inner)
    return None
