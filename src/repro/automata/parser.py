"""Parser for the regular expressions of Table 1.

Two atom vocabularies share one grammar:

* *path* regexes (patterns): atoms are labels and the wildcard ``_``;
* *schema* regexes: atoms are ``label -> Tid`` pairs (the label side may be
  ``_`` only if the caller permits it; plain ScmDL does not use wildcards in
  schemas, so the schema parser forbids them).

Grammar (precedence low to high)::

    R      ::= seq ('|' seq)*
    seq    ::= post ('.' post)*
    post   ::= atom ('*' | '+' | '?')*
    atom   ::= '(' R ')' | 'eps' | label | '_' | label '->' Tid

``eps`` is the empty word.  ``(R)`` groups.  ``*``, ``+``, ``?`` are postfix.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..lexer import Token, TokenStream
from .syntax import ANY, EPSILON, Regex, alt, concat, opt, plus, star, sym

#: Signature of an atom factory: receives (label, target_tid_or_None) and
#: returns the regex atom.  ``target`` is None for plain-label atoms.
AtomFactory = Callable[[str, Optional[str]], Regex]


def default_atom(label: str, target: Optional[str]) -> Regex:
    """Default atom factory: plain labels map to themselves, arrow atoms to
    ``(label, target)`` pairs."""
    if target is None:
        return sym(label)
    return sym((label, target))


def parse_regex(
    stream: TokenStream,
    atom: AtomFactory = default_atom,
    allow_arrow: bool = False,
    allow_wildcard: bool = True,
) -> Regex:
    """Parse a regex from ``stream`` (leaves the stream after the regex).

    Args:
        stream: token stream positioned at the start of the expression.
        atom: factory turning lexical atoms into regex symbols.
        allow_arrow: accept ``label -> Tid`` atoms (schema regexes).
        allow_wildcard: accept ``_`` (pattern regexes).
    """

    def parse_alt() -> Regex:
        parts = [parse_seq()]
        while stream.match("OP", "|"):
            parts.append(parse_seq())
        return alt(*parts)

    def parse_seq() -> Regex:
        parts = [parse_post()]
        while stream.match("OP", "."):
            parts.append(parse_post())
        return concat(*parts)

    def parse_post() -> Regex:
        node = parse_atom()
        while True:
            if stream.match("OP", "*"):
                node = star(node)
            elif stream.match("OP", "+"):
                node = plus(node)
            elif stream.match("OP", "?"):
                node = opt(node)
            else:
                return node

    def parse_atom() -> Regex:
        if stream.match("OP", "("):
            inner = parse_alt()
            stream.expect("OP", ")")
            return inner
        token = stream.current
        if token.kind != "IDENT":
            raise SyntaxError(
                f"expected regex atom, found {token.kind} {token.value!r} "
                f"at line {token.line}, column {token.column}"
            )
        stream.advance()
        name = str(token.value)
        if name == "eps":
            return EPSILON
        if name == "_":
            if not allow_wildcard:
                raise SyntaxError(
                    f"wildcard '_' not allowed here (line {token.line})"
                )
            if allow_arrow and stream.match("ARROW"):
                raise SyntaxError(
                    f"wildcard labels in schema atoms are not supported "
                    f"(line {token.line})"
                )
            return ANY
        if allow_arrow and stream.match("ARROW"):
            target = stream.expect("IDENT")
            return atom(name, str(target.value))
        if allow_arrow:
            raise SyntaxError(
                f"schema atom {name!r} must be of the form label->Tid "
                f"(line {token.line}, column {token.column})"
            )
        return atom(name, None)

    return parse_alt()


def parse_regex_string(
    text: str,
    atom: AtomFactory = default_atom,
    allow_arrow: bool = False,
    allow_wildcard: bool = True,
) -> Regex:
    """Parse a complete string as a single regex."""
    stream = TokenStream(text)
    regex = parse_regex(stream, atom, allow_arrow, allow_wildcard)
    if not stream.at_end():
        token = stream.current
        raise SyntaxError(
            f"trailing input after regex: {token.kind} {token.value!r} "
            f"at line {token.line}, column {token.column}"
        )
    return regex


def regex_to_string(regex: Regex, show_atom: Optional[Callable[[object], str]] = None) -> str:
    """Render a regex in the Table-1 surface syntax.

    ``show_atom`` renders a symbol; the default renders strings as-is and
    ``(label, target)`` pairs as ``label->target``.
    """
    if show_atom is None:
        show_atom = _default_show_atom
    rendered, _prec = _render(regex, show_atom)
    return rendered


def _default_show_atom(symbol: object) -> str:
    if isinstance(symbol, tuple) and len(symbol) == 2:
        return f"{symbol[0]}->{symbol[1]}"
    return str(symbol)


# Precedence levels: 0 = alt, 1 = concat, 2 = postfix/atom.
def _render(regex: Regex, show_atom: Callable[[object], str]) -> Tuple[str, int]:
    from .syntax import Alt, Any, Concat, Empty, Epsilon, Star, Sym

    if isinstance(regex, Empty):
        return "empty", 2
    if isinstance(regex, Epsilon):
        return "eps", 2
    if isinstance(regex, Any):
        return "_", 2
    if isinstance(regex, Sym):
        return show_atom(regex.symbol), 2
    if isinstance(regex, Star):
        inner, prec = _render(regex.inner, show_atom)
        if prec < 2:
            inner = f"({inner})"
        return f"{inner}*", 2
    if isinstance(regex, Concat):
        pieces = []
        for part in regex.parts:
            inner, prec = _render(part, show_atom)
            if prec < 1:
                inner = f"({inner})"
            pieces.append(inner)
        return ".".join(pieces), 1
    if isinstance(regex, Alt):
        pieces = []
        for part in regex.parts:
            inner, _prec = _render(part, show_atom)
            pieces.append(inner)
        return "|".join(pieces), 0
    raise TypeError(f"unknown regex node: {regex!r}")
