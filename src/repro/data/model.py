"""The data model of Section 2: an ordered version of OEM.

A :class:`DataGraph` is a collection of objects (nodes), each identified by
an *oid* and carrying a value that is either

* an atomic value (string, int, or float),
* an unordered collection of ``(label, oid)`` pairs, or
* an ordered sequence of ``(label, oid)`` pairs.

The first node defined is the distinguished *root*; every node must be
reachable from it.  Oids starting with ``&`` denote *referenceable* objects;
all other objects are non-referenceable and may occur at most once on the
right-hand side of a definition (so non-referenceable regions of the graph
are trees hanging off referenceable nodes — exactly the paper's convention,
and the reason XML documents are trees of non-referenceable objects).
"""

from __future__ import annotations

import enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Atomic values allowed at leaves.
AtomicValue = Union[str, int, float]


class NodeKind(enum.Enum):
    """The three node shapes of Table 1."""

    ATOMIC = "atomic"
    UNORDERED = "unordered"
    ORDERED = "ordered"


class Edge(NamedTuple):
    """A labelled edge ``label -> target`` out of a collection node."""

    label: str
    target: str


class Node:
    """One object definition ``oid = value | {E} | [E]``.

    Exactly one of ``value`` (for atomic nodes) or ``edges`` (for collection
    nodes) is meaningful, depending on ``kind``.
    """

    __slots__ = ("oid", "kind", "value", "edges")

    def __init__(
        self,
        oid: str,
        kind: NodeKind,
        value: Optional[AtomicValue] = None,
        edges: Sequence[Edge] = (),
    ):
        if kind is NodeKind.ATOMIC:
            if value is None:
                raise ValueError(f"atomic node {oid!r} requires a value")
            if edges:
                raise ValueError(f"atomic node {oid!r} cannot have edges")
        else:
            if value is not None:
                raise ValueError(f"collection node {oid!r} cannot carry a value")
        self.oid = oid
        self.kind = kind
        self.value = value
        self.edges = tuple(Edge(label, target) for label, target in edges)

    @property
    def is_referenceable(self) -> bool:
        """True if the oid starts with ``&``."""
        return self.oid.startswith("&")

    @property
    def is_atomic(self) -> bool:
        return self.kind is NodeKind.ATOMIC

    @property
    def is_ordered(self) -> bool:
        return self.kind is NodeKind.ORDERED

    @property
    def is_unordered(self) -> bool:
        return self.kind is NodeKind.UNORDERED

    def labels(self) -> Tuple[str, ...]:
        """Return the edge labels in definition order."""
        return tuple(edge.label for edge in self.edges)

    def targets(self) -> Tuple[str, ...]:
        """Return the edge targets in definition order."""
        return tuple(edge.target for edge in self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return (
            self.oid == other.oid
            and self.kind == other.kind
            and self.value == other.value
            and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash((self.oid, self.kind, self.value, self.edges))

    def __repr__(self) -> str:
        if self.is_atomic:
            return f"Node({self.oid!r}, value={self.value!r})"
        brackets = "[]" if self.is_ordered else "{}"
        inner = ", ".join(f"{e.label}->{e.target}" for e in self.edges)
        return f"Node({self.oid!r}, {brackets[0]}{inner}{brackets[1]})"


class DataGraphError(ValueError):
    """Raised when a data graph violates the well-formedness rules of §2."""


class DataGraph:
    """A well-formed data graph.

    Args:
        nodes: node definitions in order; the first one is the root.
        validate: if True (default), check all Section-2 well-formedness
            conditions and raise :class:`DataGraphError` on violation.
    """

    __slots__ = ("nodes", "root")

    def __init__(self, nodes: Iterable[Node], validate: bool = True):
        node_list = list(nodes)
        if not node_list:
            raise DataGraphError("a data graph needs at least one node")
        self.nodes: Dict[str, Node] = {}
        for node in node_list:
            if node.oid in self.nodes:
                raise DataGraphError(f"oid {node.oid!r} defined more than once")
            self.nodes[node.oid] = node
        self.root = node_list[0].oid
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        occurrences: Dict[str, int] = {}
        for node in self.nodes.values():
            for edge in node.edges:
                if edge.target not in self.nodes:
                    raise DataGraphError(
                        f"edge {edge.label!r} of {node.oid!r} points to "
                        f"undefined oid {edge.target!r}"
                    )
                occurrences[edge.target] = occurrences.get(edge.target, 0) + 1
        for oid, node in self.nodes.items():
            count = occurrences.get(oid, 0)
            if not node.is_referenceable:
                if oid == self.root:
                    if count > 0:
                        raise DataGraphError(
                            f"non-referenceable root {oid!r} may not occur "
                            "on any right-hand side"
                        )
                elif count > 1:
                    raise DataGraphError(
                        f"non-referenceable oid {oid!r} occurs {count} times "
                        "on right-hand sides (at most once allowed)"
                    )
        unreachable = set(self.nodes) - set(self.reachable_from(self.root))
        if unreachable:
            raise DataGraphError(
                f"nodes not reachable from the root: {sorted(unreachable)}"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def node(self, oid: str) -> Node:
        """Return the node with the given oid (KeyError if undefined)."""
        return self.nodes[oid]

    @property
    def root_node(self) -> Node:
        return self.nodes[self.root]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes.values())

    def __contains__(self, oid: str) -> bool:
        return oid in self.nodes

    def edge_count(self) -> int:
        """Total number of edges in the graph."""
        return sum(len(node.edges) for node in self)

    def labels(self) -> FrozenSet[str]:
        """All edge labels appearing in the graph."""
        return frozenset(
            edge.label for node in self for edge in node.edges
        )

    def atomic_values(self) -> FrozenSet[AtomicValue]:
        """All atomic values appearing in the graph."""
        return frozenset(node.value for node in self if node.is_atomic)

    def reachable_from(self, oid: str) -> List[str]:
        """Oids reachable from ``oid`` (including it), depth-first preorder."""
        seen = {oid}
        order = [oid]
        stack = [oid]
        while stack:
            current = stack.pop()
            for edge in reversed(self.nodes[current].edges):
                if edge.target not in seen:
                    seen.add(edge.target)
                    order.append(edge.target)
                    stack.append(edge.target)
        return order

    def is_tree(self) -> bool:
        """True if every node has at most one incoming edge (and the root none)."""
        seen: Dict[str, int] = {}
        for node in self:
            for edge in node.edges:
                seen[edge.target] = seen.get(edge.target, 0) + 1
                if seen[edge.target] > 1:
                    return False
        return self.root not in seen

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataGraph):
            return NotImplemented
        return self.root == other.root and self.nodes == other.nodes

    def __hash__(self) -> int:
        return hash((self.root, tuple(self.nodes.values())))

    def __repr__(self) -> str:
        return f"DataGraph(root={self.root!r}, nodes={len(self.nodes)}, edges={self.edge_count()})"


class GraphBuilder:
    """Incremental construction of a :class:`DataGraph`.

    Example::

        builder = GraphBuilder()
        builder.ordered("o1", [("paper", "o2")])
        builder.atomic("o2", "hello")
        graph = builder.build()
    """

    def __init__(self) -> None:
        self._nodes: List[Node] = []

    def atomic(self, oid: str, value: AtomicValue) -> "GraphBuilder":
        """Define an atomic node."""
        self._nodes.append(Node(oid, NodeKind.ATOMIC, value=value))
        return self

    def unordered(self, oid: str, edges: Iterable[Tuple[str, str]]) -> "GraphBuilder":
        """Define an unordered collection node."""
        self._nodes.append(
            Node(oid, NodeKind.UNORDERED, edges=[Edge(*e) for e in edges])
        )
        return self

    def ordered(self, oid: str, edges: Iterable[Tuple[str, str]]) -> "GraphBuilder":
        """Define an ordered collection node."""
        self._nodes.append(
            Node(oid, NodeKind.ORDERED, edges=[Edge(*e) for e in edges])
        )
        return self

    def build(self, validate: bool = True) -> DataGraph:
        """Finalize and validate the graph."""
        return DataGraph(self._nodes, validate=validate)
