"""Data graphs: the ordered OEM model of Section 2.

Provides the graph model (:class:`DataGraph`), the Table-1 textual syntax
(:func:`parse_data` / :func:`data_to_string`), a fluent builder
(:class:`GraphBuilder`), and the XML encoding of Section 2
(:func:`from_xml` / :func:`to_xml`).
"""

from .model import (
    AtomicValue,
    DataGraph,
    DataGraphError,
    Edge,
    GraphBuilder,
    Node,
    NodeKind,
)
from .parser import data_to_string, parse_data
from .xml import XmlElement, XmlError, from_xml, parse_xml, to_xml
from .dot import graph_to_dot, schema_to_dot
from .json_bridge import from_json, from_plain_json, to_json

__all__ = [
    "AtomicValue",
    "DataGraph",
    "DataGraphError",
    "Edge",
    "GraphBuilder",
    "Node",
    "NodeKind",
    "XmlElement",
    "XmlError",
    "data_to_string",
    "from_json",
    "from_plain_json",
    "from_xml",
    "graph_to_dot",
    "parse_data",
    "parse_xml",
    "schema_to_dot",
    "to_json",
    "to_xml",
]
