"""Graphviz export for data graphs and schemas.

Produces DOT source for visual inspection of instances and of the schema
graph Γ(S) — handy when debugging conformance or satisfiability verdicts
(``dot -Tsvg out.dot``).
"""

from __future__ import annotations

from typing import Iterable, List

from .model import DataGraph


def _quote(text: object) -> str:
    escaped = str(text).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(graph: DataGraph, name: str = "data") -> str:
    """Render a data graph as DOT.

    Atomic nodes are boxes labelled with their value; ordered collections
    are ellipses, unordered collections double ellipses.  Edge order is
    the child order (Graphviz preserves it left to right with ``ordering=out``).
    """
    lines: List[str] = [f"digraph {_quote(name)} {{", "  ordering=out;"]
    for node in graph:
        if node.is_atomic:
            label = f"{node.oid}\\n{node.value!r}"
            shape = "box"
        else:
            label = node.oid + (" []" if node.is_ordered else " {}")
            shape = "ellipse" if node.is_ordered else "doublecircle"
        lines.append(f"  {_quote(node.oid)} [label={_quote(label)}, shape={shape}];")
    for node in graph:
        for edge in node.edges:
            lines.append(
                f"  {_quote(node.oid)} -> {_quote(edge.target)} "
                f"[label={_quote(edge.label)}];"
            )
    lines.append("}")
    return "\n".join(lines)


def schema_to_dot(schema, name: str = "schema") -> str:
    """Render the schema graph Γ(S) as DOT.

    One node per type (atomic types as boxes with their domain); one edge
    per possible ``(label, target)`` pair — i.e. edges that occur in some
    instance (uninhabited branches are absent, mirroring
    :meth:`~repro.schema.model.Schema.possible_edges`).
    """
    lines: List[str] = [f"digraph {_quote(name)} {{"]
    edges = schema.possible_edges()
    for type_def in schema:
        if type_def.is_atomic:
            label = f"{type_def.tid}\\n({type_def.atomic})"
            shape = "box"
        else:
            label = type_def.tid + (" []" if type_def.is_ordered else " {}")
            shape = "ellipse" if type_def.is_ordered else "doublecircle"
        style = ', peripheries=2' if type_def.tid == schema.root else ""
        lines.append(
            f"  {_quote(type_def.tid)} [label={_quote(label)}, shape={shape}{style}];"
        )
    for tid, pairs in edges.items():
        for label, target in sorted(pairs):
            lines.append(
                f"  {_quote(tid)} -> {_quote(target)} [label={_quote(label)}];"
            )
    lines.append("}")
    return "\n".join(lines)
