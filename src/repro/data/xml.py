"""XML encoding of the data model (Section 2 of the paper).

The paper shows how an XML fragment maps to a data graph::

    <paper><title> A real nice paper </title> ... </paper>

becomes::

    o1 = [paper -> o2];
    o2 = [title -> o3, author -> o4]; o3 = "A real nice paper"; ...

Rules implemented here (matching the paper's example):

* every element becomes an *ordered* node whose edges are labelled by the
  child element names, in document order;
* an element containing only character data becomes an atomic string node
  (text is stripped of surrounding whitespace);
* the document is wrapped in a synthetic ordered root with a single edge
  labelled by the document element's tag;
* all generated objects are non-referenceable (XML data is tree data);
* attributes are encoded as leading edges labelled ``@name`` pointing to
  atomic string nodes — a documented extension, since plain OEM has no
  attribute notion;
* mixed content (text interleaved with elements) is rejected, mirroring the
  DTD fragment of Section 2 which has no mixed-content types.

The parser is deliberately small: elements, attributes, character data, the
five standard entities, comments, and processing instructions (skipped).
It exists so the library has no dependency beyond the standard library and
so the ordered-node semantics is pinned by our own tests.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .model import DataGraph, Edge, Node, NodeKind


class XmlError(ValueError):
    """Raised on malformed XML or content outside the supported subset."""


class XmlElement:
    """A parsed XML element: tag, attributes, and children.

    Children are :class:`XmlElement` instances or text strings.
    """

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[List[Union["XmlElement", str]]] = None,
    ):
        self.tag = tag
        self.attributes = dict(attributes or {})
        self.children = list(children or [])

    def element_children(self) -> List["XmlElement"]:
        """Child elements, in document order."""
        return [c for c in self.children if isinstance(c, XmlElement)]

    def text_content(self) -> str:
        """Concatenated character data directly under this element."""
        return "".join(c for c in self.children if isinstance(c, str))

    def __repr__(self) -> str:
        return f"XmlElement({self.tag!r}, children={len(self.children)})"


_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_.:\-]*")
_ATTR_RE = re.compile(
    r"\s*([A-Za-z_:][A-Za-z0-9_.:\-]*)\s*=\s*(\"[^\"]*\"|'[^']*')"
)


def _unescape(text: str) -> str:
    def replace(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name.startswith("#x") or name.startswith("#X"):
            return chr(int(name[2:], 16))
        if name.startswith("#"):
            return chr(int(name[1:]))
        if name in _ENTITIES:
            return _ENTITIES[name]
        raise XmlError(f"unknown entity &{name};")

    return re.sub(r"&([^;]+);", replace, text)


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def parse_xml(text: str) -> XmlElement:
    """Parse an XML fragment with a single document element."""
    parser = _XmlParser(text)
    element = parser.parse_document()
    return element


class _XmlParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XmlError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlError(f"{message} (line {line})")

    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, and a doctype before/after the root."""
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos)
                if end < 0:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error("unterminated doctype")
                self.pos = end + 1
            else:
                return

    def parse_document(self) -> XmlElement:
        self.skip_misc()
        if self.pos >= len(self.text) or self.text[self.pos] != "<":
            raise self.error("expected document element")
        element = self.parse_element()
        self.skip_misc()
        if self.pos < len(self.text):
            raise self.error("content after document element")
        return element

    def parse_element(self) -> XmlElement:
        assert self.text[self.pos] == "<"
        self.pos += 1
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            raise self.error("expected element name")
        tag = match.group()
        self.pos = match.end()
        attributes: Dict[str, str] = {}
        while True:
            attr = _ATTR_RE.match(self.text, self.pos)
            if attr is None:
                break
            attributes[attr.group(1)] = _unescape(attr.group(2)[1:-1])
            self.pos = attr.end()
        self.skip_spaces()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return XmlElement(tag, attributes)
        if not self.text.startswith(">", self.pos):
            raise self.error(f"malformed start tag <{tag}>")
        self.pos += 1
        children = self.parse_content(tag)
        return XmlElement(tag, attributes, children)

    def skip_spaces(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def parse_content(self, tag: str) -> List[Union[XmlElement, str]]:
        children: List[Union[XmlElement, str]] = []
        buffer: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated element <{tag}>")
            if self.text.startswith("</", self.pos):
                end = self.text.find(">", self.pos)
                if end < 0:
                    raise self.error(f"malformed end tag in <{tag}>")
                closing = self.text[self.pos + 2 : end].strip()
                if closing != tag:
                    raise self.error(
                        f"mismatched end tag </{closing}> for <{tag}>"
                    )
                self.pos = end + 1
                break
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end < 0:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                end = self.text.find("]]>", self.pos)
                if end < 0:
                    raise self.error("unterminated CDATA section")
                buffer.append(self.text[self.pos + 9 : end])
                self.pos = end + 3
                continue
            if self.text.startswith("<", self.pos):
                if buffer:
                    children.append(_unescape("".join(buffer)))
                    buffer = []
                children.append(self.parse_element())
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag < 0:
                raise self.error(f"unterminated element <{tag}>")
            buffer.append(self.text[self.pos : next_tag])
            self.pos = next_tag
        if buffer:
            children.append(_unescape("".join(buffer)))
        return children


def from_xml(text: str, oid_prefix: str = "o") -> DataGraph:
    """Encode an XML fragment as a data graph, per Section 2.

    The result's root is a synthetic ordered node ``<prefix>1`` with one
    edge labelled by the document element's tag.
    """
    element = parse_xml(text)
    nodes: List[Node] = []
    counter = [1]

    def fresh_oid() -> str:
        oid = f"{oid_prefix}{counter[0]}"
        counter[0] += 1
        return oid

    root_oid = fresh_oid()

    def encode(elem: XmlElement) -> str:
        oid = fresh_oid()
        text_parts = [
            c.strip() for c in elem.children if isinstance(c, str) and c.strip()
        ]
        element_children = elem.element_children()
        if text_parts and element_children:
            raise XmlError(
                f"mixed content in <{elem.tag}> is outside the supported subset"
            )
        edges: List[Edge] = []
        placeholder_index = len(nodes)
        nodes.append(None)  # type: ignore[arg-type]  # reserve slot, fill below
        for name, value in elem.attributes.items():
            attr_oid = fresh_oid()
            nodes.append(Node(attr_oid, NodeKind.ATOMIC, value=value))
            edges.append(Edge(f"@{name}", attr_oid))
        if text_parts and not elem.attributes:
            nodes[placeholder_index] = Node(
                oid, NodeKind.ATOMIC, value=" ".join(text_parts)
            )
            return oid
        if text_parts:
            text_oid = fresh_oid()
            nodes.append(Node(text_oid, NodeKind.ATOMIC, value=" ".join(text_parts)))
            edges.append(Edge("#text", text_oid))
        for child in element_children:
            child_oid = encode(child)
            edges.append(Edge(child.tag, child_oid))
        nodes[placeholder_index] = Node(oid, NodeKind.ORDERED, edges=edges)
        return oid

    document_oid = encode(element)
    nodes.insert(0, Node(root_oid, NodeKind.ORDERED, edges=[Edge(element.tag, document_oid)]))
    return DataGraph(nodes)


def to_xml(graph: DataGraph, indent: str = "  ") -> str:
    """Serialize a tree-shaped data graph back to XML.

    The graph must be in the image of :func:`from_xml`: a tree whose root is
    an ordered node with a single outgoing edge.
    """
    if not graph.is_tree():
        raise XmlError("only tree-shaped data graphs can be serialized to XML")
    root = graph.root_node
    if root.is_atomic or len(root.edges) != 1:
        raise XmlError("the root must be a collection node with exactly one edge")
    lines: List[str] = []

    def render(label: str, oid: str, depth: int) -> None:
        node = graph.node(oid)
        pad = indent * depth
        if node.is_atomic:
            lines.append(f"{pad}<{label}>{_escape(str(node.value))}</{label}>")
            return
        attributes = []
        body: List[Edge] = []
        for edge in node.edges:
            target = graph.node(edge.target)
            if edge.label.startswith("@") and target.is_atomic:
                attributes.append((edge.label[1:], str(target.value)))
            else:
                body.append(edge)
        attr_text = "".join(f' {name}="{_escape(value)}"' for name, value in attributes)
        if not body:
            lines.append(f"{pad}<{label}{attr_text}/>")
            return
        if len(body) == 1 and body[0].label == "#text":
            value = str(graph.node(body[0].target).value)
            lines.append(f"{pad}<{label}{attr_text}>{_escape(value)}</{label}>")
            return
        lines.append(f"{pad}<{label}{attr_text}>")
        for edge in body:
            render(edge.label, edge.target, depth + 1)
        lines.append(f"{pad}</{label}>")

    edge = root.edges[0]
    render(edge.label, edge.target, 0)
    return "\n".join(lines)
