"""Parser and printer for the Table-1 data-graph syntax.

Grammar::

    GraphDef ::= Oid=Node ; ... ; Oid=Node
    Node     ::= value | { E } | [ E ]
    E        ::= label->Oid , ... , label->Oid

Values are double-quoted strings, integers, or floats.  Oids are identifiers,
optionally prefixed with ``&`` (referenceable).  A trailing semicolon is
allowed; ``#`` starts a line comment.

Example (from Section 2 of the paper)::

    o1 = {a -> o2, b -> o3};
    o2 = [a -> o4, c -> o5, c -> o6];
    o3 = 3.14; o4 = "abc"; o5 = 2.71; o6 = 6.12
"""

from __future__ import annotations

from typing import List, Tuple

from ..lexer import TokenStream
from .model import DataGraph, Edge, Node, NodeKind


def parse_data(text: str, validate: bool = True) -> DataGraph:
    """Parse a data graph from its textual representation."""
    stream = TokenStream(text)
    nodes: List[Node] = []
    while not stream.at_end():
        nodes.append(_parse_definition(stream))
        if stream.match("OP", ";") is None:
            break
    if not stream.at_end():
        token = stream.current
        raise SyntaxError(
            f"unexpected {token.kind} {token.value!r} at line {token.line}, "
            f"column {token.column}"
        )
    return DataGraph(nodes, validate=validate)


def _parse_definition(stream: TokenStream) -> Node:
    oid = str(stream.expect("IDENT").value)
    stream.expect("OP", "=")
    if stream.match("OP", "{"):
        edges = _parse_edges(stream, "}")
        return Node(oid, NodeKind.UNORDERED, edges=edges)
    if stream.match("OP", "["):
        edges = _parse_edges(stream, "]")
        return Node(oid, NodeKind.ORDERED, edges=edges)
    token = stream.current
    if token.kind == "STRING" or token.kind == "NUMBER":
        stream.advance()
        return Node(oid, NodeKind.ATOMIC, value=token.value)
    raise SyntaxError(
        f"expected node value for {oid!r}, found {token.kind} {token.value!r} "
        f"at line {token.line}, column {token.column}"
    )


def _parse_edges(stream: TokenStream, closing: str) -> List[Edge]:
    edges: List[Edge] = []
    if stream.match("OP", closing):
        return edges
    while True:
        label = str(stream.expect("IDENT").value)
        stream.expect("ARROW")
        target = str(stream.expect("IDENT").value)
        edges.append(Edge(label, target))
        if stream.match("OP", closing):
            return edges
        stream.expect("OP", ",")


def data_to_string(graph: DataGraph, indent: bool = True) -> str:
    """Render a data graph in the Table-1 syntax (parse round-trips)."""
    separator = ";\n" if indent else "; "
    return separator.join(_render_node(node) for node in graph)


def _render_node(node: Node) -> str:
    if node.kind is NodeKind.ATOMIC:
        return f"{node.oid} = {_render_value(node.value)}"
    open_, close = ("[", "]") if node.kind is NodeKind.ORDERED else ("{", "}")
    inner = ", ".join(f"{edge.label} -> {edge.target}" for edge in node.edges)
    return f"{node.oid} = {open_}{inner}{close}"


def _render_value(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)
