"""JSON interchange for data graphs.

Two mappings are provided:

* :func:`to_json` / :func:`from_json` — a lossless structural encoding of
  the full model (kinds, oids, shared referenceable nodes, duplicate
  labels), suitable for persistence::

      {"root": "o1",
       "nodes": {"o1": {"kind": "ordered",
                        "edges": [["a", "o2"], ["a", "o3"]]},
                 "o2": {"kind": "atomic", "value": 1}, ...}}

* :func:`from_plain_json` — import ordinary JSON documents (objects,
  arrays, scalars) as data graphs, the same spirit as the paper's XML
  encoding: objects become unordered nodes (one edge per key), arrays
  ordered nodes with ``item`` edges, scalars atomic nodes.  Booleans and
  nulls are encoded as strings (the model's atomic domains are
  string/int/float).
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from .model import DataGraph, DataGraphError, Edge, Node, NodeKind


def to_json(graph: DataGraph) -> str:
    """Serialize a data graph to its canonical JSON form."""
    nodes: Dict[str, object] = {}
    for node in graph:
        if node.is_atomic:
            nodes[node.oid] = {"kind": "atomic", "value": node.value}
        else:
            nodes[node.oid] = {
                "kind": "ordered" if node.is_ordered else "unordered",
                "edges": [[edge.label, edge.target] for edge in node.edges],
            }
    return json.dumps({"root": graph.root, "nodes": nodes}, indent=2)


def from_json(text: str) -> DataGraph:
    """Parse the canonical JSON form back into a data graph.

    Raises:
        DataGraphError: on malformed structure or model violations.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataGraphError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict) or "root" not in payload or "nodes" not in payload:
        raise DataGraphError('expected {"root": ..., "nodes": {...}}')
    root = payload["root"]
    raw_nodes = payload["nodes"]
    if root not in raw_nodes:
        raise DataGraphError(f"root {root!r} is not among the nodes")
    nodes: List[Node] = []
    order = [root] + [oid for oid in raw_nodes if oid != root]
    for oid in order:
        spec = raw_nodes[oid]
        kind = spec.get("kind")
        if kind == "atomic":
            nodes.append(Node(oid, NodeKind.ATOMIC, value=spec["value"]))
        elif kind in ("ordered", "unordered"):
            edges = [Edge(label, target) for label, target in spec.get("edges", [])]
            node_kind = NodeKind.ORDERED if kind == "ordered" else NodeKind.UNORDERED
            nodes.append(Node(oid, node_kind, edges=edges))
        else:
            raise DataGraphError(f"node {oid!r}: unknown kind {kind!r}")
    return DataGraph(nodes)


#: JSON scalar/array/object value type.
Json = Union[None, bool, int, float, str, list, dict]


def from_plain_json(text_or_value: Union[str, Json], oid_prefix: str = "j") -> DataGraph:
    """Encode an ordinary JSON document as a data graph.

    Objects become unordered nodes, arrays ordered nodes with ``item``
    edges, scalars atomic nodes; the document is wrapped under a root
    with a single ``json`` edge (mirroring the XML wrapper of Section 2).
    """
    if isinstance(text_or_value, str):
        value = json.loads(text_or_value)
    else:
        value = text_or_value
    nodes: List[Node] = []
    counter = [1]

    def fresh() -> str:
        oid = f"{oid_prefix}{counter[0]}"
        counter[0] += 1
        return oid

    root_oid = fresh()

    def encode(value: Json) -> str:
        oid = fresh()
        if isinstance(value, dict):
            edges = [Edge(str(key), encode(item)) for key, item in value.items()]
            nodes.append(Node(oid, NodeKind.UNORDERED, edges=edges))
        elif isinstance(value, list):
            edges = [Edge("item", encode(item)) for item in value]
            nodes.append(Node(oid, NodeKind.ORDERED, edges=edges))
        elif isinstance(value, bool):
            nodes.append(Node(oid, NodeKind.ATOMIC, value=str(value).lower()))
        elif value is None:
            nodes.append(Node(oid, NodeKind.ATOMIC, value="null"))
        elif isinstance(value, (int, float, str)):
            nodes.append(Node(oid, NodeKind.ATOMIC, value=value))
        else:
            raise DataGraphError(f"unsupported JSON value: {value!r}")
        return oid

    document = encode(value)
    nodes.insert(0, Node(root_oid, NodeKind.ORDERED, edges=[Edge("json", document)]))
    return DataGraph(nodes)
