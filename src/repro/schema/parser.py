"""Parser and printer for the Table-1 schema syntax.

Grammar::

    SchemaDef ::= Tid=Type ; ... ; Tid=Type
    Type      ::= atomicType | { R } | [ R ]
    R         ::= (R.R) | (R|R) | (R*) | eps | label->Tid

Atomic types are ``string``, ``int``, ``float``.  Example (the Document
schema of Section 2)::

    DOCUMENT = [(paper -> PAPER)*];
    PAPER    = [title -> TITLE . (author -> AUTHOR)*];
    AUTHOR   = [name -> NAME . email -> EMAIL];
    NAME     = [firstname -> FIRSTNAME . lastname -> LASTNAME];
    TITLE = string; FIRSTNAME = string; LASTNAME = string; EMAIL = string
"""

from __future__ import annotations

from typing import List, Optional

from ..automata.parser import parse_regex, regex_to_string
from ..automata.syntax import EPSILON, Regex, sym
from ..lexer import TokenStream
from .model import ATOMIC_TYPE_NAMES, Schema, TypeDef, TypeKind


def _schema_atom(label: str, target: Optional[str]) -> Regex:
    if target is None:
        raise SyntaxError(f"schema atom {label!r} is missing its '-> Tid' part")
    return sym((label, target))


def parse_schema(text: str, validate: bool = True) -> Schema:
    """Parse a schema from its textual representation."""
    stream = TokenStream(text)
    types: List[TypeDef] = []
    while not stream.at_end():
        types.append(_parse_definition(stream))
        if stream.match("OP", ";") is None:
            break
    if not stream.at_end():
        token = stream.current
        raise SyntaxError(
            f"unexpected {token.kind} {token.value!r} at line {token.line}, "
            f"column {token.column}"
        )
    return Schema(types, validate=validate)


def _parse_definition(stream: TokenStream) -> TypeDef:
    tid = str(stream.expect("IDENT").value)
    stream.expect("OP", "=")
    if stream.match("OP", "{"):
        if stream.match("OP", "}"):
            return TypeDef(tid, TypeKind.UNORDERED, regex=EPSILON)
        regex = parse_regex(stream, _schema_atom, allow_arrow=True, allow_wildcard=False)
        stream.expect("OP", "}")
        return TypeDef(tid, TypeKind.UNORDERED, regex=regex)
    if stream.match("OP", "["):
        if stream.match("OP", "]"):
            return TypeDef(tid, TypeKind.ORDERED, regex=EPSILON)
        regex = parse_regex(stream, _schema_atom, allow_arrow=True, allow_wildcard=False)
        stream.expect("OP", "]")
        return TypeDef(tid, TypeKind.ORDERED, regex=regex)
    token = stream.expect("IDENT")
    name = str(token.value)
    if name not in ATOMIC_TYPE_NAMES:
        raise SyntaxError(
            f"unknown atomic type {name!r} for {tid!r} at line {token.line} "
            f"(expected one of {', '.join(ATOMIC_TYPE_NAMES)})"
        )
    return TypeDef(tid, TypeKind.ATOMIC, atomic=name)


def schema_to_string(schema: Schema, indent: bool = True) -> str:
    """Render a schema in the Table-1 syntax (parse round-trips)."""
    separator = ";\n" if indent else "; "
    return separator.join(_render_type(type_def) for type_def in schema)


def _render_type(type_def: TypeDef) -> str:
    if type_def.is_atomic:
        return f"{type_def.tid} = {type_def.atomic}"
    open_, close = ("[", "]") if type_def.is_ordered else ("{", "}")
    body = regex_to_string(type_def.regex, _show_schema_atom)
    return f"{type_def.tid} = {open_}{body}{close}"


def _show_schema_atom(symbol: object) -> str:
    label, target = symbol  # type: ignore[misc]
    return f"{label}->{target}"
