"""Label predicates in schemas (the Section 2 remark).

ScmDL allows *predicates* in place of constant labels in type
definitions, e.g. ``AUTHOR = [isName -> NAME, ...]`` where ``isName`` is
a unary predicate on labels.  The paper defers the treatment to its full
version but notes all results extend "by applying directly the techniques
in [AV97]" — i.e. by partitioning the (possibly infinite) label universe
into finitely many equivalence classes: two labels behave identically
unless separated by a predicate or mentioned explicitly.

This module implements exactly that expansion:

* a :class:`LabelPredicate` is a named membership test over a declared
  finite universe (the finiteness makes the expansion *exact*; the paper
  and AV97 handle infinite alphabets by symbolic representatives, which
  here amounts to declaring one representative per partition cell);
* a :class:`PredicateSchema` is a schema whose regex atoms may carry
  predicates instead of labels;
* :meth:`PredicateSchema.expand` rewrites every predicate atom into the
  alternation of the concrete labels satisfying it (within the universe
  plus any extra labels mentioned by a query or data graph), producing a
  plain :class:`~repro.schema.model.Schema` on which conformance,
  satisfiability, inference, and the Section 4 applications all run
  unchanged.

Example::

    is_name = LabelPredicate("isName", lambda l: l.endswith("name"))
    pre = PredicateSchema([
        ("AUTHOR", TypeKind.ORDERED,
         concat(Sym((is_name, "NAME")), Sym(("email", "EMAIL")))),
        ("NAME", TypeKind.ATOMIC, "string"),
        ("EMAIL", TypeKind.ATOMIC, "string"),
    ], universe={"name", "surname", "email"})
    schema = pre.expand()
    # AUTHOR = [ (name->NAME | surname->NAME) . email->EMAIL ]
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..automata.syntax import (
    Alt,
    Any,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Star,
    Sym,
    alt,
    concat,
    star,
)
from .model import Schema, SchemaError, TypeDef, TypeKind


class LabelPredicate:
    """A named unary predicate on labels.

    Args:
        name: display name (used in errors and repr).
        test: membership function on label strings.
    """

    __slots__ = ("name", "test")

    def __init__(self, name: str, test: Callable[[str], bool]):
        self.name = name
        self.test = test

    def __call__(self, label: str) -> bool:
        return bool(self.test(label))

    def __repr__(self) -> str:
        return f"LabelPredicate({self.name!r})"

    # Identity-based hashing/equality: predicates are opaque functions.


#: A pre-expansion atom: (label or predicate, target type id).
PredicateAtom = Tuple[Union[str, LabelPredicate], str]


class PredicateSchema:
    """A schema whose regex atoms may use label predicates.

    Args:
        types: ``(tid, kind, payload)`` triples; payload is the atomic
            domain name for atomic kinds and a regex over
            :data:`PredicateAtom` symbols for collection kinds.
        universe: the declared label universe predicates range over.
            Expansion is exact for this universe (plus any extra labels
            supplied at expansion time).
    """

    def __init__(
        self,
        types: Sequence[Tuple[str, TypeKind, object]],
        universe: Iterable[str],
    ):
        self.types = list(types)
        self.universe = frozenset(universe)
        if not self.types:
            raise SchemaError("a schema needs at least one type definition")

    def predicates(self) -> List[LabelPredicate]:
        """All predicates occurring in the definitions."""
        found: List[LabelPredicate] = []
        seen: set = set()
        for _tid, kind, payload in self.types:
            if kind is TypeKind.ATOMIC:
                continue
            for symbol in payload.symbols():  # type: ignore[union-attr]
                head = symbol[0]
                if isinstance(head, LabelPredicate) and id(head) not in seen:
                    seen.add(id(head))
                    found.append(head)
        return found

    def expand(self, extra_labels: Iterable[str] = ()) -> Schema:
        """Expand predicates into alternations over concrete labels.

        ``extra_labels`` should include every label mentioned by the
        query/data the expanded schema will be used with, so predicate
        membership is decided for them too (the AV97 partition refinement).

        Raises:
            SchemaError: if some predicate matches no label at all (its
                atoms would be unsatisfiable — surfaced early on purpose).
        """
        labels = self.universe | frozenset(extra_labels)
        expanded_types: List[TypeDef] = []
        for tid, kind, payload in self.types:
            if kind is TypeKind.ATOMIC:
                expanded_types.append(TypeDef(tid, kind, atomic=payload))
                continue
            regex = _expand_regex(payload, labels)  # type: ignore[arg-type]
            expanded_types.append(TypeDef(tid, kind, regex=regex))
        return Schema(expanded_types)


def _expand_regex(regex: Regex, labels: FrozenSet[str]) -> Regex:
    if isinstance(regex, (Empty, Epsilon)):
        return regex
    if isinstance(regex, Sym):
        head, target = regex.symbol  # type: ignore[misc]
        if isinstance(head, LabelPredicate):
            matching = sorted(label for label in labels if head(label))
            if not matching:
                raise SchemaError(
                    f"predicate {head.name!r} matches no label in the universe"
                )
            return alt(*(Sym((label, target)) for label in matching))
        return regex
    if isinstance(regex, Any):
        raise SchemaError("wildcards are not allowed in schemas")
    if isinstance(regex, Concat):
        return concat(*(_expand_regex(part, labels) for part in regex.parts))
    if isinstance(regex, Alt):
        return alt(*(_expand_regex(part, labels) for part in regex.parts))
    if isinstance(regex, Star):
        return star(_expand_regex(regex.inner, labels))
    raise TypeError(f"unknown regex node: {regex!r}")


def expand_for_query(pre_schema: PredicateSchema, query) -> Schema:
    """Expand a predicate schema against a query's mentioned labels.

    Collects every constant label in the query's path expressions so that
    satisfiability/type checking on the expanded schema is exact.
    """
    labels: set = set()
    for pattern in query.patterns:
        for arm in pattern.arms:
            if not arm.is_label_var:
                labels |= {
                    symbol for symbol in arm.path.symbols() if isinstance(symbol, str)
                }
    return pre_schema.expand(labels)


def expand_for_data(pre_schema: PredicateSchema, graph) -> Schema:
    """Expand a predicate schema against a data graph's labels.

    Conformance of ``graph`` to the predicate schema is exactly
    conformance to the expansion, because every edge label of the graph
    is classified by every predicate.
    """
    return pre_schema.expand(graph.labels())
