"""DTDs as schemas (Section 2).

The paper observes that a DTD is a schema in which (1) all types are
ordered, (2) all types are tagged (labels and type ids are in one-to-one
correspondence), and (3) all types are non-referenceable.  This module
translates between DTD element declarations and ScmDL schemas:

* :func:`parse_dtd` turns declarations like::

      <!ELEMENT paper  (title, (author)*)>
      <!ELEMENT title  #PCDATA>

  into a :class:`~repro.schema.model.Schema` whose type ids are the
  upper-cased element names (disambiguated on collision), preserving the
  label/type bijection — the result is always in the DTD⁻ class.

* :func:`schema_to_dtd` renders a DTD⁻ schema back as element declarations.

Supported content models: ``#PCDATA``, ``EMPTY``, ``ANY``, and the usual
regular operators ``,`` (sequence), ``|`` (choice), ``*``, ``+``, ``?`` and
parentheses.  (Strict XML requires ``#PCDATA`` only inside mixed-content
choices; like the paper, we use the relaxed form where ``#PCDATA`` alone
declares a text element.)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..automata.parser import regex_to_string
from ..automata.syntax import EPSILON, Regex, alt, concat, opt, plus, star, sym
from .model import Schema, TypeDef, TypeKind

_DECL_RE = re.compile(r"<!ELEMENT\s+([A-Za-z_:][A-Za-z0-9_.:\-]*)\s+(.*?)>", re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)


class DtdError(ValueError):
    """Raised on malformed DTD input or non-DTD⁻ schemas at export time."""


def parse_dtd(text: str, wrap: bool = False) -> Schema:
    """Parse element declarations into a DTD⁻ schema.

    The first declared element becomes the root type.  With ``wrap=True``
    a synthetic root type ``DOCROOT = [name -> TID]`` is prepended, where
    ``name`` is the first declared element — matching the synthetic root
    object that :func:`repro.data.from_xml` adds around a document whose
    root element is that first declaration.
    """
    text = _COMMENT_RE.sub(" ", text)
    declarations = _DECL_RE.findall(text)
    if not declarations:
        raise DtdError("no <!ELEMENT ...> declarations found")
    names = [name for name, _content in declarations]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise DtdError(f"duplicate element declarations: {duplicates}")
    tid_of = _assign_tids(names)
    types: List[TypeDef] = []
    for name, content in declarations:
        types.append(_declaration_to_type(name, content.strip(), tid_of))
    if wrap:
        from ..automata.syntax import sym

        first = names[0]
        wrapper = TypeDef(
            "DOCROOT", TypeKind.ORDERED, regex=sym((first, tid_of[first]))
        )
        types.insert(0, wrapper)
    return Schema(types)


def _assign_tids(names: List[str]) -> Dict[str, str]:
    """Map element names to unique upper-cased type ids."""
    tid_of: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for name in names:
        base = name.upper()
        if base in used:
            used[base] += 1
            tid = f"{base}_{used[base]}"
        else:
            used[base] = 0
            tid = base
        tid_of[name] = tid
    return tid_of


def _declaration_to_type(name: str, content: str, tid_of: Dict[str, str]) -> TypeDef:
    tid = tid_of[name]
    if content == "#PCDATA" or content == "(#PCDATA)":
        return TypeDef(tid, TypeKind.ATOMIC, atomic="string")
    if content == "EMPTY":
        return TypeDef(tid, TypeKind.ORDERED, regex=EPSILON)
    if content == "ANY":
        anything = alt(*(sym((n, t)) for n, t in tid_of.items()))
        return TypeDef(tid, TypeKind.ORDERED, regex=star(anything))
    regex = _ContentParser(content, tid_of, name).parse()
    return TypeDef(tid, TypeKind.ORDERED, regex=regex)


class _ContentParser:
    """Recursive-descent parser for DTD content models."""

    def __init__(self, text: str, tid_of: Dict[str, str], element: str):
        self.tokens = re.findall(r"[(),|*+?]|#?[A-Za-z_:][A-Za-z0-9_.:\-]*", text)
        self.pos = 0
        self.tid_of = tid_of
        self.element = element

    def error(self, message: str) -> DtdError:
        return DtdError(f"in content model of <!ELEMENT {self.element}>: {message}")

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def parse(self) -> Regex:
        regex = self.parse_choice_or_seq()
        if self.pos != len(self.tokens):
            raise self.error(f"trailing tokens {self.tokens[self.pos:]}")
        return regex

    def parse_choice_or_seq(self) -> Regex:
        first = self.parse_unit()
        if self.peek() == ",":
            parts = [first]
            while self.peek() == ",":
                self.advance()
                parts.append(self.parse_unit())
            return concat(*parts)
        if self.peek() == "|":
            parts = [first]
            while self.peek() == "|":
                self.advance()
                parts.append(self.parse_unit())
            return alt(*parts)
        return first

    def parse_unit(self) -> Regex:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of content model")
        if token == "(":
            self.advance()
            inner = self.parse_choice_or_seq()
            if self.peek() != ")":
                raise self.error("missing ')'")
            self.advance()
            regex = inner
        elif re.fullmatch(r"[A-Za-z_:][A-Za-z0-9_.:\-]*", token):
            self.advance()
            if token not in self.tid_of:
                raise self.error(f"reference to undeclared element {token!r}")
            regex = sym((token, self.tid_of[token]))
        else:
            raise self.error(f"unexpected token {token!r}")
        while self.peek() in ("*", "+", "?"):
            operator = self.advance()
            if operator == "*":
                regex = star(regex)
            elif operator == "+":
                regex = plus(regex)
            else:
                regex = opt(regex)
        return regex


def schema_to_dtd(schema: Schema) -> str:
    """Render a DTD⁻ schema as element declarations.

    Raises:
        DtdError: if the schema is not in the DTD⁻ class, or its tagging
            does not give every type a unique label.
    """
    if not schema.is_dtd_minus():
        raise DtdError("only DTD- schemas (ordered, tagged, tree) export to DTDs")
    label_of: Dict[str, str] = {}
    for label, targets in schema.tag_relation().items():
        (target,) = targets
        label_of[target] = label
    lines: List[str] = []
    for type_def in schema:
        name = label_of.get(type_def.tid)
        if name is None:
            if type_def.tid == schema.root:
                name = type_def.tid
            else:
                # Unreferenced, unreachable type: skip it.
                continue
        if type_def.is_atomic:
            lines.append(f"<!ELEMENT {name} #PCDATA>")
            continue
        body = _regex_to_content(type_def.regex)
        lines.append(f"<!ELEMENT {name} {body}>")
    return "\n".join(lines)


def _regex_to_content(regex: Regex) -> str:
    from ..automata.syntax import Epsilon

    if isinstance(regex, Epsilon):
        return "EMPTY"
    text = regex_to_string(regex, lambda symbol: symbol[0])
    text = text.replace(".", ", ")
    if not text.startswith("("):
        text = f"({text})"
    return text
