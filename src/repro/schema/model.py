"""ScmDL schemas (Section 2, following [BM99]).

A schema is a sequence of type definitions ``Tid = atomicType | {R} | [R]``
where ``R`` is a regular expression over ``label -> Tid`` pairs.  The first
type id is the root type.  Type ids starting with ``&`` are referenceable.

This module provides the schema model plus the classifiers that drive
Table 2:

* **ordered** schemas (all collection types ordered), optionally relaxed
  with *homogeneous* unordered collections ``{(a -> T)*}``;
* **tagged** schemas (the occurs-relation between labels and type ids is
  one-to-one);
* **tree** schemas (no referenceable types);
* the **DTD⁻** (ordered+tagged+tree) and **DTD⁺** (ordered+tagged) classes.

It also provides the *schema graph* Γ(S) used throughout Section 3.4: the
edges ``T --(a)--> T'`` that can occur in some instance, restricted to
*inhabited* types (types with at least one finite instance).
"""

from __future__ import annotations

import enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..automata import (
    NFA,
    Regex,
    Sym,
    homogeneous_alternatives,
    thompson,
)
from ..data.model import AtomicValue


class TypeKind(enum.Enum):
    """The three type shapes of Table 1."""

    ATOMIC = "atomic"
    UNORDERED = "unordered"
    ORDERED = "ordered"


#: The atomic types of the model.  ``string``/``int``/``float`` are the
#: base domains used in the paper's examples.
ATOMIC_TYPE_NAMES = ("string", "int", "float")


def atomic_matches(atomic_type: str, value: AtomicValue) -> bool:
    """Return True if ``value`` belongs to the named atomic type."""
    if atomic_type == "string":
        return isinstance(value, str)
    if atomic_type == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if atomic_type == "float":
        return isinstance(value, float)
    raise ValueError(f"unknown atomic type {atomic_type!r}")


def atomic_types_overlap(left: str, right: str) -> bool:
    """True if two atomic types share at least one value (used for joins)."""
    return left == right


class TypeDef:
    """One type definition.

    For atomic types, ``atomic`` names the base domain.  For collection
    types, ``regex`` is a regular expression whose atoms are
    ``(label, tid)`` tuples.
    """

    __slots__ = ("tid", "kind", "atomic", "regex")

    def __init__(
        self,
        tid: str,
        kind: TypeKind,
        atomic: Optional[str] = None,
        regex: Optional[Regex] = None,
    ):
        if kind is TypeKind.ATOMIC:
            if atomic not in ATOMIC_TYPE_NAMES:
                raise ValueError(
                    f"type {tid!r}: unknown atomic type {atomic!r} "
                    f"(expected one of {ATOMIC_TYPE_NAMES})"
                )
            if regex is not None:
                raise ValueError(f"atomic type {tid!r} cannot carry a regex")
        else:
            if regex is None:
                raise ValueError(f"collection type {tid!r} requires a regex")
            if atomic is not None:
                raise ValueError(f"collection type {tid!r} cannot carry an atomic domain")
            for symbol in regex.symbols():
                if not (isinstance(symbol, tuple) and len(symbol) == 2):
                    raise ValueError(
                        f"type {tid!r}: regex atom {symbol!r} is not a "
                        "(label, tid) pair"
                    )
            if regex.has_wildcard():
                raise ValueError(f"type {tid!r}: wildcards are not allowed in schemas")
        self.tid = tid
        self.kind = kind
        self.atomic = atomic
        self.regex = regex

    @property
    def is_referenceable(self) -> bool:
        return self.tid.startswith("&")

    @property
    def is_atomic(self) -> bool:
        return self.kind is TypeKind.ATOMIC

    @property
    def is_ordered(self) -> bool:
        return self.kind is TypeKind.ORDERED

    @property
    def is_unordered(self) -> bool:
        return self.kind is TypeKind.UNORDERED

    def symbols(self) -> FrozenSet[Tuple[str, str]]:
        """The ``(label, tid)`` atoms occurring in this definition."""
        if self.regex is None:
            return frozenset()
        return self.regex.symbols()  # type: ignore[return-value]

    def is_homogeneous_unordered(self) -> bool:
        """True for unordered types of the form ``{(a1->T1 | ... | ak->Tk)*}``.

        The paper's relaxation of ordered schemas admits homogeneous
        unordered collections ``{(a->T)*}``; we also accept the union form,
        which keeps bag membership PTIME (see :mod:`repro.automata.bag`).
        """
        if self.kind is not TypeKind.UNORDERED:
            return False
        return homogeneous_alternatives(self.regex) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeDef):
            return NotImplemented
        return (
            self.tid == other.tid
            and self.kind == other.kind
            and self.atomic == other.atomic
            and self.regex == other.regex
        )

    def __hash__(self) -> int:
        return hash((self.tid, self.kind, self.atomic, self.regex))

    def __repr__(self) -> str:
        if self.is_atomic:
            return f"TypeDef({self.tid!r}, {self.atomic})"
        brackets = "[]" if self.is_ordered else "{}"
        return f"TypeDef({self.tid!r}, {brackets[0]}{self.regex!r}{brackets[1]})"


class SchemaError(ValueError):
    """Raised when a schema violates well-formedness rules."""


class Schema:
    """A well-formed ScmDL schema.

    Args:
        types: type definitions in order; the first is the root type.
        validate: if True (default), check that every referenced tid is
            defined and that every type is inhabited by some finite instance.
    """

    __slots__ = ("types", "root", "_edges_cache", "_inhabited_cache")

    def __init__(self, types: Iterable[TypeDef], validate: bool = True):
        type_list = list(types)
        if not type_list:
            raise SchemaError("a schema needs at least one type definition")
        self.types: Dict[str, TypeDef] = {}
        for type_def in type_list:
            if type_def.tid in self.types:
                raise SchemaError(f"type {type_def.tid!r} defined more than once")
            self.types[type_def.tid] = type_def
        self.root = type_list[0].tid
        self._edges_cache: Optional[Dict[str, FrozenSet[Tuple[str, str]]]] = None
        self._inhabited_cache: Optional[FrozenSet[str]] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        for type_def in self.types.values():
            for _label, target in type_def.symbols():
                if target not in self.types:
                    raise SchemaError(
                        f"type {type_def.tid!r} references undefined type {target!r}"
                    )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def type(self, tid: str) -> TypeDef:
        """Return the definition of ``tid`` (KeyError if undefined)."""
        return self.types[tid]

    @property
    def root_type(self) -> TypeDef:
        return self.types[self.root]

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self) -> Iterator[TypeDef]:
        return iter(self.types.values())

    def __contains__(self, tid: str) -> bool:
        return tid in self.types

    def tids(self) -> Tuple[str, ...]:
        return tuple(self.types)

    def labels(self) -> FrozenSet[str]:
        """All labels occurring in the schema."""
        return frozenset(
            label for type_def in self for label, _target in type_def.symbols()
        )

    def symbol_alphabet(self) -> FrozenSet[Tuple[str, str]]:
        """All ``(label, tid)`` atoms occurring anywhere in the schema."""
        result: Set[Tuple[str, str]] = set()
        for type_def in self:
            result.update(type_def.symbols())
        return frozenset(result)

    def compile_regex(self, tid: str) -> NFA:
        """Compile the regex of a collection type over the schema alphabet."""
        type_def = self.types[tid]
        if type_def.regex is None:
            raise SchemaError(f"type {tid!r} is atomic and has no regex")
        return thompson(type_def.regex, self.symbol_alphabet())

    # ------------------------------------------------------------------
    # Classification (the Table-2 schema restrictions)
    # ------------------------------------------------------------------

    def is_ordered(self, allow_homogeneous: bool = False) -> bool:
        """True if all collection types are ordered.

        With ``allow_homogeneous=True``, homogeneous unordered collections
        are also admitted (the relaxation of Section 3).
        """
        for type_def in self:
            if type_def.is_unordered:
                if not (allow_homogeneous and type_def.is_homogeneous_unordered()):
                    return False
        return True

    def tag_relation(self) -> Dict[str, Set[str]]:
        """The occurs-relation: label -> set of type ids it points to."""
        relation: Dict[str, Set[str]] = {}
        for type_def in self:
            for label, target in type_def.symbols():
                relation.setdefault(label, set()).add(target)
        return relation

    def is_tagged(self) -> bool:
        """True if the label/type-id occurs-relation is one-to-one."""
        relation = self.tag_relation()
        targets_seen: Set[str] = set()
        for targets in relation.values():
            if len(targets) != 1:
                return False
            (target,) = targets
            if target in targets_seen:
                return False
            targets_seen.add(target)
        return True

    def tag_of(self, label: str) -> Optional[str]:
        """For tagged schemas: the unique type id a label points to."""
        targets = self.tag_relation().get(label)
        if targets and len(targets) == 1:
            return next(iter(targets))
        return None

    def is_tree(self) -> bool:
        """True if the schema has no referenceable types."""
        return not any(type_def.is_referenceable for type_def in self)

    def is_dtd_minus(self) -> bool:
        """True for the DTD⁻ class: ordered, tagged, tree."""
        return self.is_ordered() and self.is_tagged() and self.is_tree()

    def is_dtd_plus(self) -> bool:
        """True for the DTD⁺ class: ordered, tagged."""
        return self.is_ordered() and self.is_tagged()

    # ------------------------------------------------------------------
    # Inhabitation and the schema graph Γ(S)
    # ------------------------------------------------------------------

    def inhabited_types(self) -> FrozenSet[str]:
        """Type ids with at least one finite conforming instance.

        Least fixpoint: atomic types are inhabited; a collection type is
        inhabited once its regex accepts some word using only inhabited
        targets.
        """
        if self._inhabited_cache is not None:
            return self._inhabited_cache
        inhabited: Set[str] = {t.tid for t in self if t.is_atomic}
        changed = True
        compiled = {
            t.tid: self.compile_regex(t.tid) for t in self if not t.is_atomic
        }
        while changed:
            changed = False
            for type_def in self:
                if type_def.tid in inhabited or type_def.is_atomic:
                    continue
                nfa = compiled[type_def.tid]
                restricted = _restrict_to_targets(nfa, inhabited)
                if not restricted.is_empty():
                    inhabited.add(type_def.tid)
                    changed = True
        self._inhabited_cache = frozenset(inhabited)
        return self._inhabited_cache

    def inhabitation_ranks(self) -> Dict[str, int]:
        """Fixpoint round at which each inhabited type gained an instance.

        Atomic types have rank 0; a collection type of rank ``r`` accepts
        some content word whose targets all have rank strictly below
        ``r``.  Useful for constructing *minimal* instances: following
        rank-decreasing words always terminates.  Uninhabited types are
        absent from the result.
        """
        ranks: Dict[str, int] = {t.tid: 0 for t in self if t.is_atomic}
        compiled = {
            t.tid: self.compile_regex(t.tid) for t in self if not t.is_atomic
        }
        round_index = 0
        changed = True
        while changed:
            changed = False
            round_index += 1
            known = set(ranks)
            for type_def in self:
                if type_def.tid in ranks or type_def.is_atomic:
                    continue
                restricted = _restrict_to_targets(compiled[type_def.tid], known)
                if not restricted.is_empty():
                    ranks[type_def.tid] = round_index
                    changed = True
        return ranks

    def possible_edges(self) -> Dict[str, FrozenSet[Tuple[str, str]]]:
        """The schema graph Γ(S): for each type, the ``(label, tid)`` pairs
        that occur in some instance of that type.

        A pair qualifies if it appears in some word of the type's regex in
        which every symbol targets an inhabited type.
        """
        if self._edges_cache is not None:
            return self._edges_cache
        inhabited = self.inhabited_types()
        result: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        for type_def in self:
            if type_def.is_atomic:
                result[type_def.tid] = frozenset()
                continue
            nfa = self.compile_regex(type_def.tid)
            restricted = _restrict_to_targets(nfa, inhabited)
            result[type_def.tid] = frozenset(restricted.useful_symbols())
        self._edges_cache = result
        return self._edges_cache

    def reachable_types(self) -> FrozenSet[str]:
        """Types reachable from the root through Γ(S)."""
        edges = self.possible_edges()
        seen = {self.root}
        stack = [self.root]
        while stack:
            tid = stack.pop()
            for _label, target in edges.get(tid, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.root == other.root and self.types == other.types

    def __hash__(self) -> int:
        return hash((self.root, tuple(self.types.values())))

    def __repr__(self) -> str:
        return f"Schema(root={self.root!r}, types={len(self.types)})"


def _restrict_to_targets(nfa: NFA, allowed_targets: Set[str]) -> NFA:
    """Drop arcs whose ``(label, tid)`` symbol targets a type outside the set."""
    from ..automata.nfa import EPS

    transitions = {}
    for src, arcs in nfa.transitions.items():
        kept = [
            (symbol, dst)
            for symbol, dst in arcs
            if symbol is EPS or symbol[1] in allowed_targets
        ]
        if kept:
            transitions[src] = kept
    return NFA(nfa.n_states, nfa.alphabet, nfa.start, nfa.accepting, transitions)
