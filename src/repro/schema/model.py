"""ScmDL schemas (Section 2, following [BM99]).

A schema is a sequence of type definitions ``Tid = atomicType | {R} | [R]``
where ``R`` is a regular expression over ``label -> Tid`` pairs.  The first
type id is the root type.  Type ids starting with ``&`` are referenceable.

This module provides the schema model plus the classifiers that drive
Table 2:

* **ordered** schemas (all collection types ordered), optionally relaxed
  with *homogeneous* unordered collections ``{(a -> T)*}``;
* **tagged** schemas (the occurs-relation between labels and type ids is
  one-to-one);
* **tree** schemas (no referenceable types);
* the **DTD⁻** (ordered+tagged+tree) and **DTD⁺** (ordered+tagged) classes.

It also provides the *schema graph* Γ(S) used throughout Section 3.4: the
edges ``T --(a)--> T'`` that can occur in some instance, restricted to
*inhabited* types (types with at least one finite instance).
"""

from __future__ import annotations

import enum
import hashlib
from types import MappingProxyType
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..automata import (
    NFA,
    Regex,
    Sym,
    homogeneous_alternatives,
)
from ..data.model import AtomicValue

if TYPE_CHECKING:  # pragma: no cover - the engine imports this module lazily
    from ..engine import Engine


class TypeKind(enum.Enum):
    """The three type shapes of Table 1."""

    ATOMIC = "atomic"
    UNORDERED = "unordered"
    ORDERED = "ordered"


#: The atomic types of the model.  ``string``/``int``/``float`` are the
#: base domains used in the paper's examples.
ATOMIC_TYPE_NAMES = ("string", "int", "float")


def atomic_matches(atomic_type: str, value: AtomicValue) -> bool:
    """Return True if ``value`` belongs to the named atomic type."""
    if atomic_type == "string":
        return isinstance(value, str)
    if atomic_type == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if atomic_type == "float":
        return isinstance(value, float)
    raise ValueError(f"unknown atomic type {atomic_type!r}")


def atomic_types_overlap(left: str, right: str) -> bool:
    """True if two atomic types share at least one value (used for joins)."""
    return left == right


class TypeDef:
    """One type definition.

    For atomic types, ``atomic`` names the base domain.  For collection
    types, ``regex`` is a regular expression whose atoms are
    ``(label, tid)`` tuples.

    Definitions are immutable after construction: they are ingredients of
    :meth:`Schema.fingerprint`, so in-place mutation would silently
    invalidate every cache entry keyed on the fingerprint.
    """

    __slots__ = ("tid", "kind", "atomic", "regex")

    def __init__(
        self,
        tid: str,
        kind: TypeKind,
        atomic: Optional[str] = None,
        regex: Optional[Regex] = None,
    ):
        if kind is TypeKind.ATOMIC:
            if atomic not in ATOMIC_TYPE_NAMES:
                raise ValueError(
                    f"type {tid!r}: unknown atomic type {atomic!r} "
                    f"(expected one of {ATOMIC_TYPE_NAMES})"
                )
            if regex is not None:
                raise ValueError(f"atomic type {tid!r} cannot carry a regex")
        else:
            if regex is None:
                raise ValueError(f"collection type {tid!r} requires a regex")
            if atomic is not None:
                raise ValueError(f"collection type {tid!r} cannot carry an atomic domain")
            for symbol in regex.symbols():
                if not (isinstance(symbol, tuple) and len(symbol) == 2):
                    raise ValueError(
                        f"type {tid!r}: regex atom {symbol!r} is not a "
                        "(label, tid) pair"
                    )
            if regex.has_wildcard():
                raise ValueError(f"type {tid!r}: wildcards are not allowed in schemas")
        object.__setattr__(self, "tid", tid)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "atomic", atomic)
        object.__setattr__(self, "regex", regex)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"TypeDef is immutable (attempted to set {name!r}); "
            "build a new definition instead"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError("TypeDef is immutable")

    # Slots plus the immutability guard defeat default pickling; restore
    # through object.__setattr__ (validation already ran when the original
    # was built).
    def __getstate__(self):
        return (self.tid, self.kind, self.atomic, self.regex)

    def __setstate__(self, state) -> None:
        tid, kind, atomic, regex = state
        object.__setattr__(self, "tid", tid)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "atomic", atomic)
        object.__setattr__(self, "regex", regex)

    @property
    def is_referenceable(self) -> bool:
        return self.tid.startswith("&")

    @property
    def is_atomic(self) -> bool:
        return self.kind is TypeKind.ATOMIC

    @property
    def is_ordered(self) -> bool:
        return self.kind is TypeKind.ORDERED

    @property
    def is_unordered(self) -> bool:
        return self.kind is TypeKind.UNORDERED

    def symbols(self) -> FrozenSet[Tuple[str, str]]:
        """The ``(label, tid)`` atoms occurring in this definition."""
        if self.regex is None:
            return frozenset()
        return self.regex.symbols()  # type: ignore[return-value]

    def is_homogeneous_unordered(self) -> bool:
        """True for unordered types of the form ``{(a1->T1 | ... | ak->Tk)*}``.

        The paper's relaxation of ordered schemas admits homogeneous
        unordered collections ``{(a->T)*}``; we also accept the union form,
        which keeps bag membership PTIME (see :mod:`repro.automata.bag`).
        """
        if self.kind is not TypeKind.UNORDERED:
            return False
        return homogeneous_alternatives(self.regex) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeDef):
            return NotImplemented
        return (
            self.tid == other.tid
            and self.kind == other.kind
            and self.atomic == other.atomic
            and self.regex == other.regex
        )

    def __hash__(self) -> int:
        return hash((self.tid, self.kind, self.atomic, self.regex))

    def __repr__(self) -> str:
        if self.is_atomic:
            return f"TypeDef({self.tid!r}, {self.atomic})"
        brackets = "[]" if self.is_ordered else "{}"
        return f"TypeDef({self.tid!r}, {brackets[0]}{self.regex!r}{brackets[1]})"


class SchemaError(ValueError):
    """Raised when a schema violates well-formedness rules."""


class Schema:
    """A well-formed ScmDL schema.

    Args:
        types: type definitions in order; the first is the root type.
        validate: if True (default), check that every referenced tid is
            defined and that every type is inhabited by some finite instance.
    """

    __slots__ = ("types", "root", "_fingerprint", "_edges_cache", "_inhabited_cache")

    def __init__(self, types: Iterable[TypeDef], validate: bool = True):
        type_list = list(types)
        if not type_list:
            raise SchemaError("a schema needs at least one type definition")
        self._fingerprint: Optional[str] = None
        types_map: Dict[str, TypeDef] = {}
        for type_def in type_list:
            if type_def.tid in types_map:
                raise SchemaError(f"type {type_def.tid!r} defined more than once")
            types_map[type_def.tid] = type_def
        self.types: Dict[str, TypeDef] = types_map
        self.root = type_list[0].tid
        self._edges_cache: Optional[Dict[str, FrozenSet[Tuple[str, str]]]] = None
        self._inhabited_cache: Optional[FrozenSet[str]] = None
        if validate:
            self._validate()

    def __setattr__(self, name: str, value: object) -> None:
        # Once fingerprinted, the schema may be used as a cache key, so its
        # observable state is frozen.  Private caches stay rebindable.
        if not name.startswith("_") and getattr(self, "_fingerprint", None) is not None:
            raise SchemaError(
                f"schema is frozen: it was fingerprinted and may back cache "
                f"entries (attempted to set {name!r})"
            )
        object.__setattr__(self, name, value)

    # A frozen schema holds its types in a MappingProxyType (unpicklable)
    # and rejects ordinary setattr, so pickling goes through the type list.
    # The fingerprint is recomputed on restore — it is a pure function of
    # the definitions, so equal schemas keep equal fingerprints across
    # processes (which is what lets shipped artifacts hit worker caches).
    def __getstate__(self):
        return (list(self.types.values()), self.root, self._fingerprint is not None)

    def __setstate__(self, state) -> None:
        type_list, root, was_frozen = state
        object.__setattr__(
            self, "types", {type_def.tid: type_def for type_def in type_list}
        )
        object.__setattr__(self, "root", root)
        object.__setattr__(self, "_fingerprint", None)
        object.__setattr__(self, "_edges_cache", None)
        object.__setattr__(self, "_inhabited_cache", None)
        if was_frozen:
            self.fingerprint()

    def _validate(self) -> None:
        for type_def in self.types.values():
            for _label, target in type_def.symbols():
                if target not in self.types:
                    raise SchemaError(
                        f"type {type_def.tid!r} references undefined type {target!r}"
                    )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def type(self, tid: str) -> TypeDef:
        """Return the definition of ``tid`` (KeyError if undefined)."""
        return self.types[tid]

    @property
    def root_type(self) -> TypeDef:
        return self.types[self.root]

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self) -> Iterator[TypeDef]:
        return iter(self.types.values())

    def __contains__(self, tid: str) -> bool:
        return tid in self.types

    def tids(self) -> Tuple[str, ...]:
        return tuple(self.types)

    def labels(self) -> FrozenSet[str]:
        """All labels occurring in the schema."""
        return frozenset(
            label for type_def in self for label, _target in type_def.symbols()
        )

    def symbol_alphabet(self) -> FrozenSet[Tuple[str, str]]:
        """All ``(label, tid)`` atoms occurring anywhere in the schema."""
        result: Set[Tuple[str, str]] = set()
        for type_def in self:
            result.update(type_def.symbols())
        return frozenset(result)

    def fingerprint(self) -> str:
        """A stable content hash of this schema, usable as a cache key.

        Equal schemas (same root, same definitions, in any order) share a
        fingerprint across processes: it is a SHA-1 of a deterministic
        rendering of the sorted type definitions, independent of
        ``PYTHONHASHSEED``.  The first call freezes the schema — public
        attributes become immutable and ``types`` is wrapped read-only —
        because cache entries keyed on the fingerprint would go stale if
        the schema changed afterwards.
        """
        if self._fingerprint is None:
            payload = repr(
                (
                    self.root,
                    sorted(
                        (t.tid, t.kind.value, t.atomic, repr(t.regex))
                        for t in self.types.values()
                    ),
                )
            )
            object.__setattr__(self, "types", MappingProxyType(dict(self.types)))
            self._fingerprint = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        return self._fingerprint

    def compile_regex(self, tid: str, engine: Optional["Engine"] = None) -> NFA:
        """Compile the regex of a collection type over the schema alphabet.

        The compiled NFA is memoized by the engine under
        ``("content-nfa", fingerprint, tid)`` — callers must not mutate it.
        """
        if engine is None:
            from ..engine import get_default_engine

            engine = get_default_engine()
        return engine.content_nfa(self, tid)

    # ------------------------------------------------------------------
    # Classification (the Table-2 schema restrictions)
    # ------------------------------------------------------------------

    def is_ordered(self, allow_homogeneous: bool = False) -> bool:
        """True if all collection types are ordered.

        With ``allow_homogeneous=True``, homogeneous unordered collections
        are also admitted (the relaxation of Section 3).
        """
        for type_def in self:
            if type_def.is_unordered:
                if not (allow_homogeneous and type_def.is_homogeneous_unordered()):
                    return False
        return True

    def tag_relation(self) -> Dict[str, Set[str]]:
        """The occurs-relation: label -> set of type ids it points to."""
        relation: Dict[str, Set[str]] = {}
        for type_def in self:
            for label, target in type_def.symbols():
                relation.setdefault(label, set()).add(target)
        return relation

    def is_tagged(self) -> bool:
        """True if the label/type-id occurs-relation is one-to-one."""
        relation = self.tag_relation()
        targets_seen: Set[str] = set()
        for targets in relation.values():
            if len(targets) != 1:
                return False
            (target,) = targets
            if target in targets_seen:
                return False
            targets_seen.add(target)
        return True

    def tag_of(self, label: str) -> Optional[str]:
        """For tagged schemas: the unique type id a label points to."""
        targets = self.tag_relation().get(label)
        if targets and len(targets) == 1:
            return next(iter(targets))
        return None

    def is_tree(self) -> bool:
        """True if the schema has no referenceable types."""
        return not any(type_def.is_referenceable for type_def in self)

    def is_dtd_minus(self) -> bool:
        """True for the DTD⁻ class: ordered, tagged, tree."""
        return self.is_ordered() and self.is_tagged() and self.is_tree()

    def is_dtd_plus(self) -> bool:
        """True for the DTD⁺ class: ordered, tagged."""
        return self.is_ordered() and self.is_tagged()

    # ------------------------------------------------------------------
    # Inhabitation and the schema graph Γ(S)
    # ------------------------------------------------------------------

    def inhabited_types(self, engine: Optional["Engine"] = None) -> FrozenSet[str]:
        """Type ids with at least one finite conforming instance.

        Least fixpoint: atomic types are inhabited; a collection type is
        inhabited once its regex accepts some word using only inhabited
        targets.
        """
        if self._inhabited_cache is not None:
            return self._inhabited_cache
        if engine is None:
            from ..engine import get_default_engine

            engine = get_default_engine()
        self._inhabited_cache = engine.inhabited_types(self)
        return self._inhabited_cache

    def inhabitation_ranks(self, engine: Optional["Engine"] = None) -> Dict[str, int]:
        """Fixpoint round at which each inhabited type gained an instance.

        Atomic types have rank 0; a collection type of rank ``r`` accepts
        some content word whose targets all have rank strictly below
        ``r``.  Useful for constructing *minimal* instances: following
        rank-decreasing words always terminates.  Uninhabited types are
        absent from the result.
        """
        ranks: Dict[str, int] = {t.tid: 0 for t in self if t.is_atomic}
        compiled = {
            t.tid: self.compile_regex(t.tid, engine) for t in self if not t.is_atomic
        }
        round_index = 0
        changed = True
        while changed:
            changed = False
            round_index += 1
            known = set(ranks)
            for type_def in self:
                if type_def.tid in ranks or type_def.is_atomic:
                    continue
                restricted = _restrict_to_targets(compiled[type_def.tid], known)
                if not restricted.is_empty():
                    ranks[type_def.tid] = round_index
                    changed = True
        return ranks

    def possible_edges(
        self, engine: Optional["Engine"] = None
    ) -> Dict[str, FrozenSet[Tuple[str, str]]]:
        """The schema graph Γ(S): for each type, the ``(label, tid)`` pairs
        that occur in some instance of that type.

        A pair qualifies if it appears in some word of the type's regex in
        which every symbol targets an inhabited type.
        """
        if self._edges_cache is not None:
            return self._edges_cache
        if engine is None:
            from ..engine import get_default_engine

            engine = get_default_engine()
        self._edges_cache = engine.possible_edges(self)
        return self._edges_cache

    def reachable_types(self, engine: Optional["Engine"] = None) -> FrozenSet[str]:
        """Types reachable from the root through Γ(S)."""
        edges = self.possible_edges(engine)
        seen = {self.root}
        stack = [self.root]
        while stack:
            tid = stack.pop()
            for _label, target in edges.get(tid, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.root == other.root and self.types == other.types

    def __hash__(self) -> int:
        return hash((self.root, tuple(self.types.values())))

    def __repr__(self) -> str:
        return f"Schema(root={self.root!r}, types={len(self.types)})"


def _compute_inhabited(schema: Schema, engine: "Engine") -> FrozenSet[str]:
    """Least-fixpoint inhabitation check (the body behind ``inhabited_types``)."""
    inhabited: Set[str] = {t.tid for t in schema if t.is_atomic}
    compiled = {
        t.tid: engine.content_nfa(schema, t.tid) for t in schema if not t.is_atomic
    }
    changed = True
    while changed:
        changed = False
        for type_def in schema:
            if type_def.tid in inhabited or type_def.is_atomic:
                continue
            restricted = _restrict_to_targets(compiled[type_def.tid], inhabited)
            if not restricted.is_empty():
                inhabited.add(type_def.tid)
                changed = True
    return frozenset(inhabited)


def _compute_possible_edges(
    schema: Schema, engine: "Engine"
) -> Dict[str, FrozenSet[Tuple[str, str]]]:
    """The schema-graph body behind ``possible_edges``."""
    result: Dict[str, FrozenSet[Tuple[str, str]]] = {}
    for type_def in schema:
        if type_def.is_atomic:
            result[type_def.tid] = frozenset()
            continue
        restricted = engine.restricted_content_nfa(schema, type_def.tid)
        result[type_def.tid] = frozenset(restricted.useful_symbols())
    return result


def _restrict_to_targets(nfa: NFA, allowed_targets: Set[str]) -> NFA:
    """Drop arcs whose ``(label, tid)`` symbol targets a type outside the set."""
    from ..automata.nfa import EPS

    transitions = {}
    for src, arcs in nfa.transitions.items():
        kept = [
            (symbol, dst)
            for symbol, dst in arcs
            if symbol is EPS or symbol[1] in allowed_targets
        ]
        if kept:
            transitions[src] = kept
    return NFA(nfa.n_states, nfa.alphabet, nfa.start, nfa.accepting, transitions)
