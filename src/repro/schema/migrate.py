"""Migration analysis: which registered queries survive a schema change?

The paper's Table-2 machinery answers the production question directly:
re-run type inference (Section 3) for every registered query against the
old and the new schema and compare the inferred type assignments.  Per
query the report says

* ``survives`` — the inferred assignment set is unchanged (including
  the vacuous case where the query was and stays unsatisfiable),
* ``retypes``  — the query still type-checks but its assignment set
  changed (bindings gained, lost, or renamed),
* ``breaks``   — the query was satisfiable against the old schema and
  has **no** typing against the new one; the report attaches a concrete
  counterexample word from the delta's separating-word search, and
* ``invalid``  — the query text itself does not parse (reported, never
  blocking: a broken query file should not veto a migration).

Bulk analysis reuses the batch pipeline's shared-engine executor
(:func:`repro.batch.executors.run_items_shared`), so a large query set
pays each schema's compile once.

Policy levels (the migrate endpoint's acceptance thresholds)::

    any         always accept (report is informational)
    compatible  no query breaks; with no queries registered, the
                whole-schema compatibility must be equivalent/widening
    strict      every query survives verbatim AND the whole-schema
                compatibility is equivalent/widening
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import Engine, get_default_engine
from .delta import (
    EQUIVALENT,
    INCOMPARABLE,
    NARROWING,
    WIDENING,
    ChangeContentModel,
    ChangeEdgeLabel,
    SchemaChange,
    SchemaDelta,
    diff_schemas,
    render_word,
)
from .model import Schema

#: Acceptance thresholds for :func:`analyze_migration` / the service's
#: ``POST /schemas/{fp}/migrate``.
POLICIES: Tuple[str, ...] = ("any", "compatible", "strict")

#: Per-query statuses, most to least comfortable.
QUERY_STATUSES: Tuple[str, ...] = ("survives", "retypes", "breaks", "invalid")

#: Default cap on inferred assignments compared per query per schema.
DEFAULT_INFER_LIMIT = 32


@dataclass(frozen=True)
class QueryReport:
    """One registered query's fate under the migration."""

    index: int
    query: str
    status: str
    satisfiable_before: Optional[bool] = None
    satisfiable_after: Optional[bool] = None
    types_before: Optional[Tuple[dict, ...]] = None
    types_after: Optional[Tuple[dict, ...]] = None
    counterexample: Optional[List[str]] = None
    counterexample_change: Optional[str] = None
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "query": self.query,
            "status": self.status,
            "satisfiable_before": self.satisfiable_before,
            "satisfiable_after": self.satisfiable_after,
            "types_before": None
            if self.types_before is None
            else list(self.types_before),
            "types_after": None
            if self.types_after is None
            else list(self.types_after),
            "counterexample": self.counterexample,
            "counterexample_change": self.counterexample_change,
            "error": self.error,
        }


@dataclass(frozen=True)
class MigrationReport:
    """The full compatibility report the migrate endpoint returns."""

    delta: SchemaDelta
    policy: str
    accepted: bool
    queries: Tuple[QueryReport, ...]
    counts: Dict[str, int]

    @property
    def compatibility(self) -> str:
        return self.delta.compatibility

    def broken(self) -> List[QueryReport]:
        return [report for report in self.queries if report.status == "breaks"]

    def to_dict(self) -> dict:
        return {
            "compatibility": self.compatibility,
            "policy": self.policy,
            "accepted": self.accepted,
            "counts": dict(sorted(self.counts.items())),
            "queries": [report.to_dict() for report in self.queries],
            "delta": self.delta.to_dict(),
        }


def _assignment_key(assignments: Sequence[dict]) -> Tuple[Tuple[Tuple[str, str], ...], ...]:
    """A canonical, order-insensitive key for an inferred assignment set."""
    return tuple(
        sorted(tuple(sorted(assignment.items())) for assignment in assignments)
    )


def _delta_counterexample(
    delta: SchemaDelta,
) -> Tuple[Optional[List[str]], Optional[str]]:
    """The first narrowing/incomparable change carrying a concrete word."""
    for change in delta.changes:
        if not isinstance(change, (ChangeContentModel, ChangeEdgeLabel)):
            continue
        if change.verdict not in (NARROWING, INCOMPARABLE):
            continue
        if change.counterexample is None:
            continue
        return render_word(change.counterexample), change.describe()
    return None, None


def analyze_migration(
    old: Schema,
    new: Schema,
    queries: Sequence[str] = (),
    policy: str = "compatible",
    engine_old: Optional[Engine] = None,
    engine_new: Optional[Engine] = None,
    delta: Optional[SchemaDelta] = None,
    limit: int = DEFAULT_INFER_LIMIT,
    workers: int = 4,
) -> MigrationReport:
    """Diff the schemas and re-infer every query's typing on both sides."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r} (expected one of {', '.join(POLICIES)})"
        )
    if engine_old is None:
        engine_old = get_default_engine()
    if engine_new is None:
        engine_new = engine_old
    if delta is None:
        delta = diff_schemas(old, new, engine=engine_new)

    reports: List[QueryReport] = []
    if queries:
        from ..batch.executors import run_items_shared

        items = [{"query": text, "limit": limit} for text in queries]
        before = run_items_shared("infer", old, engine_old, items, workers=workers)
        after = run_items_shared("infer", new, engine_new, items, workers=workers)
        word, change_line = _delta_counterexample(delta)
        for index, text in enumerate(queries):
            reports.append(
                _query_report(
                    index, text, before[index], after[index], word, change_line
                )
            )

    counts = {status: 0 for status in QUERY_STATUSES}
    for report in reports:
        counts[report.status] += 1

    accepted = _policy_accepts(policy, delta, reports, counts)
    return MigrationReport(
        delta=delta,
        policy=policy,
        accepted=accepted,
        queries=tuple(reports),
        counts=counts,
    )


def _query_report(
    index: int,
    text: str,
    before: dict,
    after: dict,
    word: Optional[List[str]],
    change_line: Optional[str],
) -> QueryReport:
    if not before["ok"] or not after["ok"]:
        error = (before if not before["ok"] else after)["error"]
        return QueryReport(
            index=index,
            query=text,
            status="invalid",
            error=f"{error['code']}: {error['message']}",
        )
    assignments_before = before["result"]["assignments"]
    assignments_after = after["result"]["assignments"]
    satisfiable_before = bool(assignments_before)
    satisfiable_after = bool(assignments_after)
    if satisfiable_before and not satisfiable_after:
        status = "breaks"
    elif _assignment_key(assignments_before) == _assignment_key(assignments_after):
        status = "survives"
    else:
        # Covers both direction changes: a dead query gaining typings and
        # a live query whose assignment set moved.
        status = "retypes"
    return QueryReport(
        index=index,
        query=text,
        status=status,
        satisfiable_before=satisfiable_before,
        satisfiable_after=satisfiable_after,
        types_before=tuple(assignments_before),
        types_after=tuple(assignments_after),
        counterexample=word if status == "breaks" else None,
        counterexample_change=change_line if status == "breaks" else None,
    )


def _policy_accepts(
    policy: str,
    delta: SchemaDelta,
    reports: Sequence[QueryReport],
    counts: Dict[str, int],
) -> bool:
    compatible_schema = delta.compatibility in (EQUIVALENT, WIDENING)
    if policy == "any":
        return True
    if policy == "compatible":
        if not reports:
            return compatible_schema
        return counts["breaks"] == 0
    # strict
    checked = counts["survives"]
    return compatible_schema and checked == len(reports)
