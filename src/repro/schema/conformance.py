"""Conformance of data graphs to schemas (Definition 2.1).

A graph ``G`` conforms to a schema ``S`` if there is a *type assignment*
``τ`` from nodes to type ids such that

1. the root maps to the root type,
2. referenceable nodes map to referenceable types,
3. atomic nodes map to atomic types containing their value, and
4. collection nodes map to collection types of matching orderedness whose
   regex accepts (some ordering of, for unordered nodes) the typed edge
   sequence.

The paper notes conformance is NP-complete in general but PTIME for a large
class including tagged schemas.  The implementation mirrors that split:

* **candidate refinement** (arc consistency): per-node candidate-type sets
  are refined to a greatest fixpoint — polynomial time;
* **assignment extraction**: non-referenceable regions are forests, so a
  witness run chosen top-down assigns them deterministically without
  backtracking; search happens only over the types of *referenceable*
  (shareable) nodes, which is where the NP-hardness genuinely lives.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..automata.bag import bag_run_groups
from ..automata.compiled import run_with_choices_compiled
from ..automata.nfa import NFA
from ..automata.ops import run_with_choices
from ..data.model import DataGraph, Node
from ..engine import Engine, get_default_engine
from .model import Schema, TypeDef, atomic_matches

#: A candidate map: oid -> set of admissible type ids.
Domains = Dict[str, FrozenSet[str]]


def _ordered_witness(
    engine: Engine, schema: Schema, tid: str, choice_sets: Sequence[FrozenSet]
) -> Optional[List]:
    """A witness word of ``tid``'s content model over per-edge choices.

    On the compiled backend the walk runs on the minimized table
    (deterministic witness order); the NFA route is kept for
    differential testing.  Unordered (bag) support stays on the NFA —
    the bag DP needs state-set introspection the table does not expose.
    """
    if engine.backend == "compiled":
        return run_with_choices_compiled(
            engine.compiled_content(schema, tid), choice_sets
        )
    return run_with_choices(engine.content_nfa(schema, tid), choice_sets)


def _ordered_member(
    engine: Engine, schema: Schema, tid: str, typed_edges: Sequence
) -> bool:
    """Ordered content-model membership on the engine's backend."""
    if engine.backend == "compiled":
        return engine.compiled_content(schema, tid).member(typed_edges)
    return engine.content_nfa(schema, tid).accepts(typed_edges)


def candidate_types(
    graph: DataGraph, schema: Schema, engine: Optional[Engine] = None
) -> Domains:
    """Arc-consistent candidate-type sets for every node.

    Starts from kind/value/referenceability-compatible candidates (with the
    root pinned to the root type per condition 1) and removes any candidate
    with no supporting run over the children's candidate sets, iterating to
    a fixpoint.  A node whose set ends up empty cannot be typed; if the
    root's set is empty the graph does not conform.
    """
    if engine is None:
        engine = get_default_engine()

    domains: Dict[str, Set[str]] = {}
    for node in graph:
        candidates = {
            type_def.tid
            for type_def in schema
            if _kind_compatible(node, type_def)
        }
        if node.oid == graph.root:
            candidates &= {schema.root}
        domains[node.oid] = candidates

    changed = True
    while changed:
        changed = False
        for node in graph:
            if node.is_atomic:
                continue
            survivors = {
                tid
                for tid in domains[node.oid]
                if _has_support(node, tid, domains, schema, engine)
            }
            if survivors != domains[node.oid]:
                domains[node.oid] = survivors
                changed = True
    return {oid: frozenset(candidates) for oid, candidates in domains.items()}


def _kind_compatible(node: Node, type_def: TypeDef) -> bool:
    if node.is_referenceable and not type_def.is_referenceable:
        return False
    if node.is_atomic:
        return type_def.is_atomic and atomic_matches(type_def.atomic, node.value)
    if node.is_ordered:
        return type_def.is_ordered
    return type_def.is_unordered


def _choice_sets(node: Node, domains: Dict[str, Set[str]]) -> Optional[List[FrozenSet]]:
    """Per-edge symbol choices ``(label, T)`` for T in the child's domain."""
    sets = []
    for edge in node.edges:
        child_domain = domains[edge.target]
        if not child_domain:
            return None
        sets.append(frozenset((edge.label, tid) for tid in child_domain))
    return sets


def _group_edges(
    node: Node, domains: Dict[str, Set[str]]
) -> Optional[List[Tuple[FrozenSet, List[int]]]]:
    """Group interchangeable edges of an unordered node.

    Two edges are interchangeable when they share the label and the child
    candidate set; the bag DP then only tracks counts per group.  Returns
    ``(choices, edge_indexes)`` pairs or None if some child is untypable.
    """
    groups: Dict[FrozenSet, List[int]] = {}
    for index, edge in enumerate(node.edges):
        child_domain = domains[edge.target]
        if not child_domain:
            return None
        choices = frozenset((edge.label, tid) for tid in child_domain)
        groups.setdefault(choices, []).append(index)
    return list(groups.items())


def _has_support(
    node: Node, tid: str, domains: Dict[str, Set[str]], schema: Schema, engine: Engine
) -> bool:
    if node.is_ordered:
        choice_sets = _choice_sets(node, domains)
        if choice_sets is None:
            return False
        return _ordered_witness(engine, schema, tid, choice_sets) is not None
    grouped = _group_edges(node, domains)
    if grouped is None:
        return False
    nfa = engine.content_nfa(schema, tid)
    return bag_run_groups(nfa, [(choices, len(idx)) for choices, idx in grouped]) is not None


def find_type_assignment(
    graph: DataGraph, schema: Schema, engine: Optional[Engine] = None
) -> Optional[Dict[str, str]]:
    """Return a full type assignment ``oid -> tid``, or None.

    After refinement, searches over the candidate types of referenceable
    nodes only; each choice is checked by deterministically typing the
    non-referenceable forest hanging off the root and off each referenceable
    node.  The search is exponential only in the number of referenceable
    nodes — conformance for tree data (e.g. XML documents) never backtracks.
    """
    domains = candidate_types(graph, schema, engine)
    if not domains[graph.root]:
        return None
    referenceable = [
        node.oid for node in graph if node.is_referenceable and node.oid != graph.root
    ]
    if any(not domains[oid] for oid in domains):
        # Some node is untypable; no assignment can exist.
        return None

    root_choices = sorted(domains[graph.root])
    candidate_lists = [sorted(domains[oid]) for oid in referenceable]
    for root_tid in root_choices:
        for combo in itertools.product(*candidate_lists):
            fixed = dict(zip(referenceable, combo))
            fixed[graph.root] = root_tid
            assignment = _try_extend(graph, schema, domains, fixed, engine)
            if assignment is not None:
                return assignment
    return None


def _try_extend(
    graph: DataGraph,
    schema: Schema,
    domains: Domains,
    fixed: Dict[str, str],
    engine: Optional[Engine] = None,
) -> Optional[Dict[str, str]]:
    """Extend a choice for the referenceable nodes to a full assignment.

    Types each region top-down: starting at every fixed node, a witness run
    of the node's regex over the children's domains (children already fixed
    are pinned) assigns types to the non-referenceable children, which are
    then processed recursively.  Returns None as soon as some node admits
    no witness run under the fixed choices.
    """
    if engine is None:
        engine = get_default_engine()

    assignment: Dict[str, str] = dict(fixed)
    pending = list(fixed)
    processed: Set[str] = set()
    while pending:
        oid = pending.pop()
        if oid in processed:
            continue
        processed.add(oid)
        node = graph.node(oid)
        tid = assignment[oid]
        if node.is_atomic:
            continue
        edge_domains = [
            frozenset([assignment[edge.target]])
            if edge.target in assignment
            else domains[edge.target]
            for edge in node.edges
        ]
        if node.is_ordered:
            choice_sets = [
                frozenset((edge.label, t) for t in edge_domain)
                for edge, edge_domain in zip(node.edges, edge_domains)
            ]
            witness = _ordered_witness(engine, schema, tid, choice_sets)
            if witness is None:
                return None
            chosen = [symbol[1] for symbol in witness]
        else:
            nfa = engine.content_nfa(schema, tid)
            groups: Dict[Tuple[str, FrozenSet[str]], List[int]] = {}
            for index, (edge, edge_domain) in enumerate(zip(node.edges, edge_domains)):
                groups.setdefault((edge.label, edge_domain), []).append(index)
            group_list = list(groups.items())
            group_specs = [
                (frozenset((label, t) for t in edge_domain), len(indexes))
                for (label, edge_domain), indexes in group_list
            ]
            per_group = bag_run_groups(nfa, group_specs)
            if per_group is None:
                return None
            chosen = [""] * len(node.edges)
            for ((_label, _dom), indexes), symbols in zip(group_list, per_group):
                for index, symbol in zip(indexes, symbols):
                    chosen[index] = symbol[1]
        for edge, child_tid in zip(node.edges, chosen):
            if edge.target in assignment:
                if assignment[edge.target] != child_tid:
                    # The witness run disagrees with a previously assigned
                    # shared node; since shared nodes are fixed up front and
                    # pinned in the choice sets, this cannot happen.
                    return None
                continue
            assignment[edge.target] = child_tid
            pending.append(edge.target)
    if len(assignment) != len(graph.nodes):
        # Unreached nodes (possible only with unusual sharing) default to
        # any candidate; they are constrained solely by their own subtree.
        for node in graph:
            if node.oid not in assignment:
                return None
    return assignment


def conforms(
    graph: DataGraph, schema: Schema, engine: Optional[Engine] = None
) -> bool:
    """True if ``graph`` conforms to ``schema`` (Definition 2.1)."""
    return find_type_assignment(graph, schema, engine) is not None


def verify_assignment(
    graph: DataGraph,
    schema: Schema,
    assignment: Dict[str, str],
    engine: Optional[Engine] = None,
) -> bool:
    """Check a full type assignment against Definition 2.1 directly.

    Used by tests as an independent oracle for :func:`find_type_assignment`.
    """
    if engine is None:
        engine = get_default_engine()
    if assignment.get(graph.root) != schema.root:
        return False
    for node in graph:
        tid = assignment.get(node.oid)
        if tid is None or tid not in schema:
            return False
        type_def = schema.type(tid)
        if node.is_referenceable and not type_def.is_referenceable:
            return False
        if node.is_atomic:
            if not type_def.is_atomic:
                return False
            if not atomic_matches(type_def.atomic, node.value):
                return False
            continue
        if node.is_ordered != type_def.is_ordered:
            return False
        if any(edge.target not in assignment for edge in node.edges):
            return False
        typed_edges = [
            (edge.label, assignment[edge.target]) for edge in node.edges
        ]
        if node.is_ordered:
            if not _ordered_member(engine, schema, tid, typed_edges):
                return False
        else:
            from ..automata.bag import bag_accepts

            if not bag_accepts(schema.compile_regex(tid, engine), typed_edges):
                return False
    return True
