"""Schema subsumption: is every instance of S1 also an instance of S2?

Used by the transformation type checker (Section 4.3): after inferring an
output schema for a query, conformance of all outputs to a required schema
reduces to a subsumption check between the two schemas.

The check computes the greatest *simulation* between type ids:

    (T, T') survives iff  T and T' have the same kind, atomic domains are
    compatible, and every word of lang(R_T) — with each atom ``(a, U)``
    relaxed to the alternation of ``(a, U')`` over surviving pairs (U, U') —
    is in lang(R_T').

``S1 ⊑ S2`` is reported when ``(root1, root2)`` survives.

Soundness/completeness: the check is *sound* for tree data (every instance
that is a tree of non-referenceable nodes conforms to S2 — in particular for
all XML documents and all outputs of the Section 4.3 transformations on tree
inputs).  With shared referenceable nodes a simulation may assign a shared
node different S2-types via different parents, so for graphs with sharing
the check is an approximation; :func:`subsumes` therefore also offers a
*functional* mode that demands one consistent image type per S1 type, which
is sound for arbitrary instances.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..automata.nfa import NFA
from ..automata.ops import is_subset, relabel
from ..automata.syntax import Regex
from ..engine import Engine, get_default_engine
from .model import Schema, TypeDef


def simulation(
    schema1: Schema, schema2: Schema, engine: Optional[Engine] = None
) -> FrozenSet[Tuple[str, str]]:
    """The greatest simulation relation between the two schemas' type ids."""
    if engine is None:
        engine = get_default_engine()
    pairs: Set[Tuple[str, str]] = set()
    for t1 in schema1:
        for t2 in schema2:
            if _base_compatible(t1, t2):
                pairs.add((t1.tid, t2.tid))
    changed = True
    while changed:
        changed = False
        for pair in sorted(pairs):
            t1 = schema1.type(pair[0])
            t2 = schema2.type(pair[1])
            if t1.is_atomic:
                continue
            if not _language_simulated(t1, t2, schema1, schema2, pairs, engine):
                pairs.discard(pair)
                changed = True
    return frozenset(pairs)


def _base_compatible(t1: TypeDef, t2: TypeDef) -> bool:
    if t1.kind is not t2.kind:
        return False
    if t1.is_atomic:
        return t1.atomic == t2.atomic
    return True


def _language_simulated(
    t1: TypeDef,
    t2: TypeDef,
    schema1: Schema,
    schema2: Schema,
    pairs: Set[Tuple[str, str]],
    engine: Optional[Engine] = None,
) -> bool:
    """Check lang(R_T1) ⊆ lang(R_T2) up to the candidate relation.

    Implemented by relabelling both regexes into a common alphabet: a left
    atom ``(a, U)`` keeps its identity, while the right automaton is built
    with each atom ``(a, U')`` replaced by the alternation of all left atoms
    ``(a, U)`` with ``(U, U')`` in the relation.

    For unordered types this tests ordered-language containment, which
    soundly implies unordered-language containment.
    """
    if engine is None:
        engine = get_default_engine()
    left_alphabet = t1.symbols()
    left = engine.thompson(t1.regex, left_alphabet)

    # For each right atom (a, U'), the left atoms (a, U) it may stand for.
    related_left: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
    for label, target2 in t2.symbols():
        related_left[(label, target2)] = [
            (left_label, target1)
            for left_label, target1 in left_alphabet
            if left_label == label and (target1, target2) in pairs
        ]

    from ..automata.syntax import EMPTY, Sym, alt

    def relax(symbol: object) -> Regex:
        options = related_left.get(symbol, [])
        if not options:
            return EMPTY
        return alt(*(Sym(option) for option in options))

    # Hash-consing makes the relaxed regex a cheap cache key, so repeated
    # fixpoint rounds that relax to the same regex reuse one compiled NFA.
    relaxed_regex = _substitute(t2.regex, relax)
    right = engine.thompson(relaxed_regex, left_alphabet)
    return is_subset(left, right)


def _substitute(regex: Regex, fn) -> Regex:
    """Replace every atom of ``regex`` by the regex ``fn(symbol)``."""
    from ..automata.syntax import (
        Alt,
        Any,
        Concat,
        Empty,
        Epsilon,
        Star,
        Sym,
        alt,
        concat,
        star,
    )

    if isinstance(regex, (Empty, Epsilon)):
        return regex
    if isinstance(regex, Sym):
        return fn(regex.symbol)
    if isinstance(regex, Any):
        raise ValueError("wildcards cannot appear in schema regexes")
    if isinstance(regex, Concat):
        return concat(*(_substitute(p, fn) for p in regex.parts))
    if isinstance(regex, Alt):
        return alt(*(_substitute(p, fn) for p in regex.parts))
    if isinstance(regex, Star):
        return star(_substitute(regex.inner, fn))
    raise TypeError(f"unknown regex node: {regex!r}")


def subsumes(
    schema1: Schema,
    schema2: Schema,
    functional: bool = False,
    engine: Optional[Engine] = None,
) -> bool:
    """Decide ``S1 ⊑ S2`` (every instance of S1 conforms to S2).

    Args:
        schema1: the candidate smaller schema.
        schema2: the candidate larger schema.
        functional: if True, additionally require a consistent *function*
            from S1 types to S2 types inside the simulation, which makes the
            positive answer sound for instances with shared referenceable
            nodes (not just tree instances).
    """
    relation = simulation(schema1, schema2, engine)
    if (schema1.root, schema2.root) not in relation:
        return False
    if not functional:
        return True
    return _functional_refinement(schema1, schema2, relation, engine) is not None


def _functional_refinement(
    schema1: Schema,
    schema2: Schema,
    relation: FrozenSet[Tuple[str, str]],
    engine: Optional[Engine] = None,
) -> Optional[Dict[str, str]]:
    """Search for a type function consistent with the simulation."""
    images: Dict[str, List[str]] = {}
    for tid in schema1.tids():
        images[tid] = sorted(t2 for t1, t2 in relation if t1 == tid)
        if not images[tid]:
            # Uninhabited or unreachable types need no image; pick a dummy.
            images[tid] = []
    relevant = [tid for tid in schema1.tids() if images[tid]]
    required = {tid for tid in schema1.reachable_types() if tid in schema1.tids()}
    for tid in required & set(schema1.tids()):
        if tid in schema1.inhabited_types() and not images.get(tid):
            return None

    candidates = [images[tid] or ["*none*"] for tid in relevant]
    for combo in itertools.product(*candidates):
        mapping = dict(zip(relevant, combo))
        if mapping.get(schema1.root) != schema2.root:
            continue
        if _function_is_simulation(schema1, schema2, mapping, engine):
            return mapping
    return None


def _function_is_simulation(
    schema1: Schema,
    schema2: Schema,
    mapping: Dict[str, str],
    engine: Optional[Engine] = None,
) -> bool:
    pairs = {(t1, t2) for t1, t2 in mapping.items() if t2 != "*none*"}
    for t1_id, t2_id in pairs:
        t1 = schema1.type(t1_id)
        t2 = schema2.type(t2_id)
        if not _base_compatible(t1, t2):
            return False
        if t1.is_atomic:
            continue
        if not _language_simulated(t1, t2, schema1, schema2, pairs, engine):
            return False
    return True
