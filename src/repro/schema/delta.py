"""Schema evolution deltas: typed diffs with compatibility verdicts.

A registry never holds frozen schemas for long — they migrate.  This
module diffs two :class:`~repro.schema.model.Schema`s into a typed
change-set (in the spirit of edgedb's delta-command trees) and classifies
every change with the paper's own machinery: the greatest-simulation
subsumption check of :mod:`repro.schema.subsumption` decides, per change
and for the whole schema, whether the migration

* **widens** (every old instance still conforms — the new language is a
  superset),
* **narrows** (every new instance conforms to the old schema — the new
  language is a subset),
* is **equivalent** (both directions hold), or
* is **incomparable** (neither holds).

Change taxonomy
---------------

``AddType`` / ``DropType`` / ``RenameType`` are *namespace* changes: the
existence (or name) of a type does not by itself change the instance
language rooted at the schema root, so they carry verdict ``equivalent``.
All language effects are attributed to the changes that carry them:
``ChangeContentModel``, ``ChangeEdgeLabel``, ``ChangeKind``,
``ChangeAtomicDomain``, and ``ChangeRoot``.  A content-model change's
verdict is *local* — it compares the old and new content languages of
that type (with renamed targets identified), even if the type is not
reachable from the root; the whole-schema ``compatibility`` level is the
authoritative root-level answer.

Rename detection matches a dropped type id to an added one when their
definitions agree modulo the candidate renaming (kind, atomic domain,
and content regex with renamed targets substituted); undetected renames
degrade gracefully to a ``DropType`` + ``AddType`` pair.

Counterexamples
---------------

For a narrowing or incomparable content change, :func:`separating_word`
produces the lexicographically-least shortest content word accepted by
the old model and rejected by the new one (for a widening change, the
word the new model gains).  The search runs a breadth-first product walk
over the engine's backend-resolved runners; because the first accepting
word in (length, lexicographic) order is a property of the *languages*,
not of the automaton shape, the word is byte-identical across the
``nfa`` and ``compiled`` backends.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..automata.parser import regex_to_string
from ..automata.syntax import Regex, Symbol
from ..engine import Engine, get_default_engine
from .model import Schema, TypeDef
from .subsumption import simulation

#: The per-change (and whole-schema) compatibility lattice, weakest to
#: strongest claim: ``incomparable`` < ``widening``/``narrowing`` <
#: ``equivalent``.
EQUIVALENT = "equivalent"
WIDENING = "widening"
NARROWING = "narrowing"
INCOMPARABLE = "incomparable"
VERDICTS: Tuple[str, ...] = (EQUIVALENT, WIDENING, NARROWING, INCOMPARABLE)

#: Cap on explored state pairs in the separating-word product walk; the
#: content models this project deals in stay far below it.
SEPARATING_WORD_LIMIT = 4096


def render_symbol(symbol: Symbol) -> str:
    """A schema atom ``(label, tid)`` in the Table-1 ``label->Tid`` form."""
    label, target = symbol  # type: ignore[misc]
    return f"{label}->{target}"


def render_model(regex: Regex) -> str:
    """A content regex in the Table-1 syntax (matches the schema printer)."""
    return regex_to_string(regex, render_symbol)


def render_word(word: Sequence[Symbol]) -> List[str]:
    """A content word as a JSON-able list of ``label->Tid`` strings."""
    return [render_symbol(symbol) for symbol in word]


# ----------------------------------------------------------------------
# The change taxonomy
# ----------------------------------------------------------------------


class SchemaChange:
    """Base class of the typed change-set; every change carries a verdict."""

    kind: ClassVar[str] = "change"

    def to_dict(self) -> dict:
        """A deterministic JSON description (regexes rendered, words listed)."""
        data: Dict[str, object] = {"kind": self.kind}
        for spec in fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, Regex):
                data[spec.name.replace("_regex", "_model")] = render_model(value)
            elif spec.name == "counterexample":
                data[spec.name] = None if value is None else render_word(value)
            else:
                data[spec.name] = value
        return data

    def describe(self) -> str:
        """One human-readable line for the CLI diff listing."""
        details = ", ".join(
            f"{key}={value}"
            for key, value in sorted(self.to_dict().items())
            if key not in ("kind", "verdict") and value is not None
        )
        return f"{self.kind} [{self.verdict}] {details}"  # type: ignore[attr-defined]


@dataclass(frozen=True)
class AddType(SchemaChange):
    """A type id present only in the new schema."""

    kind: ClassVar[str] = "add_type"
    tid: str
    reachable: bool
    verdict: str = EQUIVALENT


@dataclass(frozen=True)
class DropType(SchemaChange):
    """A type id present only in the old schema."""

    kind: ClassVar[str] = "drop_type"
    tid: str
    was_reachable: bool
    verdict: str = EQUIVALENT


@dataclass(frozen=True)
class RenameType(SchemaChange):
    """A dropped/added pair whose definitions agree modulo the renaming."""

    kind: ClassVar[str] = "rename_type"
    old_tid: str
    new_tid: str
    verdict: str = EQUIVALENT


@dataclass(frozen=True)
class ChangeRoot(SchemaChange):
    """The schema root moved to a different type."""

    kind: ClassVar[str] = "change_root"
    old_root: str
    new_root: str
    verdict: str = INCOMPARABLE


@dataclass(frozen=True)
class ChangeKind(SchemaChange):
    """A type switched shape (ordered / unordered / atomic)."""

    kind: ClassVar[str] = "change_kind"
    tid: str
    old_kind: str
    new_kind: str
    verdict: str = INCOMPARABLE


@dataclass(frozen=True)
class ChangeAtomicDomain(SchemaChange):
    """An atomic type switched base domain (string / int / float)."""

    kind: ClassVar[str] = "change_atomic"
    tid: str
    old_domain: str
    new_domain: str
    verdict: str = INCOMPARABLE


@dataclass(frozen=True)
class ChangeEdgeLabel(SchemaChange):
    """A content model consistently renamed exactly one edge label."""

    kind: ClassVar[str] = "change_edge_label"
    tid: str
    old_label: str
    new_label: str
    old_regex: Regex
    new_regex: Regex
    verdict: str = INCOMPARABLE
    counterexample: Optional[Tuple[Symbol, ...]] = None


@dataclass(frozen=True)
class ChangeContentModel(SchemaChange):
    """A collection type's content regex changed (renamings identified)."""

    kind: ClassVar[str] = "change_content_model"
    tid: str
    old_regex: Regex
    new_regex: Regex
    verdict: str = INCOMPARABLE
    counterexample: Optional[Tuple[Symbol, ...]] = None


#: Change kinds in deterministic report order.
CHANGE_KINDS: Tuple[str, ...] = (
    AddType.kind,
    DropType.kind,
    RenameType.kind,
    ChangeRoot.kind,
    ChangeKind.kind,
    ChangeAtomicDomain.kind,
    ChangeEdgeLabel.kind,
    ChangeContentModel.kind,
)


def compose_verdicts(verdicts: Sequence[str]) -> str:
    """Join per-change verdicts in the compatibility lattice.

    A widening and a narrowing compose to ``incomparable``: neither
    containment direction survives both.
    """
    seen = set(verdicts)
    unknown = seen - set(VERDICTS)
    if unknown:
        raise ValueError(f"unknown verdicts: {sorted(unknown)}")
    if INCOMPARABLE in seen or {WIDENING, NARROWING} <= seen:
        return INCOMPARABLE
    if WIDENING in seen:
        return WIDENING
    if NARROWING in seen:
        return NARROWING
    return EQUIVALENT


# ----------------------------------------------------------------------
# The delta
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaDelta:
    """The typed diff of two schemas plus its compatibility levels.

    ``compatibility`` is the authoritative whole-schema level: it comes
    from the bidirectional root-level subsumption check (renames
    identified by the simulation itself).  ``composed`` is the lattice
    join of the per-change verdicts — a conservative local view that may
    be stricter than ``compatibility`` when a narrowed type is not
    reachable from the root.
    """

    old_fingerprint: str
    new_fingerprint: str
    changes: Tuple[SchemaChange, ...]
    renames: Tuple[Tuple[str, str], ...]
    compatibility: str
    composed: str

    @property
    def identical(self) -> bool:
        return self.old_fingerprint == self.new_fingerprint

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for change in self.changes:
            counts[change.kind] = counts.get(change.kind, 0) + 1
        return dict(sorted(counts.items()))

    def by_verdict(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for change in self.changes:
            counts[change.verdict] = counts.get(change.verdict, 0) + 1  # type: ignore[attr-defined]
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "old_fingerprint": self.old_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "identical": self.identical,
            "compatibility": self.compatibility,
            "composed": self.composed,
            "renames": [list(pair) for pair in self.renames],
            "changes": [change.to_dict() for change in self.changes],
            "summary": {
                "changes": len(self.changes),
                "by_kind": self.by_kind(),
                "by_verdict": self.by_verdict(),
            },
        }


# ----------------------------------------------------------------------
# Separating words
# ----------------------------------------------------------------------


def separating_word(
    accept: Regex,
    reject: Regex,
    engine: Optional[Engine] = None,
    limit: int = SEPARATING_WORD_LIMIT,
) -> Optional[Tuple[Symbol, ...]]:
    """The least (shortest, then lexicographic) word of lang(accept) \\ lang(reject).

    Returns None when the difference is empty — or, defensively, when the
    product walk exceeds ``limit`` state pairs.  The result depends only
    on the two languages, so it is identical on both engine backends.
    """
    if engine is None:
        engine = get_default_engine()
    alphabet = frozenset(accept.symbols() | reject.symbols())
    accepter = engine.path_runner(accept, alphabet)
    rejecter = engine.path_runner(reject, alphabet)
    start_a = accepter.initial()
    if start_a is None:
        return None
    start = (start_a, rejecter.initial())
    seen = {start}
    queue: deque = deque([(start, ())])
    while queue:
        (state_a, state_r), word = queue.popleft()
        if accepter.is_accepting(state_a) and (
            state_r is None or not rejecter.is_accepting(state_r)
        ):
            return word
        if len(seen) > limit:
            return None
        for symbol in sorted(accepter.available_symbols(state_a)):
            next_a = accepter.step(state_a, symbol)
            if next_a is None:
                continue
            next_r = rejecter.step(state_r, symbol) if state_r is not None else None
            pair = (next_a, next_r)
            if pair not in seen:
                seen.add(pair)
                queue.append((pair, word + (symbol,)))
    return None


# ----------------------------------------------------------------------
# Rename detection
# ----------------------------------------------------------------------


def _defs_match(
    old_def: TypeDef, new_def: TypeDef, mapping: Dict[str, str]
) -> bool:
    """True if the definitions agree modulo the candidate renaming."""
    if old_def.kind is not new_def.kind:
        return False
    if old_def.is_atomic:
        return old_def.atomic == new_def.atomic
    return _apply_renames(old_def.regex, mapping) == new_def.regex


def _apply_renames(regex: Regex, mapping: Dict[str, str]) -> Regex:
    """Rewrite atom targets through ``mapping`` (labels untouched)."""
    if not mapping:
        return regex
    return regex.map_symbols(
        lambda symbol: (symbol[0], mapping.get(symbol[1], symbol[1]))
    )


def _detect_renames(
    old: Schema, new: Schema, dropped: Sequence[str], added: Sequence[str]
) -> Dict[str, str]:
    """Greedy dropped->added matching, verified to a simultaneous fixpoint.

    Candidates pair up when kinds (and atomic domains) agree and, for
    collection types, the label multiset of their content regexes does;
    the candidate map is then pruned until every surviving pair's
    definitions agree modulo the *whole* surviving map — so mutually
    referencing types renamed together still match.
    """
    mapping: Dict[str, str] = {}
    taken: Set[str] = set()
    for old_tid in dropped:
        old_def = old.type(old_tid)
        for new_tid in added:
            if new_tid in taken:
                continue
            new_def = new.type(new_tid)
            if old_def.kind is not new_def.kind:
                continue
            if old_def.is_atomic:
                if old_def.atomic != new_def.atomic:
                    continue
            else:
                old_labels = sorted(label for label, _ in old_def.regex.symbols())
                new_labels = sorted(label for label, _ in new_def.regex.symbols())
                if old_labels != new_labels:
                    continue
            mapping[old_tid] = new_tid
            taken.add(new_tid)
            break
    changed = True
    while changed:
        changed = False
        for old_tid, new_tid in sorted(mapping.items()):
            if not _defs_match(old.type(old_tid), new.type(new_tid), mapping):
                del mapping[old_tid]
                changed = True
    return mapping


# ----------------------------------------------------------------------
# The diff
# ----------------------------------------------------------------------


def diff_schemas(
    old: Schema, new: Schema, engine: Optional[Engine] = None
) -> SchemaDelta:
    """Diff two schemas into a classified, deterministic change-set."""
    if engine is None:
        engine = get_default_engine()
    old_fp = old.fingerprint()
    new_fp = new.fingerprint()
    if old_fp == new_fp:
        return SchemaDelta(
            old_fingerprint=old_fp,
            new_fingerprint=new_fp,
            changes=(),
            renames=(),
            compatibility=EQUIVALENT,
            composed=EQUIVALENT,
        )

    old_tids = set(old.tids())
    new_tids = set(new.tids())
    dropped = sorted(old_tids - new_tids)
    added = sorted(new_tids - old_tids)
    renames = _detect_renames(old, new, dropped, added)
    dropped = [tid for tid in dropped if tid not in renames]
    added = [tid for tid in added if tid not in set(renames.values())]

    # One simulation per direction classifies every change; sharing one
    # engine is fine (the check only compiles regex NFAs, keyed on the
    # hash-consed regexes themselves).
    sim_forward = simulation(old, new, engine)
    sim_backward = simulation(new, old, engine)

    def pair_verdict(old_tid: str, new_tid: str) -> str:
        forward = (old_tid, new_tid) in sim_forward
        backward = (new_tid, old_tid) in sim_backward
        if forward and backward:
            return EQUIVALENT
        if forward:
            return WIDENING
        if backward:
            return NARROWING
        return INCOMPARABLE

    old_reachable = old.reachable_types(engine)
    new_reachable = new.reachable_types(engine)

    changes: List[SchemaChange] = []
    for tid in added:
        changes.append(AddType(tid=tid, reachable=tid in new_reachable))
    for tid in dropped:
        changes.append(DropType(tid=tid, was_reachable=tid in old_reachable))
    for old_tid, new_tid in sorted(renames.items()):
        changes.append(RenameType(old_tid=old_tid, new_tid=new_tid))

    mapped_root = renames.get(old.root, old.root)
    if mapped_root != new.root:
        changes.append(
            ChangeRoot(
                old_root=old.root,
                new_root=new.root,
                verdict=pair_verdict(old.root, new.root),
            )
        )

    for tid in sorted(old_tids & new_tids):
        old_def = old.type(tid)
        new_def = new.type(tid)
        if old_def.kind is not new_def.kind:
            changes.append(
                ChangeKind(
                    tid=tid,
                    old_kind=old_def.kind.value,
                    new_kind=new_def.kind.value,
                    verdict=pair_verdict(tid, tid),
                )
            )
            continue
        if old_def.is_atomic:
            if old_def.atomic != new_def.atomic:
                changes.append(
                    ChangeAtomicDomain(
                        tid=tid,
                        old_domain=old_def.atomic,
                        new_domain=new_def.atomic,
                        verdict=pair_verdict(tid, tid),
                    )
                )
            continue
        old_regex = _apply_renames(old_def.regex, renames)
        if old_regex == new_def.regex:
            continue
        verdict = pair_verdict(tid, tid)
        counterexample = _model_counterexample(
            old_regex, new_def.regex, verdict, engine
        )
        relabel = _edge_label_rename(old_regex, new_def.regex)
        if relabel is not None:
            changes.append(
                ChangeEdgeLabel(
                    tid=tid,
                    old_label=relabel[0],
                    new_label=relabel[1],
                    old_regex=old_regex,
                    new_regex=new_def.regex,
                    verdict=verdict,
                    counterexample=counterexample,
                )
            )
        else:
            changes.append(
                ChangeContentModel(
                    tid=tid,
                    old_regex=old_regex,
                    new_regex=new_def.regex,
                    verdict=verdict,
                    counterexample=counterexample,
                )
            )

    order = {kind: index for index, kind in enumerate(CHANGE_KINDS)}
    changes.sort(key=lambda change: (order[change.kind], change.to_dict().get("tid", ""), str(change.to_dict())))

    forward = (old.root, new.root) in sim_forward
    backward = (new.root, old.root) in sim_backward
    if forward and backward:
        compatibility = EQUIVALENT
    elif forward:
        compatibility = WIDENING
    elif backward:
        compatibility = NARROWING
    else:
        compatibility = INCOMPARABLE

    return SchemaDelta(
        old_fingerprint=old_fp,
        new_fingerprint=new_fp,
        changes=tuple(changes),
        renames=tuple(sorted(renames.items())),
        compatibility=compatibility,
        composed=compose_verdicts(
            [change.verdict for change in changes]  # type: ignore[attr-defined]
        ),
    )


def _model_counterexample(
    old_regex: Regex, new_regex: Regex, verdict: str, engine: Engine
) -> Optional[Tuple[Symbol, ...]]:
    """A content word witnessing the verdict's lost (or gained) language.

    Narrowing/incomparable: a word the old model accepts and the new one
    rejects.  Widening: the word the new model gains.  Equivalent (the
    models differ only syntactically or through renamed-equivalent
    targets): no word.
    """
    if verdict in (NARROWING, INCOMPARABLE):
        return separating_word(old_regex, new_regex, engine)
    if verdict == WIDENING:
        return separating_word(new_regex, old_regex, engine)
    return None


def _edge_label_rename(
    old_regex: Regex, new_regex: Regex
) -> Optional[Tuple[str, str]]:
    """Detect a single consistent label rename between two content models."""
    old_labels = {label for label, _ in old_regex.symbols()}
    new_labels = {label for label, _ in new_regex.symbols()}
    only_old = old_labels - new_labels
    only_new = new_labels - old_labels
    if len(only_old) != 1 or len(only_new) != 1:
        return None
    (old_label,) = only_old
    (new_label,) = only_new
    relabeled = old_regex.map_symbols(
        lambda symbol: (new_label, symbol[1])
        if symbol[0] == old_label
        else symbol
    )
    if relabeled == new_regex:
        return (old_label, new_label)
    return None
