"""ScmDL schemas (Section 2): model, syntax, DTD bridge, conformance.

Provides the schema model and classifiers (:class:`Schema`,
:class:`TypeDef`), the Table-1 textual syntax (:func:`parse_schema` /
:func:`schema_to_string`), DTD translation (:func:`parse_dtd` /
:func:`schema_to_dtd`), conformance checking per Definition 2.1
(:func:`conforms`, :func:`find_type_assignment`), and schema subsumption
(:func:`subsumes`).
"""

from .model import (
    ATOMIC_TYPE_NAMES,
    Schema,
    SchemaError,
    TypeDef,
    TypeKind,
    atomic_matches,
    atomic_types_overlap,
)
from .parser import parse_schema, schema_to_string
from .dtd import DtdError, parse_dtd, schema_to_dtd
from .conformance import (
    candidate_types,
    conforms,
    find_type_assignment,
    verify_assignment,
)
from .subsumption import simulation, subsumes
from .predicates import (
    LabelPredicate,
    PredicateSchema,
    expand_for_data,
    expand_for_query,
)

__all__ = [
    "ATOMIC_TYPE_NAMES",
    "DtdError",
    "LabelPredicate",
    "PredicateSchema",
    "expand_for_data",
    "expand_for_query",
    "Schema",
    "SchemaError",
    "TypeDef",
    "TypeKind",
    "atomic_matches",
    "atomic_types_overlap",
    "candidate_types",
    "conforms",
    "find_type_assignment",
    "parse_dtd",
    "parse_schema",
    "schema_to_dtd",
    "schema_to_string",
    "simulation",
    "subsumes",
    "verify_assignment",
]
