"""ScmDL schemas (Section 2): model, syntax, DTD bridge, conformance.

Provides the schema model and classifiers (:class:`Schema`,
:class:`TypeDef`), the Table-1 textual syntax (:func:`parse_schema` /
:func:`schema_to_string`), DTD translation (:func:`parse_dtd` /
:func:`schema_to_dtd`), conformance checking per Definition 2.1
(:func:`conforms`, :func:`find_type_assignment`), schema subsumption
(:func:`subsumes`), and schema evolution: typed diffs
(:func:`diff_schemas`) and migration compatibility reports
(:func:`analyze_migration`).
"""

from .model import (
    ATOMIC_TYPE_NAMES,
    Schema,
    SchemaError,
    TypeDef,
    TypeKind,
    atomic_matches,
    atomic_types_overlap,
)
from .parser import parse_schema, schema_to_string
from .dtd import DtdError, parse_dtd, schema_to_dtd
from .conformance import (
    candidate_types,
    conforms,
    find_type_assignment,
    verify_assignment,
)
from .subsumption import simulation, subsumes
from .delta import (
    CHANGE_KINDS,
    VERDICTS,
    AddType,
    ChangeAtomicDomain,
    ChangeContentModel,
    ChangeEdgeLabel,
    ChangeKind,
    ChangeRoot,
    DropType,
    RenameType,
    SchemaChange,
    SchemaDelta,
    compose_verdicts,
    diff_schemas,
    separating_word,
)
from .migrate import (
    POLICIES,
    QUERY_STATUSES,
    MigrationReport,
    QueryReport,
    analyze_migration,
)
from .predicates import (
    LabelPredicate,
    PredicateSchema,
    expand_for_data,
    expand_for_query,
)

__all__ = [
    "ATOMIC_TYPE_NAMES",
    "AddType",
    "CHANGE_KINDS",
    "ChangeAtomicDomain",
    "ChangeContentModel",
    "ChangeEdgeLabel",
    "ChangeKind",
    "ChangeRoot",
    "DropType",
    "DtdError",
    "LabelPredicate",
    "MigrationReport",
    "POLICIES",
    "PredicateSchema",
    "QUERY_STATUSES",
    "QueryReport",
    "RenameType",
    "Schema",
    "SchemaChange",
    "SchemaDelta",
    "SchemaError",
    "TypeDef",
    "TypeKind",
    "VERDICTS",
    "analyze_migration",
    "compose_verdicts",
    "diff_schemas",
    "expand_for_data",
    "expand_for_query",
    "separating_word",
    "atomic_matches",
    "atomic_types_overlap",
    "candidate_types",
    "conforms",
    "find_type_assignment",
    "parse_dtd",
    "parse_schema",
    "schema_to_dtd",
    "schema_to_string",
    "simulation",
    "subsumes",
    "verify_assignment",
]
