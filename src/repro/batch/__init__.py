"""Bulk-decision pipeline: one compiled schema, many inputs.

The paper's decision procedures are cheap once their per-schema
artifacts (alphabet, inhabited types, content NFAs, reachability) exist;
what dominates corpus-scale use is recompiling those artifacts per call.
This package amortizes that cost: a :class:`BatchPlan` names one
operation, one schema, and many items; :func:`run_batch` compiles once
and fans the items over a sequential loop, a shared-engine thread pool,
or a process pool that ships the schema text once per worker.

Surfaced as ``repro batch`` (NDJSON in, NDJSON envelopes out) and as the
service's ``POST /batch`` endpoint.
"""

from .executors import (
    EXECUTORS,
    BatchResult,
    chunk_indexed,
    default_workers,
    run_batch,
    run_items_process,
    run_items_shared,
)
from .plan import (
    MALFORMED_KEY,
    OPERATIONS,
    BatchPlan,
    compile_schema,
    item_envelope,
    read_ndjson,
    results_to_ndjson,
    run_item,
    summarize,
)

__all__ = [
    "BatchPlan",
    "BatchResult",
    "EXECUTORS",
    "MALFORMED_KEY",
    "OPERATIONS",
    "chunk_indexed",
    "compile_schema",
    "default_workers",
    "item_envelope",
    "read_ndjson",
    "results_to_ndjson",
    "run_batch",
    "run_item",
    "run_items_process",
    "run_items_shared",
    "summarize",
]
