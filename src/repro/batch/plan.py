"""Bulk-decision plans: one compiled schema, many inputs, one operation.

A :class:`BatchPlan` is the unit of corpus-scale work: the schema text is
parsed and pre-warmed **once** (per process, per worker), and every item
then pays only its own decision — the per-call process/request overhead
that dominates one-shot CLI and HTTP usage of the paper's PTIME
algorithms disappears.  The plan carries:

* ``operation`` — one decision procedure from Section 3 / Definition 2.x
  of Milo & Suciu (see :data:`OPERATIONS`);
* ``schema_text`` — ScmDL or DTD source, compiled once per executor
  worker (``evaluate`` is the one schema-optional operation);
* ``items`` — JSON objects, one decision each, with operation-specific
  fields mirroring the service endpoints (``query``, ``data``/``xml``,
  ``pins``, ``assignment``, ``limit``, ``total``).

Per-item failures are **isolated**: :func:`item_envelope` renders every
outcome as ``{"index", "ok", "result", "error"}`` using the same error
codes as the service envelopes, so one malformed input never fails the
batch.  :func:`summarize` aggregates the envelopes into the summary the
CLI prints and the benchmark records.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..data import from_xml, parse_data
from ..engine import Engine, resolve_backend
from ..query import evaluate, parse_query
from ..schema import Schema, find_type_assignment, parse_dtd, parse_schema
from ..service.envelope import ServiceError, as_service_error, positive_int_field
from ..service.registry import prewarm
from ..typing import check_total_types, check_types, classify, is_satisfiable
from ..typing.inference import iterate_inferred_types

#: The decision procedures a batch may run, one per plan.
OPERATIONS: Tuple[str, ...] = (
    "conforms",
    "satisfiable",
    "check",
    "infer",
    "classify",
    "evaluate",
)

#: Marker key :func:`read_ndjson` plants on lines that were not valid
#: JSON — the item then fails with a per-item ``bad-request`` envelope
#: instead of aborting the whole batch.
MALFORMED_KEY = "__malformed__"


@dataclass(frozen=True)
class BatchPlan:
    """One operation over many items against one (optional) schema.

    Raises:
        ValueError: on an unknown operation, an empty item list, or a
            missing schema for a schema-requiring operation (``evaluate``
            is the only operation that may run schema-less).
    """

    operation: str
    items: Tuple[Any, ...]
    schema_text: Optional[str] = None
    syntax: str = "scmdl"
    wrap: bool = False
    #: Automata backend for the plan's engines (None = env / default).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise ValueError(
                f"unknown batch operation {self.operation!r} "
                f"(expected one of {', '.join(OPERATIONS)})"
            )
        if self.backend is not None:
            resolve_backend(self.backend)  # validate eagerly
        if not self.items:
            raise ValueError("a batch plan needs at least one item")
        if self.schema_text is None and self.operation != "evaluate":
            raise ValueError(
                f"operation {self.operation!r} needs a schema "
                f"('evaluate' is the only schema-optional operation)"
            )
        if self.syntax not in ("scmdl", "dtd"):
            raise ValueError(
                f"unknown schema syntax {self.syntax!r} (expected 'scmdl' or 'dtd')"
            )

    def compile(self) -> Tuple[Optional[Schema], Engine]:
        """Parse the schema and pre-warm a fresh engine for it.

        This is the once-per-plan cost every item then shares; the
        process executor runs it in the parent and ships the captured
        compiled artifacts to its workers (see
        :func:`repro.batch.executors.run_items_process`).
        """
        return compile_schema(self.schema_text, self.syntax, self.wrap, self.backend)

    def parse_schema_only(self) -> Optional[Schema]:
        """Parse (without pre-warming) to surface syntax errors early —
        used before shipping the text to pool workers, where a parse
        failure would surface as an opaque broken-pool error."""
        if self.schema_text is None:
            return None
        if self.syntax == "dtd":
            return parse_dtd(self.schema_text, wrap=self.wrap)
        return parse_schema(self.schema_text)


def compile_schema(
    schema_text: Optional[str],
    syntax: str = "scmdl",
    wrap: bool = False,
    backend: Optional[str] = None,
) -> Tuple[Optional[Schema], Engine]:
    """Parse ``schema_text`` and pre-warm a dedicated engine for it."""
    engine = Engine(backend=backend)
    if schema_text is None:
        return None, engine
    if syntax == "dtd":
        schema = parse_dtd(schema_text, wrap=wrap)
    else:
        schema = parse_schema(schema_text)
    prewarm(schema, engine)
    return schema, engine


# ----------------------------------------------------------------------
# Per-item execution
# ----------------------------------------------------------------------


def run_item(
    operation: str, schema: Optional[Schema], engine: Engine, item: Any
) -> dict:
    """Run one decision; returns the operation's result payload.

    Raises :class:`ServiceError` (or a parse error) on a bad item — the
    caller maps it to a per-item error envelope.
    """
    if operation not in OPERATIONS:
        raise ServiceError(
            f"unknown batch operation {operation!r}", code="bad-request"
        )
    if not isinstance(item, dict):
        raise ServiceError("batch item must be a JSON object", code="bad-request")
    if MALFORMED_KEY in item:
        raise ServiceError(
            f"item is not valid JSON: {item[MALFORMED_KEY]}", code="bad-request"
        )
    if schema is None and operation != "evaluate":
        raise ServiceError(
            f"operation {operation!r} needs a schema", code="bad-request"
        )
    return _HANDLERS[operation](schema, engine, item)


def _string_field(item: Dict[str, Any], field: str) -> str:
    value = item.get(field)
    if not isinstance(value, str) or not value:
        raise ServiceError(
            f"item must carry a string field {field!r}", code="bad-request"
        )
    return value


def _pins_field(item: Dict[str, Any], field: str = "pins") -> Dict[str, str]:
    pins = item.get(field) or {}
    if not isinstance(pins, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in pins.items()
    ):
        raise ServiceError(
            f"{field!r} must map variable names to type/label strings",
            code="bad-request",
        )
    return pins


def _graph_field(item: Dict[str, Any]):
    if isinstance(item.get("xml"), str):
        return from_xml(item["xml"])
    if isinstance(item.get("data"), str):
        return parse_data(item["data"])
    raise ServiceError(
        "item must carry a data graph: 'data' (Table-1 text) or 'xml'",
        code="bad-request",
    )


def _op_conforms(schema: Schema, engine: Engine, item: Dict[str, Any]) -> dict:
    graph = _graph_field(item)
    assignment = find_type_assignment(graph, schema, engine)
    return {
        "valid": assignment is not None,
        "assignment": dict(assignment) if assignment is not None else None,
    }


def _op_satisfiable(schema: Schema, engine: Engine, item: Dict[str, Any]) -> dict:
    query = parse_query(_string_field(item, "query"))
    pins = _pins_field(item)
    return {"satisfiable": bool(is_satisfiable(query, schema, pins or None, engine))}


def _op_check(schema: Schema, engine: Engine, item: Dict[str, Any]) -> dict:
    query = parse_query(_string_field(item, "query"))
    assignment = _pins_field(item, "assignment")
    total = item.get("total", False)
    if not isinstance(total, bool):
        raise ServiceError("'total' must be a boolean", code="bad-request")
    checker = check_total_types if total else check_types
    try:
        verdict = checker(query, schema, assignment, engine)
    except ValueError as error:
        # check_types/check_total_types validate the assignment shape.
        raise ServiceError(str(error), code="bad-request") from None
    return {"well_typed": bool(verdict), "total": total}


def _op_infer(schema: Schema, engine: Engine, item: Dict[str, Any]) -> dict:
    query = parse_query(_string_field(item, "query"))
    pins = _pins_field(item)
    limit = positive_int_field(item, "limit")
    assignments: List[dict] = []
    for pins_out in iterate_inferred_types(query, schema, pins or None, engine):
        assignments.append(dict(pins_out))
        if limit is not None and len(assignments) >= limit:
            break
    return {
        "assignments": assignments,
        "count": len(assignments),
        "truncated": limit is not None and len(assignments) == limit,
    }


def _op_classify(schema: Schema, engine: Engine, item: Dict[str, Any]) -> dict:
    cell = classify(parse_query(_string_field(item, "query")), schema)
    result = dataclasses.asdict(cell)
    result["polynomial"] = cell.polynomial
    return result


def _op_evaluate(
    schema: Optional[Schema], engine: Engine, item: Dict[str, Any]
) -> dict:
    query = parse_query(_string_field(item, "query"))
    graph = _graph_field(item)
    limit = positive_int_field(item, "limit")
    bindings = evaluate(query, graph, limit=limit, engine=engine)
    return {"bindings": bindings, "count": len(bindings)}


_HANDLERS = {
    "conforms": _op_conforms,
    "satisfiable": _op_satisfiable,
    "check": _op_check,
    "infer": _op_infer,
    "classify": _op_classify,
    "evaluate": _op_evaluate,
}


def item_envelope(
    index: int,
    operation: str,
    schema: Optional[Schema],
    engine: Engine,
    item: Any,
) -> dict:
    """One item's outcome as a JSON-able ``ok``/``error`` envelope."""
    try:
        result = run_item(operation, schema, engine, item)
    except Exception as exc:  # noqa: BLE001 — per-item isolation
        error = as_service_error(exc)
        return {"index": index, "ok": False, "result": None, "error": error.to_error()}
    return {"index": index, "ok": True, "result": result, "error": None}


# ----------------------------------------------------------------------
# Aggregation and NDJSON framing
# ----------------------------------------------------------------------


def summarize(
    operation: str, executor: str, results: List[dict], elapsed_s: float
) -> dict:
    """The aggregate the CLI prints and ``bench_batch`` records."""
    error_codes: Dict[str, int] = {}
    for envelope in results:
        if not envelope["ok"]:
            code = envelope["error"]["code"]
            error_codes[code] = error_codes.get(code, 0) + 1
    errors = sum(error_codes.values())
    return {
        "operation": operation,
        "executor": executor,
        "items": len(results),
        "ok": len(results) - errors,
        "errors": errors,
        "error_codes": error_codes,
        "elapsed_s": round(elapsed_s, 6),
        "items_per_s": round(len(results) / elapsed_s, 2) if elapsed_s > 0 else None,
    }


def read_ndjson(text: str) -> List[Any]:
    """Parse NDJSON input: one JSON value per line, blank lines skipped.

    Lines that fail to parse become marker items (:data:`MALFORMED_KEY`)
    so they surface as per-item ``bad-request`` envelopes rather than
    failing the batch — the error-isolation contract.
    """
    items: List[Any] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            items.append(json.loads(line))
        except json.JSONDecodeError as error:
            items.append({MALFORMED_KEY: str(error)})
    return items


def results_to_ndjson(results: List[dict]) -> str:
    """Render per-item envelopes as NDJSON (one envelope per line)."""
    return "".join(json.dumps(envelope) + "\n" for envelope in results)
