"""Batch executors: sequential, shared-engine threads, process pool.

Three ways to drive a :class:`~repro.batch.plan.BatchPlan`:

* ``sequential`` — compile once, loop.  The honest baseline and the
  fallback everywhere else.
* ``thread`` — compile once, fan items over a small pool of daemon
  threads that all share the one pre-warmed
  :class:`~repro.engine.Engine` (the engine is thread-safe and
  single-flight, so concurrent items reuse — never duplicate — compiled
  automata).  This is what ``POST /batch`` uses, handing in the
  registry's already-warm engine.
* ``process`` — compile once in the parent, then ship the *compiled
  artifact* (schema plus minimized transition tables, as one versioned
  pickle payload; see :mod:`repro.engine.artifact`) to each worker via
  the pool initializer.  Workers unpickle dense integer arrays instead
  of re-parsing schema text and re-running the compile pipeline; items
  then pay pickling for their JSON dicts only.

The threaded pool is hand-rolled from daemon threads rather than
``concurrent.futures.ThreadPoolExecutor`` because the latter's workers
are non-daemon: a batch abandoned by the service's deadline runner would
then keep the interpreter alive at exit.  Daemon threads pulling indices
from a locked cursor give the same fan-out with none of that teardown
hazard.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..engine import Engine, EngineArtifact
from ..schema import Schema
from .plan import BatchPlan, item_envelope, summarize

#: The executor names :func:`run_batch` accepts.
EXECUTORS: Tuple[str, ...] = ("sequential", "thread", "process")


def default_workers() -> int:
    """A safe worker count for this host (bounded, never zero)."""
    return max(1, min(4, os.cpu_count() or 1))


def chunk_indexed(
    items: Sequence[Any], workers: int, chunk_size: Optional[int] = None
) -> List[List[Tuple[int, Any]]]:
    """Split ``items`` into index-tagged chunks for fan-out.

    Each element is ``(original_index, item)`` so results can be placed
    back in input order no matter which worker (or process) decided
    them.  The automatic chunk size aims for ~8 chunks per worker: large
    enough to amortize per-chunk dispatch, small enough that one slow
    chunk cannot strand the pool's tail.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(items) / (workers * 8)))
    elif chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    indexed = list(enumerate(items))
    return [indexed[i : i + chunk_size] for i in range(0, len(indexed), chunk_size)]


# ----------------------------------------------------------------------
# In-process execution over a shared engine
# ----------------------------------------------------------------------


def run_items_shared(
    operation: str,
    schema: Optional[Schema],
    engine: Engine,
    items: Sequence[Any],
    workers: int = 4,
) -> List[dict]:
    """Decide ``items`` on daemon threads sharing one pre-warmed engine.

    Returns per-item envelopes in input order.  This is the path
    ``POST /batch`` takes with the registry's engine; ``workers <= 1``
    (or a single item) degrades to a plain loop.
    """
    n = len(items)
    if n == 0:
        return []
    workers = min(workers, n)
    if workers <= 1:
        return [
            item_envelope(index, operation, schema, engine, item)
            for index, item in enumerate(items)
        ]

    results: List[Optional[dict]] = [None] * n
    cursor_lock = threading.Lock()
    cursor = [0]

    def drain() -> None:
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= n:
                    return
                cursor[0] = index + 1
            results[index] = item_envelope(
                index, operation, schema, engine, items[index]
            )

    threads = [
        threading.Thread(target=drain, daemon=True, name=f"repro-batch-{i}")
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # item_envelope never raises, so every slot is filled once the
    # drain threads exit.
    return [envelope for envelope in results if envelope is not None]


# ----------------------------------------------------------------------
# Process-pool execution (compiled artifacts shipped once per worker)
# ----------------------------------------------------------------------

#: Per-worker-process state set up by :func:`_process_init`.
_WORKER: dict = {}


def _process_init(operation: str, payload, backend: str) -> None:
    """Pool initializer: install the parent's compiled artifact.

    ``payload`` is one of:

    * ``None`` — the schema-less ``evaluate`` operation;
    * ``bytes`` — an :class:`~repro.engine.EngineArtifact` payload: the
      schema plus the parent's compiled tables, so the worker unpickles
      dense integer arrays instead of re-parsing schema text and
      re-running the compile pipeline from scratch;
    * a ``dict`` — a *store reference* ``{"cache_dir", "fingerprint",
      "schema_text", "syntax", "wrap"}``: the parent persisted the
      artifact once into an on-disk :class:`~repro.engine.ArtifactStore`
      and every worker loads it from there, so N workers cost one write
      plus N reads instead of N pickled payloads over the pipe.  A store
      miss (racing eviction, corrupt blob) falls back to compiling from
      the carried schema text — slower, never wrong.
    """
    if payload is None:
        schema: Optional[Schema] = None
        engine = Engine(backend=backend)
    elif isinstance(payload, dict):
        from ..engine import ArtifactStore

        store = ArtifactStore(root=payload["cache_dir"], backend=backend)
        artifact = store.get(payload["fingerprint"])
        if artifact is not None:
            engine = artifact.install()
            schema = artifact.schema
        else:
            from .plan import compile_schema

            schema, engine = compile_schema(
                payload["schema_text"], payload["syntax"], payload["wrap"], backend
            )
    else:
        artifact = EngineArtifact.from_bytes(payload)
        engine = artifact.install()
        schema = artifact.schema
    _WORKER["operation"] = operation
    _WORKER["schema"] = schema
    _WORKER["engine"] = engine


def _process_chunk(chunk: List[Tuple[int, Any]]) -> List[dict]:
    """Decide one index-tagged chunk inside a worker process."""
    return [
        item_envelope(
            index, _WORKER["operation"], _WORKER["schema"], _WORKER["engine"], item
        )
        for index, item in chunk
    ]


def run_items_process(
    plan: BatchPlan,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store=None,
) -> List[dict]:
    """Decide the plan's items across a process pool, in input order.

    The schema is parsed and compiled once in the parent — a syntax
    error must surface as this call's exception, not as an opaque
    ``BrokenProcessPool`` from a dying initializer — and the compiled
    artifacts reach each worker either as one explicit pickle payload or,
    with a ``store`` (an :class:`~repro.engine.ArtifactStore`), as a
    fingerprint the workers load from disk: the artifact is written once
    and shared by every worker instead of pickled per worker.  (The
    explicit ``to_bytes`` round-trip also holds under the ``fork`` start
    method, where initargs would otherwise reach workers by memory
    inheritance and never exercise pickling.)
    """
    schema, engine = plan.compile()
    payload = None
    if schema is not None:
        artifact = EngineArtifact.capture(engine, schema)
        if store is not None:
            if store.backend != engine.backend:
                raise ValueError(
                    f"artifact store holds backend {store.backend!r} but the "
                    f"plan compiled for {engine.backend!r}"
                )
            store.put(artifact, syntax=plan.syntax)
            payload = {
                "cache_dir": str(store.root),
                "fingerprint": artifact.fingerprint(),
                "schema_text": plan.schema_text,
                "syntax": plan.syntax,
                "wrap": plan.wrap,
            }
        else:
            payload = artifact.to_bytes()
    workers = workers or default_workers()
    chunks = chunk_indexed(plan.items, workers, chunk_size)
    results: List[Optional[dict]] = [None] * len(plan.items)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_process_init,
        initargs=(plan.operation, payload, engine.backend),
    ) as pool:
        for envelopes in pool.map(_process_chunk, chunks):
            for envelope in envelopes:
                results[envelope["index"]] = envelope
    return [envelope for envelope in results if envelope is not None]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


@dataclass
class BatchResult:
    """Per-item envelopes (input order) plus the aggregate summary."""

    results: List[dict]
    summary: dict


def run_batch(
    plan: BatchPlan,
    executor: str = "thread",
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    store=None,
) -> BatchResult:
    """Run ``plan`` under the named executor and summarize the outcome.

    ``store`` (an :class:`~repro.engine.ArtifactStore`) only affects the
    ``process`` executor, whose workers then load the compiled artifact
    from disk instead of receiving pickled bytes apiece.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r} (expected one of {', '.join(EXECUTORS)})"
        )
    started = time.perf_counter()
    if executor == "process":
        results = run_items_process(
            plan, workers=workers, chunk_size=chunk_size, store=store
        )
    else:
        schema, engine = plan.compile()
        if executor == "sequential":
            results = [
                item_envelope(index, plan.operation, schema, engine, item)
                for index, item in enumerate(plan.items)
            ]
        else:
            results = run_items_shared(
                plan.operation,
                schema,
                engine,
                plan.items,
                workers=workers or default_workers(),
            )
    elapsed = time.perf_counter() - started
    return BatchResult(
        results=results,
        summary=summarize(plan.operation, executor, results, elapsed),
    )
