"""Bulk-decision throughput benchmark — batch pipeline vs. per-item calls.

The batch pipeline's reason to exist is amortization: a corpus-scale run
should pay schema parsing and engine pre-warming **once**, not once per
item.  This benchmark measures exactly that on a seeded generated corpus
(:func:`repro.workloads.batch_corpus`):

* **per-item** — every item is decided through its own single-item
  :class:`~repro.batch.BatchPlan`, recompiling the schema each time:
  the cost profile of invoking ``repro satisfiable`` once per input;
* **batch-sequential** — one plan, one compile, a plain loop: pure
  amortization, no concurrency;
* **batch-thread** — the shared-engine thread executor ``POST /batch``
  uses;
* **batch-process** — the process-pool executor, schema text shipped
  once per worker.

Acceptance shape: the thread executor must be at least 2x the per-item
baseline on a >=1k-item corpus.  Emits a trajectory point to
``BENCH_batch.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch.py [--smoke]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.batch import BatchPlan, run_batch
from repro.engine import BACKENDS
from repro.workloads import batch_corpus

#: The batch executor the 2x acceptance bar is asserted against.
ACCEPTANCE_MODE = "batch-thread"
ACCEPTANCE_SPEEDUP = 2.0

#: The throughput corpus is clean: generation reject-and-resamples until
#: every item parses, so any nonzero error count means an executor is
#: failing good items and the benchmark aborts.  (Per-item error
#: isolation on deliberately dirty corpora is CI's batch-smoke job,
#: which passes ``corrupt_rate`` explicitly.)
CORRUPT_RATE = 0.0


def bench_per_item(
    operation: str, schema_text: str, items: list, backend: str
) -> dict:
    """The baseline: one single-item plan (and one compile) per item."""
    started = time.perf_counter()
    errors = 0
    for item in items:
        plan = BatchPlan(
            operation=operation,
            items=(item,),
            schema_text=schema_text,
            backend=backend,
        )
        outcome = run_batch(plan, executor="sequential")
        errors += outcome.summary["errors"]
    elapsed = time.perf_counter() - started
    return _point(len(items), errors, elapsed)


def bench_batch(
    operation: str, schema_text: str, items: list, executor: str, backend: str
) -> dict:
    """One plan over the whole corpus under the named executor."""
    plan = BatchPlan(
        operation=operation,
        items=tuple(items),
        schema_text=schema_text,
        backend=backend,
    )
    started = time.perf_counter()
    outcome = run_batch(plan, executor=executor)
    elapsed = time.perf_counter() - started
    return _point(outcome.summary["items"], outcome.summary["errors"], elapsed)


def _point(items: int, errors: int, elapsed: float) -> dict:
    return {
        "items": items,
        "errors": errors,
        "elapsed_s": round(elapsed, 4),
        "items_per_s": round(items / elapsed, 2) if elapsed > 0 else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--items", type=int, default=1200, help="corpus size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--operation", default="satisfiable", help="corpus operation to run"
    )
    parser.add_argument(
        "--backend",
        default="compiled",
        choices=BACKENDS,
        help="automata backend every mode runs on",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus, no 2x acceptance bar (the amortization floor "
        "batch-sequential >= per-item still applies)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_batch.json"),
    )
    args = parser.parse_args()

    n_items = 60 if args.smoke else args.items
    schema_text, items = batch_corpus(
        operation=args.operation,
        n_items=n_items,
        seed=args.seed,
        n_sections=16,
        corrupt_rate=CORRUPT_RATE,
    )
    # The corpus is 100% valid by construction (reject-and-resample in
    # batch_corpus), so every mode must report exactly zero errors.
    corpus_errors = int(n_items * CORRUPT_RATE)
    assert corpus_errors == 0, "throughput corpus must be clean"

    modes = {}
    modes["per-item"] = bench_per_item(
        args.operation, schema_text, items, args.backend
    )
    print(f"per-item        {modes['per-item']['items_per_s']:>10} items/s")
    for executor in ("sequential", "thread", "process"):
        point = bench_batch(
            args.operation, schema_text, items, executor, args.backend
        )
        modes[f"batch-{executor}"] = point
        print(f"batch-{executor:<10}{point['items_per_s']:>10} items/s")

    drifted = {
        name: point["errors"]
        for name, point in modes.items()
        if point["errors"] != corpus_errors
    }
    if drifted:
        print(
            f"FAIL: the corpus is clean but these modes reported errors "
            f"(expected {corpus_errors}): {drifted}",
            file=sys.stderr,
        )
        return 1

    baseline = modes["per-item"]["elapsed_s"]
    speedups = {
        name: round(baseline / point["elapsed_s"], 2)
        for name, point in modes.items()
        if name != "per-item" and point["elapsed_s"] > 0
    }
    accepted = speedups.get(ACCEPTANCE_MODE, 0.0) >= ACCEPTANCE_SPEEDUP
    record = {
        "benchmark": "batch",
        "operation": args.operation,
        "backend": args.backend,
        "corpus_items": n_items,
        "corpus_errors": corpus_errors,
        "seed": args.seed,
        "smoke": args.smoke,
        "modes": modes,
        "speedup_vs_per_item": speedups,
        "acceptance": {
            "mode": ACCEPTANCE_MODE,
            "required_speedup": ACCEPTANCE_SPEEDUP,
            "passed": accepted,
        },
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"speedups vs per-item: {speedups}")
    print(f"wrote {args.out}")
    if args.smoke:
        # The CI gate: even at smoke scale, one compile amortized over
        # the corpus must not lose to recompiling per item.
        floor = speedups.get("batch-sequential", 0.0)
        if floor < 1.0:
            print(
                f"FAIL: batch-sequential speedup {floor} < 1.0x per-item "
                f"(amortization regressed below the sequential baseline)",
                file=sys.stderr,
            )
            return 1
        return 0
    if not accepted:
        print(
            f"FAIL: {ACCEPTANCE_MODE} speedup "
            f"{speedups.get(ACCEPTANCE_MODE)} < {ACCEPTANCE_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
