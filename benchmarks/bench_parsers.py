"""Experiment T1 — Table 1: the three grammars (data, types, patterns).

Round-trip throughput for the parsers/printers pinning the Table-1
surface syntax, sized by input length.  Not a paper claim per se, but the
substrate every other experiment stands on.
"""

import random

import pytest

from repro.data import data_to_string, parse_data
from repro.query import parse_query, query_to_string
from repro.schema import parse_schema, schema_to_string
from repro.workloads import document_schema, random_instance


def make_data_text(size_seed: int) -> str:
    graph = random_instance(
        document_schema(2), random.Random(size_seed), max_depth=8, star_bias=0.7
    )
    return data_to_string(graph)


@pytest.mark.parametrize("seed", [1, 2])
def test_data_round_trip(benchmark, seed):
    text = make_data_text(seed)

    def round_trip():
        return parse_data(data_to_string(parse_data(text)))

    graph = benchmark(round_trip)
    assert graph == parse_data(text)


@pytest.mark.parametrize("sections", [2, 8])
def test_schema_round_trip(benchmark, sections):
    schema = document_schema(sections)
    text = schema_to_string(schema)

    def round_trip():
        return parse_schema(schema_to_string(parse_schema(text)))

    assert benchmark(round_trip) == schema


def test_query_round_trip(benchmark):
    text = (
        "SELECT X1 WHERE Root = [paper -> X1];"
        "X1 = [author.name.(_*) -> X2, author.name.(_*) -> X3];"
        'X2 = "Vianu"; X3 = "Abiteboul"'
    )

    def round_trip():
        return parse_query(query_to_string(parse_query(text)))

    assert benchmark(round_trip) == parse_query(text)


def test_xml_round_trip(benchmark):
    from repro.data import from_xml, to_xml

    xml = (
        "<doc>" + "".join(
            f"<paper><title>t{i}</title><author><name>"
            f"<firstname>f{i}</firstname><lastname>l{i}</lastname>"
            f"</name><email>e{i}</email></author></paper>"
            for i in range(20)
        ) + "</doc>"
    )

    def round_trip():
        return to_xml(from_xml(xml))

    first = round_trip()
    assert benchmark(round_trip) == first
