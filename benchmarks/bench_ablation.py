"""Ablations: alternative engines for the same problems.

DESIGN.md calls out the load-bearing design choices; each has a second
implementation (or an external baseline) to compare against:

* satisfiability on the join-free ordered fragment: the general
  pinned-checker vs. the Section 3.4 trace-grammar construction
  (`TraceGrammar`) — same verdicts, different constant factors;
* the NP cells: the semistructured checker on the reduction vs. DPLL on
  the source formula — how much the generic engine pays over a dedicated
  solver on the same underlying combinatorics;
* conformance: full candidate refinement vs. the verification-only path
  (`verify_assignment`) when the assignment is already known.
"""

import random

import pytest

from repro.reductions import dpll, random_3sat, reduce_formula
from repro.schema import find_type_assignment, verify_assignment
from repro.typing import TraceGrammar, is_satisfiable
from repro.workloads import (
    chain_query,
    chain_schema,
    deep_tree_query,
    document_schema,
    random_instance,
)

DEPTHS = [4, 8, 16]


@pytest.mark.parametrize("depth", DEPTHS)
def test_general_checker_join_free(benchmark, depth):
    schema = chain_schema(depth)
    query = deep_tree_query(depth)
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("depth", DEPTHS)
def test_trace_grammar_join_free(benchmark, depth):
    """Ablation: the explicit §3.4 grammar on the same inputs."""
    schema = chain_schema(depth)
    query = deep_tree_query(depth)

    def run():
        return TraceGrammar(query, schema).satisfiable()

    assert benchmark(run)


@pytest.mark.parametrize("n_vars", [2, 3, 4])
def test_reduction_via_checker(benchmark, n_vars):
    formula = random_3sat(n_vars, n_clauses=n_vars + 1, rng=random.Random(3))
    schema, query = reduce_formula(formula)
    result = benchmark.pedantic(
        is_satisfiable, args=(query, schema), rounds=1, iterations=1
    )
    assert result == (dpll(formula) is not None)


@pytest.mark.parametrize("n_vars", [2, 3, 4])
def test_reduction_via_dpll(benchmark, n_vars):
    """Baseline: the dedicated solver on the same formulas."""
    formula = random_3sat(n_vars, n_clauses=n_vars + 1, rng=random.Random(3))
    benchmark(dpll, formula)


@pytest.mark.parametrize("seed", [1, 2])
def test_conformance_search(benchmark, seed):
    schema = document_schema(2)
    graph = random_instance(schema, random.Random(seed), max_depth=7, star_bias=0.6)
    assignment = benchmark(find_type_assignment, graph, schema)
    assert assignment is not None


@pytest.mark.parametrize("seed", [1, 2])
def test_conformance_verify_only(benchmark, seed):
    """Ablation: re-verifying a known assignment (no search)."""
    schema = document_schema(2)
    graph = random_instance(schema, random.Random(seed), max_depth=7, star_bias=0.6)
    assignment = find_type_assignment(graph, schema)
    assert benchmark(verify_assignment, graph, schema, assignment)
