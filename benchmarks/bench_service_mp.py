"""Multi-process serving-tier benchmark: pool mode vs. single process.

``BENCH_service.json`` established the single-process warm ceiling (the
historical baseline was ~720 req/s for warm ``satisfiable``).  The pool
tier (``repro serve --workers N``) exists to beat that ceiling: an
asyncio frontend routes requests by schema fingerprint to persistent
worker processes, each warmed from the shared artifact store.

This benchmark drives both tiers over real HTTP with ``--clients``
concurrent keep-alive connections, each pipelining a window of requests
(send the next request before reading the previous response) — the load
shape a service actually sees, and the one that lets a multi-process
backend overlap work across processes.

Measured per tier: warm ``satisfiable`` and warm ``infer`` throughput
against ``--schemas`` distinct registered schemas (so the pool's
fingerprint routing actually spreads load across workers).

Acceptance shape (non-smoke): pool mode with 4 workers must clear
**3x the recorded 720 req/s single-process baseline** on the warm
satisfiable workload.

Emits ``BENCH_service_mp.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_mp.py [--smoke]
"""

import argparse
import json
import socket
import sys
import threading
import time
from pathlib import Path

from repro.schema import schema_to_string
from repro.service import PoolService, ServiceClient, TypedQueryService
from repro.workloads import document_schema

#: The single-process warm-satisfiable baseline recorded by
#: ``bench_service.py`` before this tier existed (BENCH_service.json at
#: PR 7).  Hardcoded — rerunning that benchmark refreshes its file with
#: post-keep-alive numbers, but the acceptance bar is against history.
BASELINE_SINGLE_RPS = 720.0

#: Pipelining window per client connection: enough to hide the
#: per-request round trip without distorting latency accounting.
PIPELINE_DEPTH = 8

QUERIES = {
    "satisfiable": "SELECT X WHERE Root = [paper.(_*).head1 -> X]",
    "infer": "SELECT X WHERE Root = [paper._ -> X]",
}


def build_schemas(count: int) -> list:
    """``count`` structurally distinct schemas (distinct fingerprints)."""
    return [schema_to_string(document_schema(12 + i)) for i in range(count)]


class PipelinedClient:
    """One keep-alive connection issuing pipelined POSTs.

    ``http.client`` serializes request/response strictly; measuring a
    multi-process backend through it measures the client.  This speaks
    the wire format directly: keep ``PIPELINE_DEPTH`` requests in
    flight, count complete responses.
    """

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=60)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = b""

    def close(self) -> None:
        self.sock.close()

    @staticmethod
    def encode(path: str, payload: dict) -> bytes:
        body = json.dumps(payload).encode()
        return (
            f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body

    def read_response(self) -> int:
        """Read one complete response; returns its HTTP status."""
        while b"\r\n\r\n" not in self._buffer:
            self._buffer += self._recv()
        head, _, rest = self._buffer.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(rest) < length:
            rest += self._recv()
        self._buffer = rest[length:]
        return int(head.split(b"\r\n", 1)[0].split()[1])

    def _recv(self) -> bytes:
        chunk = self.sock.recv(1 << 16)
        if not chunk:
            raise ConnectionError("server closed mid-response")
        return chunk

    def run(self, requests: list) -> int:
        """Issue all ``requests`` with pipelining; returns the 200 count."""
        ok = 0
        in_flight = 0
        next_index = 0
        while next_index < len(requests) or in_flight:
            while in_flight < PIPELINE_DEPTH and next_index < len(requests):
                self.sock.sendall(requests[next_index])
                next_index += 1
                in_flight += 1
            if self.read_response() == 200:
                ok += 1
            in_flight -= 1
        return ok


def drive(host: str, port: int, workload: str, fingerprints: list,
          clients: int, per_client: int) -> dict:
    """``clients`` threads, each a pipelined connection; returns rps."""
    query = QUERIES[workload]
    path = f"/{workload}"
    outcomes = [None] * clients

    def worker(index: int) -> None:
        client = PipelinedClient(host, port)
        try:
            requests = [
                PipelinedClient.encode(
                    path,
                    {"fingerprint": fingerprints[i % len(fingerprints)],
                     "query": query},
                )
                for i in range(per_client)
            ]
            outcomes[index] = client.run(requests)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    completed = sum(outcome or 0 for outcome in outcomes)
    total = clients * per_client
    if completed != total:
        raise AssertionError(
            f"{workload}: {total - completed} of {total} requests failed"
        )
    return {
        "requests": total,
        "rps": round(total / elapsed, 2),
        "elapsed_s": round(elapsed, 3),
    }


def register_and_warm(host: str, port: int, schemas: list) -> list:
    """Register every schema and absorb first-query compilation."""
    client = ServiceClient(host, port)
    fingerprints = []
    for text in schemas:
        fingerprint = client.register_schema(text)["fingerprint"]
        for workload, query in QUERIES.items():
            if workload == "satisfiable":
                client.satisfiable(fingerprint, query)
            else:
                client.infer(fingerprint, query)
        fingerprints.append(fingerprint)
    client.close()
    return fingerprints


def bench_tier(service, schemas: list, clients: int, per_client: int) -> dict:
    fingerprints = register_and_warm(service.host, service.port, schemas)
    results = {}
    for workload in QUERIES:
        results[workload] = drive(
            service.host, service.port, workload, fingerprints,
            clients, per_client,
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny request counts; checks the shape, not the numbers",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--schemas", type=int, default=8,
        help="distinct registered schemas (spreads fingerprint routing)",
    )
    parser.add_argument("--per-client", type=int, default=None)
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service_mp.json"
        ),
        help="trajectory file to write",
    )
    args = parser.parse_args(argv)
    per_client = args.per_client or (5 if args.smoke else 250)
    clients = 2 if args.smoke else args.clients
    schemas = build_schemas(2 if args.smoke else args.schemas)

    print(f"single-process tier: {clients} clients x {per_client} requests")
    with TypedQueryService() as service:
        single = bench_tier(service, schemas, clients, per_client)
    for workload, numbers in single.items():
        print(f"  {workload:12s} {numbers['rps']:10.1f} req/s")

    print(f"pool tier ({args.workers} workers): same load")
    with PoolService(workers=args.workers) as service:
        pool = bench_tier(service, schemas, clients, per_client)
        stats = ServiceClient(service.host, service.port).stats()
    for workload, numbers in pool.items():
        print(f"  {workload:12s} {numbers['rps']:10.1f} req/s")
    per_worker = [
        {"id": row["id"], "requests": row["requests"], "alive": row["alive"]}
        for row in stats["pool"]["per_worker"]
    ]
    print(
        "  per-worker requests:",
        ", ".join(f"#{row['id']}:{row['requests']}" for row in per_worker),
    )

    point = {
        "bench": "service_mp",
        "smoke": bool(args.smoke),
        "workers": args.workers,
        "clients": clients,
        "schemas": len(schemas),
        "per_client": per_client,
        "baseline_single_rps": BASELINE_SINGLE_RPS,
        "single": single,
        "pool": pool,
        "per_worker": per_worker,
        "speedup_vs_baseline": round(
            pool["satisfiable"]["rps"] / BASELINE_SINGLE_RPS, 2
        ),
    }
    Path(args.out).write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    # Routing must actually spread schemas: with >=2 workers and >=2
    # schemas, more than one worker should have seen decision traffic.
    active = sum(1 for row in per_worker if row["requests"] > 0)
    if args.workers >= 2 and len(schemas) >= 2 and active < 2:
        failures.append(f"only {active} worker(s) received requests")
    if not args.smoke:
        bar = 3.0 * BASELINE_SINGLE_RPS
        if pool["satisfiable"]["rps"] < bar:
            failures.append(
                f"pool satisfiable {pool['satisfiable']['rps']} req/s is "
                f"below the bar of 3x the {BASELINE_SINGLE_RPS} req/s "
                f"single-process baseline ({bar} req/s)"
            )
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("ok: pool tier clears the multi-process acceptance bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
