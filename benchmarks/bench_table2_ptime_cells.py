"""Experiment T2.b/c/d — the PTIME cells of Table 2.

Paper claim: satisfiability is polynomial for

* join-free queries over ordered schemas (column 2, row "ordered"),
* bounded-joins queries over ordered schemas (column 3),
* constant-suffix queries with joins over ordered+tagged schemas
  (columns 4-5, row "ordered+tagged") — the DTD⁺ case relevant to XML-QL,
* join-free queries over DTD⁻ schemas — the XSL case.

Each benchmark sweeps the input size; polynomial scaling shows as a
slowly-growing per-size time series (compare with
``bench_table2_np_cells.py``, where the same checker blows up).
"""

import pytest

from repro.typing import SatisfiabilityChecker, classify, is_satisfiable
from repro.workloads import (
    bounded_join_query,
    chain_query,
    chain_schema,
    constant_suffix_query,
    deep_tree_query,
    document_schema,
    join_schema,
    star_fanout_query,
)

SIZES = [2, 4, 8, 16]


@pytest.mark.parametrize("depth", SIZES)
def test_join_free_constant_labels_ordered(benchmark, depth):
    """Row "ordered" x column "join-free + constant labels"."""
    schema = chain_schema(depth)
    query = chain_query(depth)
    cell = classify(query, schema)
    assert cell.polynomial
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("depth", SIZES)
def test_join_free_regex_ordered(benchmark, depth):
    """Row "ordered" x column "join-free" with regular path expressions."""
    schema = chain_schema(depth)
    query = chain_query(depth, wildcard=True)
    assert classify(query, schema).polynomial
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("arms", [1, 2, 4, 8])
def test_join_free_fanout_dtd_minus(benchmark, arms):
    """The XSL case: join-free queries over a DTD⁻ schema."""
    schema = document_schema(2)
    query = star_fanout_query(arms)
    assert classify(query, schema).polynomial
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("depth", [2, 3, 4, 5])
def test_bounded_joins_ordered(benchmark, depth):
    """Row "ordered" x column "bounded joins" (B=1)."""
    schema = join_schema(depth, n_joins=1)
    query = bounded_join_query(depth, n_joins=1)
    cell = classify(query, schema)
    assert cell.query_column == "bounded-joins"
    checker = SatisfiabilityChecker(query, schema)
    assert benchmark(checker.satisfiable, {})
    # The enumeration is linear in the candidate set, not exponential
    # (measured on a fresh checker: the benchmark loop reuses the other).
    fresh = SatisfiabilityChecker(query, schema)
    assert fresh.satisfiable({})
    assert fresh.enumerated <= 2 * len(schema.tids())


@pytest.mark.parametrize("depth", SIZES)
def test_constant_suffix_tagged_with_joins(benchmark, depth):
    """Row "ordered+tagged" x column "constant suffix", with a node join.

    Tagging + the constant suffix collapse the join variable's candidate
    set to one type, so satisfiability stays polynomial even with joins —
    the XML-QL-relevant cell.
    """
    schema = chain_schema(depth)
    query = constant_suffix_query(f"a{depth}", n_arms=1)
    assert classify(query, schema).polynomial
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("depth", SIZES)
def test_nested_pattern_tree(benchmark, depth):
    """Nested join-free definitions (the acyclic extended CFG path)."""
    schema = chain_schema(depth)
    query = deep_tree_query(depth)
    assert benchmark(is_satisfiable, query, schema)
