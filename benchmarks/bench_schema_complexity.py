"""Schema complexity — the paper's deferred "third kind" (footnote 1).

Section 3 studies query and combined complexity; schema complexity (the
query fixed, only the schema grows) is deferred to the paper's full
version as less practically relevant.  We measure it anyway: for a fixed
small query, satisfiability over growing schemas stays polynomial in all
our PTIME rows — the schema enters only through automata products and the
schema graph.
"""

import pytest

from repro.query import parse_query
from repro.typing import is_satisfiable
from repro.workloads import chain_schema, document_schema, union_chain_schema

FIXED_QUERY = parse_query("SELECT X WHERE Root = [(_*).a1 -> X]")
SIZES = [4, 8, 16, 32]


@pytest.mark.parametrize("depth", SIZES)
def test_fixed_query_growing_chain(benchmark, depth):
    """Tagged ordered schemas: the query is constant, the schema grows."""
    schema = chain_schema(depth)
    assert benchmark(is_satisfiable, FIXED_QUERY, schema)


@pytest.mark.parametrize("depth", [2, 4, 8, 16])
def test_fixed_query_growing_union_schema(benchmark, depth):
    """Untagged ordered schemas: candidate sets grow with the schema, but
    the join-free query never enumerates them."""
    schema = union_chain_schema(depth)
    query = parse_query("SELECT X WHERE Root = [(_*).a1 -> X]")
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("sections", [2, 4, 8, 16])
def test_fixed_query_growing_document(benchmark, sections):
    schema = document_schema(sections)
    query = parse_query("SELECT X WHERE Root = [paper.title -> X]")
    assert benchmark(is_satisfiable, query, schema)


@pytest.mark.parametrize("sections", [2, 4, 8])
def test_inference_schema_sweep(benchmark, sections):
    """Inference with a fixed query over growing schemas: the candidate
    domain grows with the schema, the output stays size 1."""
    from repro.typing import infer_types

    schema = document_schema(sections)
    query = parse_query("SELECT X WHERE Root = [paper.title -> X]")
    results = benchmark(infer_types, query, schema)
    assert results == [{"X": "TITLE"}]
