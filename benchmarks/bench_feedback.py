"""Experiment F4.1 — Proposition 4.1: feedback queries in PTIME.

Paper claim: the minimal equivalent query (per-arm trace projections) is
computable in polynomial time from the query and schema.

Reproduction: the paper's "Gray" feedback example as the fixed workload,
plus sweeps over schema depth and arm count; the series should grow
polynomially.
"""

import pytest

from repro.apps import feedback_query
from repro.query import parse_query
from repro.schema import parse_schema
from repro.workloads import chain_query, chain_schema, document_schema, star_fanout_query

DOCUMENT_SCHEMA = parse_schema(
    """
    DOCUMENT = [(paper -> PAPER)*];
    PAPER = [title -> TITLE . (author -> AUTHOR)*];
    AUTHOR = [name -> NAME . email -> EMAIL];
    NAME = [firstname -> FIRSTNAME . lastname -> LASTNAME];
    TITLE = string; FIRSTNAME = string; LASTNAME = string; EMAIL = string
    """
)

GRAY_QUERY = parse_query(
    """
    SELECT X3
    WHERE Root = [paper.author -> X1];
          X1 = [(_*).name.(_*) -> X2, (_*).email -> X3];
          X2 = "Gray"
    """
)


def test_gray_example(benchmark):
    """The paper's Section 4.1 worked example."""
    tightened = benchmark(feedback_query, GRAY_QUERY, DOCUMENT_SCHEMA)
    arm1 = tightened.definition("X1").arms[0].path
    assert arm1.symbols() <= {"name", "firstname", "lastname"}


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_feedback_depth_sweep(benchmark, depth):
    """Schema/query size sweep with a wildcard query."""
    schema = chain_schema(depth)
    query = chain_query(depth, wildcard=True)
    tightened = benchmark(feedback_query, query, schema)
    arm = tightened.definition("Root").arms[0].path
    # The wildcard prefix collapses to the unique chain labels.
    assert arm.symbols() == {f"a{level}" for level in range(1, depth + 1)}


@pytest.mark.parametrize("arms", [1, 2, 4])
def test_feedback_arm_sweep(benchmark, arms):
    """Arm-count sweep over the document schema."""
    schema = document_schema(2)
    query = star_fanout_query(arms)
    tightened = benchmark(feedback_query, query, schema)
    assert len(tightened.definition("Root").arms) == arms
