"""Service throughput benchmark — cold registry vs. warm registry.

The typed-query daemon's reason to exist is that a *warm* registry turns
every request into cache hits on pre-compiled automata.  This benchmark
measures that from the outside, over real HTTP:

* **cold** — before every request the schema is evicted and re-registered,
  so each iteration pays schema parsing, engine pre-warming, and automata
  construction (the one-shot-process cost the daemon amortizes away);
* **warm** — the schema is registered once; every request addresses it by
  fingerprint and rides the resident engine.

Acceptance shape: warm throughput must be at least 3x cold for the
``satisfiable`` workload and 2.5x cold for ``infer``, and the warm run's
``/stats`` must show zero new engine-cache misses (repeated requests ride
the per-entry decision memo and never recompile automata).

Emits a trajectory point to ``BENCH_service.json`` (requests/sec per
workload, cold and warm, plus the speedup).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.schema import schema_to_string
from repro.service import ServiceClient, TypedQueryService
from repro.workloads import document_schema

#: Wide enough that schema compilation dominates HTTP overhead: the cold
#: path must re-register (parse + pre-warm + query automata) per request.
SCHEMA_TEXT = schema_to_string(document_schema(16))

#: Queries that exercise path automata over the registered schema.
WORKLOADS = {
    "satisfiable": "SELECT X WHERE Root = [paper.(_*).head1 -> X]",
    "infer": "SELECT X WHERE Root = [paper._ -> X]",
}


def _run_workload(client: ServiceClient, name: str, fingerprint: str) -> None:
    query = WORKLOADS[name]
    if name == "satisfiable":
        result = client.satisfiable(fingerprint, query)
        assert result["satisfiable"] is True
    else:
        result = client.infer(fingerprint, query)
        assert result["count"] >= 1


def bench_cold(service: TypedQueryService, name: str, repeats: int) -> float:
    """Requests/sec when every request finds an empty registry."""
    client = ServiceClient(service.host, service.port)
    elapsed = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        fingerprint = client.register_schema(SCHEMA_TEXT)["fingerprint"]
        _run_workload(client, name, fingerprint)
        elapsed += time.perf_counter() - started
        # Eviction (outside the timed window) makes the next request cold.
        client.evict_schema(fingerprint)
    return repeats / elapsed


def bench_warm(service: TypedQueryService, name: str, repeats: int) -> dict:
    """Requests/sec against a schema registered once, plus cache deltas."""
    client = ServiceClient(service.host, service.port)
    fingerprint = client.register_schema(SCHEMA_TEXT)["fingerprint"]
    _run_workload(client, name, fingerprint)  # absorb first-query compilation
    before = client.stats()["registry"]["engines"][fingerprint]
    started = time.perf_counter()
    for _ in range(repeats):
        _run_workload(client, name, fingerprint)
    elapsed = time.perf_counter() - started
    after = client.stats()["registry"]["engines"][fingerprint]
    client.evict_schema(fingerprint)
    return {
        "rps": repeats / elapsed,
        "hit_delta": after["hits"] - before["hits"],
        "miss_delta": after["misses"] - before["misses"],
        "decision_hit_delta": (
            after["decisions"]["hits"] - before["decisions"]["hits"]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny iteration counts; checks the shape, not the numbers",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="override the request count"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_service.json"),
        help="trajectory file to write",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 40)

    results = {}
    with TypedQueryService() as service:
        for name in WORKLOADS:
            cold_rps = bench_cold(service, name, repeats)
            warm = bench_warm(service, name, repeats)
            speedup = warm["rps"] / cold_rps
            results[name] = {
                "repeats": repeats,
                "cold_rps": round(cold_rps, 2),
                "warm_rps": round(warm["rps"], 2),
                "speedup": round(speedup, 2),
                "warm_hit_delta": warm["hit_delta"],
                "warm_miss_delta": warm["miss_delta"],
                "warm_decision_hit_delta": warm["decision_hit_delta"],
            }
            print(
                f"{name:12s} cold {cold_rps:8.1f} req/s   "
                f"warm {warm['rps']:8.1f} req/s   "
                f"speedup {speedup:5.1f}x   "
                f"(warm cache: +{warm['hit_delta']} hits, "
                f"+{warm['miss_delta']} misses, "
                f"+{warm['decision_hit_delta']} memo hits)"
            )

    point = {
        "bench": "service",
        "schema_types": SCHEMA_TEXT.count("="),
        "smoke": bool(args.smoke),
        "results": results,
    }
    Path(args.out).write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    for name, numbers in results.items():
        # Warm requests must skip compilation entirely: no new misses.
        if numbers["warm_miss_delta"] != 0:
            failures.append(f"{name}: warm path recompiled automata")
    if not args.smoke and results["satisfiable"]["speedup"] < 3.0:
        failures.append(
            f"satisfiable: warm speedup {results['satisfiable']['speedup']}x "
            f"is below the 3x bar"
        )
    # Inference enumerates |select| x |domain| satisfiability calls, so the
    # engine cache alone left warm infer at 1.4x cold; the per-entry
    # decision memo collapses a repeated request to one dict lookup and
    # must clear 2.5x.
    if not args.smoke and results["infer"]["speedup"] < 2.5:
        failures.append(
            f"infer: warm speedup {results['infer']['speedup']}x "
            f"is below the 2.5x bar (decision memo not engaged?)"
        )
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("ok: warm registry beats cold and takes only cache hits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
