"""Regenerate Table 2 with measured scaling verdicts.

For every (schema row, query column) cell of the paper's Table 2 this
script runs the satisfiability checker on a growing workload family for
that cell, fits the growth of the measured times, and prints the verdict
(poly / exp) next to the paper's prediction.

Run with::

    python benchmarks/report_table2.py
"""

from __future__ import annotations

import math
import random
import time
from typing import Callable, List, Optional, Tuple

from repro.automata import ANY, Sym, alt, concat, star, word
from repro.query import PatternArm, PatternDef, PatternKind, Query
from repro.reductions import Cnf, random_3sat, reduce_formula
from repro.schema import Schema, TypeDef, TypeKind
from repro.typing import is_satisfiable, table2_prediction
from repro.workloads import (
    bounded_join_query,
    chain_query,
    chain_schema,
    join_schema,
    unordered_schema,
)

#: (row, column) -> (sizes, workload factory size -> (schema, query))
Workload = Callable[[int], Tuple[Schema, Query]]


def unsat_formula(n_vars: int) -> Cnf:
    clauses = [(1,)] + [(-v, v + 1) for v in range(1, n_vars)] + [(-n_vars,)]
    return Cnf(n_vars, clauses)


def w_general(n: int):
    return reduce_formula(unsat_formula(n))


def w_ordered_arbitrary(n: int):
    # Ordered variant of the reduction: order does not tame joins/overlap
    # when unions stay untagged — model with many label-joined arms.
    formula = random_3sat(n, n_clauses=n + 2, rng=random.Random(5))
    schema, query = reduce_formula(formula)
    return schema, query


def w_ordered_join_free(n: int):
    return chain_schema(n), chain_query(n, wildcard=True)


def w_ordered_bounded_joins(n: int):
    return join_schema(n, n_joins=1), bounded_join_query(n, n_joins=1)


def w_tagged_constant_suffix(n: int):
    schema = chain_schema(n)
    arm = concat(star(ANY), Sym(f"a{n}"))
    query = Query(
        ["X"],
        [PatternDef("Root", PatternKind.ORDERED, arms=[PatternArm(arm, "X")])],
    )
    return schema, query


def w_unordered_join_free_constant(n: int):
    schema = unordered_schema(n)
    arms = [
        PatternArm(concat(Sym(f"a{i}"), Sym(f"hit{i}")), f"X{i}")
        for i in range(1, n + 1)
    ]
    query = Query([], [PatternDef("Root", PatternKind.UNORDERED, arms=arms)])
    return schema, query


CELLS = [
    # (row, column, sizes, workload)
    ("arbitrary", "arbitrary", [2, 3, 4], w_general),
    ("arbitrary", "join-free+constant-labels", [2, 3, 4, 5], w_unordered_join_free_constant),
    ("ordered", "join-free", [4, 8, 16, 32], w_ordered_join_free),
    ("ordered", "bounded-joins", [4, 8, 16, 32], w_ordered_bounded_joins),
    ("ordered+tagged", "constant-suffix", [4, 8, 16, 32], w_tagged_constant_suffix),
    ("ordered+tagged", "join-free", [4, 8, 16, 32], w_ordered_join_free),
]


def measure(workload: Workload, sizes: List[int]) -> List[float]:
    times = []
    for size in sizes:
        schema, query = workload(size)
        start = time.perf_counter()
        is_satisfiable(query, schema)
        times.append(time.perf_counter() - start)
    return times


def growth_verdict(sizes: List[int], times: List[float]) -> str:
    """Classify growth by the per-unit-size time multiplier.

    An exponential family multiplies its running time by a constant for
    every +1 of the size parameter (here ≥ 1.6x); a polynomial family's
    per-unit multiplier tends to 1 as sizes grow.
    """
    span = sizes[-1] - sizes[0]
    ratio = max(times[-1], 1e-7) / max(times[0], 1e-7)
    per_unit = ratio ** (1.0 / span)
    return "exponential-ish" if per_unit >= 1.6 else "polynomial-ish"


def main() -> None:
    print("Reproduction of Table 2 (satisfiability) — measured scaling\n")
    header = f"{'schema row':18} {'query column':28} {'paper':14} {'measured':16} times(ms)"
    print(header)
    print("-" * len(header))
    for row, column, sizes, workload in CELLS:
        prediction = table2_prediction(row, column)
        times = measure(workload, sizes)
        verdict = growth_verdict(sizes, times)
        agree = (
            (prediction == "PTIME") == (verdict == "polynomial-ish")
        )
        rendered = " ".join(f"{1000 * t:8.2f}" for t in times)
        flag = "" if agree else "  <-- MISMATCH"
        print(f"{row:18} {column:28} {prediction:14} {verdict:16} {rendered}{flag}")
    print(
        "\n(NP cells use the 3SAT reduction / forced-overlap families; "
        "sizes are formula variables or schema depth/width.)"
    )


if __name__ == "__main__":
    main()
