"""Cold-start benchmark — daemon restart against a warmed artifact store.

The persistent artifact store exists for exactly one scenario: a process
that starts *now* but wants the compiled state of a process that ran
*before*.  This benchmark plays that scenario over real HTTP, twice:

* **cold** — a daemon boots with an empty registry and no store; the
  first request wave must register every schema (parse + pre-warm + the
  full compile pipeline) before its query can be answered;
* **warm restart** — a previous daemon "life" registered the same corpus
  against an :class:`~repro.engine.ArtifactStore`; the daemon is then
  torn down and a fresh one boots over the same store, restoring every
  compiled artifact at construction.  Its first request wave addresses
  schemas by fingerprint and should ride the restored tables.

Acceptance shape: the warm-restart first wave must reach at least 3x the
cold first-wave throughput on the ``satisfiable`` workload, and the
corpus must re-bake byte-deterministically (``repro warm --check``'s
invariant, verified here in-process).

Emits a trajectory point to ``BENCH_cold_start.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_cold_start.py [--smoke]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import ArtifactStore, Engine, EngineArtifact
from repro.schema import schema_to_string
from repro.service import SchemaRegistry, ServiceClient, TypedQueryService
from repro.service.registry import prewarm
from repro.workloads import schema_corpus

#: Every corpus schema answers this generic wildcard query positively.
QUERY = "SELECT X WHERE Root = [_ -> X]"


def first_wave_cold(schemas) -> dict:
    """Boot an empty, store-less daemon; register + query every schema."""
    with TypedQueryService(registry=SchemaRegistry()) as service:
        client = ServiceClient(service.host, service.port)
        started = time.perf_counter()
        for text in schemas:
            fingerprint = client.register_schema(text)["fingerprint"]
            result = client.satisfiable(fingerprint, QUERY)
            assert result["satisfiable"] is True
        elapsed = time.perf_counter() - started
    return {"elapsed_s": elapsed, "rps": len(schemas) / elapsed}


def first_wave_warm(schemas, cache_dir) -> dict:
    """Warm the store in a first daemon life, restart, query the wave."""
    # Life 1: register the corpus so every compiled artifact persists.
    registry = SchemaRegistry(store=ArtifactStore(root=cache_dir))
    fingerprints = [registry.register(text).fingerprint for text in schemas]
    del registry  # the daemon "dies"; only the store survives

    # Life 2: a fresh daemon restores the store at construction.
    store = ArtifactStore(root=cache_dir)
    restore_started = time.perf_counter()
    restored_registry = SchemaRegistry(store=store)
    restore_s = time.perf_counter() - restore_started
    restored = restored_registry.stats()["restored"]
    assert restored == len(schemas), (restored, len(schemas))

    with TypedQueryService(registry=restored_registry) as service:
        client = ServiceClient(service.host, service.port)
        started = time.perf_counter()
        for fingerprint in fingerprints:
            result = client.satisfiable(fingerprint, QUERY)
            assert result["satisfiable"] is True
        elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "rps": len(schemas) / elapsed,
        "restore_s": restore_s,
        "restored": restored,
        "store": store.stats(),
    }


def check_determinism(corpus) -> int:
    """Bake every schema twice; count byte-diverging artifacts."""
    nondeterministic = 0
    for schema in corpus:
        def bake() -> bytes:
            engine = Engine()
            prewarm(schema, engine)
            return EngineArtifact.capture(engine, schema).to_bytes()

        if bake() != bake():
            nondeterministic += 1
    return nondeterministic


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus; checks the shape and direction, not the 3x bar",
    )
    parser.add_argument(
        "--schemas", type=int, default=None, help="override the corpus size"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cold_start.json"),
        help="trajectory file to write",
    )
    args = parser.parse_args(argv)
    n_schemas = args.schemas or (4 if args.smoke else 12)

    corpus = schema_corpus(n_schemas, seed=0)
    total_types = sum(len(list(schema.tids())) for schema in corpus)
    texts = [schema_to_string(schema) for schema in corpus]
    print(f"corpus: {n_schemas} schemas, {total_types} types total")

    cold = first_wave_cold(texts)
    with tempfile.TemporaryDirectory(prefix="repro-cold-start-") as cache_dir:
        warm = first_wave_warm(texts, cache_dir)
    speedup = warm["rps"] / cold["rps"]
    nondeterministic = check_determinism(corpus)

    print(
        f"cold first wave   {cold['rps']:8.1f} req/s "
        f"({cold['elapsed_s'] * 1000:.0f} ms)"
    )
    print(
        f"warm restart wave {warm['rps']:8.1f} req/s "
        f"({warm['elapsed_s'] * 1000:.0f} ms; restore {warm['restore_s'] * 1000:.0f} ms, "
        f"{warm['restored']} schemas)"
    )
    print(f"restart-to-warm speedup {speedup:5.1f}x")
    print(f"determinism: {nondeterministic} non-deterministic artifact(s)")

    point = {
        "bench": "cold_start",
        "smoke": bool(args.smoke),
        "schemas": n_schemas,
        "total_types": total_types,
        "cold_first_wave_rps": round(cold["rps"], 2),
        "warm_first_wave_rps": round(warm["rps"], 2),
        "speedup": round(speedup, 2),
        "restore_s": round(warm["restore_s"], 4),
        "store_hits": warm["store"]["hits"],
        "nondeterministic": nondeterministic,
    }
    Path(args.out).write_text(json.dumps(point, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if nondeterministic:
        failures.append(f"{nondeterministic} artifacts re-baked non-identically")
    bar = 1.0 if args.smoke else 3.0
    if speedup < bar:
        failures.append(
            f"warm restart first wave is only {speedup:.1f}x cold "
            f"(bar: {bar:.0f}x)"
        )
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("ok: a restarted daemon over a warmed store beats cold start")
    return 0


if __name__ == "__main__":
    sys.exit(main())
