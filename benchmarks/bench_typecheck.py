"""Experiment P3.2 — Proposition 3.2: total type checking is PTIME for
ordered schemas (plus homogeneous collections) and *arbitrary* queries.

Reproduction: total type checking (every variable pinned) on queries with
joins over untagged ordered schemas scales polynomially, because pinning
removes the candidate enumeration entirely.  The companion series runs
*partial* checking (satisfiability) on the same inputs, which must
enumerate candidates per join variable — the gap between the two series
is the content of the proposition.
"""

import pytest

from repro.typing import SatisfiabilityChecker, check_total_types
from repro.workloads import bounded_join_query, join_schema

SIZES = [2, 4, 6, 8]


def total_assignment(n_joins: int) -> dict:
    assignment = {"Root": "ROOT"}
    for join in range(n_joins):
        assignment[f"&J{join}"] = "&L0"
    return assignment


@pytest.mark.parametrize("depth", SIZES)
def test_total_checking_scales_with_depth(benchmark, depth):
    """Total checking on an untagged ordered schema: polynomial in size."""
    schema = join_schema(depth, n_joins=1)
    query = bounded_join_query(depth, n_joins=1)
    assert benchmark(check_total_types, query, schema, total_assignment(1))


@pytest.mark.parametrize("n_joins", [1, 2, 3, 4])
def test_total_checking_scales_with_joins(benchmark, n_joins):
    """Total checking stays cheap as the number of joins grows: the
    assignment pins every join variable, so nothing is enumerated."""
    schema = join_schema(3, n_joins=n_joins)
    query = bounded_join_query(3, n_joins=n_joins)
    assert benchmark(check_total_types, query, schema, total_assignment(n_joins))


@pytest.mark.parametrize("n_joins", [1, 2, 3])
def test_partial_checking_enumerates(benchmark, n_joins):
    """Contrast: satisfiability (no pins) enumerates candidate types per
    join variable."""
    schema = join_schema(3, n_joins=n_joins, width=4)
    query = bounded_join_query(3, n_joins=n_joins)
    checker = SatisfiabilityChecker(query, schema)
    assert benchmark(checker.satisfiable, {})
    assert checker.enumerated >= 1


def test_negative_total_checking(benchmark):
    """A wrong assignment is rejected (and rejection is also fast):
    pinning the join variable to the root type cannot type the leaves."""
    schema = join_schema(3, n_joins=1)
    query = bounded_join_query(3, n_joins=1)
    assignment = {"Root": "ROOT", "&J0": "ROOT"}
    assert benchmark(check_total_types, query, schema, assignment) is False


@pytest.mark.parametrize("width", [2, 4, 8])
def test_total_checking_homogeneous_unordered(benchmark, width):
    """The proposition's relaxation: homogeneous unordered collections."""
    from repro.query import parse_query
    from repro.schema import parse_schema

    schema = parse_schema("T = {(a -> U)*}; U = int")
    arms = ", ".join(f"a -> X{i}" for i in range(width))
    query = parse_query(f"SELECT WHERE Root = {{{arms}}}")
    assignment = {"Root": "T"}
    assignment.update({f"X{i}": "U" for i in range(width)})
    assert benchmark(check_total_types, query, schema, assignment)
