"""Experiment I3.3 — Section 3.3: type inference is output-polynomial in
the PTIME cells.

Paper claim: wherever satisfiability is PTIME, type inference runs in
time polynomial in the input *and the output*; the answer itself can be
as large as O(|Q|^|S|), so the right scaling knob is the output size.

Reproduction: two sweeps over tagged ordered schemas — a *rigid* family
where the answer stays one assignment regardless of schema size (time
should track schema size polynomially), and a *loose* family where a
widening union makes the answer grow linearly (time should track the
output count, not explode past it).
"""

import pytest

from repro.automata import ANY, Sym, concat, star
from repro.query import PatternArm, PatternDef, PatternKind, Query
from repro.schema import Schema, TypeDef, TypeKind
from repro.typing import infer_types
from repro.workloads import chain_query, chain_schema

RIGID_SIZES = [2, 4, 8, 16]
LOOSE_SIZES = [2, 4, 8, 16]


def loose_schema(width: int) -> Schema:
    """Root with one label fanning out to ``width`` distinct leaf types."""
    options = [Sym(("item", f"LEAF{i}")) for i in range(width)]
    types = [TypeDef("ROOT", TypeKind.ORDERED, regex=star(_alt(options)))]
    for i in range(width):
        types.append(
            TypeDef(f"LEAF{i}", TypeKind.ORDERED, regex=Sym((f"tag{i}", "S")))
        )
    types.append(TypeDef("S", TypeKind.ATOMIC, atomic="string"))
    return Schema(types)


def _alt(options):
    from repro.automata import alt

    return alt(*options)


@pytest.mark.parametrize("depth", RIGID_SIZES)
def test_rigid_single_answer(benchmark, depth):
    """Output size 1: time tracks schema/query size only."""
    schema = chain_schema(depth)
    query = chain_query(depth)
    results = benchmark(infer_types, query, schema)
    assert len(results) == 1


@pytest.mark.parametrize("width", LOOSE_SIZES)
def test_loose_linear_output(benchmark, width):
    """Output size = ``width``: time tracks the output count."""
    schema = loose_schema(width)
    query = Query(
        ["X"],
        [PatternDef("Root", PatternKind.ORDERED, arms=[PatternArm(Sym("item"), "X")])],
    )
    results = benchmark(infer_types, query, schema)
    assert len(results) == width


@pytest.mark.parametrize("n_vars", [1, 2, 3])
def test_multi_variable_output_product(benchmark, n_vars):
    """Several selected variables: output grows, enumeration prunes
    unsatisfiable prefixes so cost stays proportional to the output."""
    schema = loose_schema(3)
    arms = [PatternArm(Sym("item"), f"X{i}") for i in range(n_vars)]
    query = Query(
        [f"X{i}" for i in range(n_vars)],
        [PatternDef("Root", PatternKind.ORDERED, arms=arms)],
    )
    results = benchmark(infer_types, query, schema)
    assert len(results) == 3 ** n_vars


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_wildcard_inference(benchmark, depth):
    """Regular path expressions: the trace projection does the narrowing."""
    schema = chain_schema(depth)
    query = Query(
        ["X"],
        [
            PatternDef(
                "Root",
                PatternKind.ORDERED,
                arms=[PatternArm(concat(star(ANY), Sym(f"a{depth}")), "X")],
            )
        ],
    )
    results = benchmark(infer_types, query, schema)
    assert results == [{"X": f"T{depth}"}]
