"""Experiment C2 — Section 2: conformance checking.

Paper claim: conformance (Definition 2.1) is NP-complete in general but
PTIME for a large class including tagged schemas — DTD⁻/DTD⁺ validation
is polynomial in document and schema size.

Reproduction: document-size and schema-size sweeps for DTD⁻ validation
(polynomial series), homogeneous unordered collections (PTIME), and a
contrast series on untagged unordered types where candidate sets stay
wide.
"""

import random

import pytest

from repro.schema import conforms, find_type_assignment, parse_schema
from repro.workloads import document_schema, random_instance

DOC_SIZES = [10, 40, 160]


def document_of_size(target_nodes: int):
    schema = document_schema(2)
    rng = random.Random(42)
    best = None
    for _ in range(200):
        graph = random_instance(schema, rng, max_depth=10, star_bias=0.7)
        if best is None or abs(len(graph) - target_nodes) < abs(len(best) - target_nodes):
            best = graph
        if abs(len(best) - target_nodes) <= target_nodes // 4:
            break
    return schema, best


@pytest.mark.parametrize("size", DOC_SIZES)
def test_dtd_validation_document_sweep(benchmark, size):
    """Tagged ordered validation scales polynomially in document size."""
    schema, graph = document_of_size(size)
    assignment = benchmark(find_type_assignment, graph, schema)
    assert assignment is not None


@pytest.mark.parametrize("sections", [2, 4, 8])
def test_dtd_validation_schema_sweep(benchmark, sections):
    """...and in schema size."""
    schema = document_schema(sections)
    graph = random_instance(schema, random.Random(3), max_depth=8)
    assert benchmark(conforms, graph, schema)


@pytest.mark.parametrize("fanout", [4, 16, 64])
def test_homogeneous_unordered(benchmark, fanout):
    """The homogeneous-collection fast path: linear in fan-out."""
    schema = parse_schema("T = {(a -> U)*}; U = int")
    from repro.data import GraphBuilder

    builder = GraphBuilder()
    builder.unordered("o0", [("a", f"o{i}") for i in range(1, fanout + 1)])
    for i in range(1, fanout + 1):
        builder.atomic(f"o{i}", i)
    graph = builder.build()
    assert benchmark(conforms, graph, schema)


@pytest.mark.parametrize("fanout", [2, 4, 6, 8])
def test_untagged_unordered_contrast(benchmark, fanout):
    """Untagged unordered conformance: the bag DP works over sub-multisets
    (the NP-flavoured case the paper contrasts against)."""
    pieces = " . ".join(f"(a -> I | a -> S)" for _ in range(fanout))
    schema = parse_schema(f"T = {{{pieces}}}; I = int; S = string")
    from repro.data import GraphBuilder

    builder = GraphBuilder()
    builder.unordered("o0", [("a", f"o{i}") for i in range(1, fanout + 1)])
    for i in range(1, fanout + 1):
        builder.atomic(f"o{i}", i if i % 2 == 0 else f"s{i}")
    graph = builder.build()
    assert benchmark(conforms, graph, schema)
