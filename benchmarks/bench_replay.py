"""Replay benchmark: multi-domain traffic against both serving tiers.

Boots each tier in-process (threaded, then a 2-worker pool), drives the
``default`` mix over the ten-domain corpus with the replay harness, then
runs the cache-pressure scenario against a small-LRU threaded daemon
with an artifact store so eviction + store reload happen under load.

Acceptance shape (asserted here, not just reported):

* both tiers finish the steady run with **zero** 5xx/transport errors
  and an overall throughput above a floor (20 rps — an order of
  magnitude below what a laptop does; this guards pathology, not speed);
* the cache-pressure run shows **nonzero** registry evictions and
  nonzero store-backed reloads with zero 5xx.

Emits a trajectory point to ``BENCH_replay.json``::

    PYTHONPATH=src python benchmarks/bench_replay.py [--smoke]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.engine.store import ArtifactStore
from repro.replay import ReplayConfig, SLOSpec, run_replay
from repro.service import PoolService, SchemaRegistry, TypedQueryService

#: Generous gate: the benchmark asserts correctness of the loop, not a
#: latency budget — CI machines are too noisy to pin milliseconds.
BENCH_SLO = SLOSpec(error_rate=0.0, min_rps=20.0)

PRESSURE_LRU_BOUND = 6


def _steady(service, duration_s: float, seed: int) -> dict:
    config = ReplayConfig(
        host=service.host,
        port=service.port,
        seed=seed,
        duration_s=duration_s,
        mix="default",
        concurrency=4,
        slo=BENCH_SLO,
        output=None,
    )
    exit_code, report = run_replay(config)
    return {
        "exit_code": exit_code,
        "requests": report["totals"]["requests"],
        "rps": report["totals"]["rps"],
        "error_rate": report["totals"]["error_rate"],
        "errors_5xx": report["totals"]["errors_5xx"],
        "endpoints": {
            endpoint: block["latency_ms"]
            for endpoint, block in report["endpoints"].items()
        },
        "domains": sorted(report["domains"]),
    }


def _pressure(duration_s: float, seed: int, store_root: Path) -> dict:
    store = ArtifactStore(root=store_root)
    registry = SchemaRegistry(max_schemas=PRESSURE_LRU_BOUND, store=store)
    with TypedQueryService(registry=registry) as service:
        config = ReplayConfig(
            host=service.host,
            port=service.port,
            seed=seed,
            duration_s=duration_s,
            mix="read-heavy",
            concurrency=3,
            scenario="cache-pressure",
            pressure_overshoot=PRESSURE_LRU_BOUND,
            output=None,
        )
        exit_code, report = run_replay(config)
    pressure = dict(report["cache_pressure"])
    pressure["exit_code"] = exit_code
    pressure["rps"] = report["totals"]["rps"]
    return pressure


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="short run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default="BENCH_replay.json")
    args = parser.parse_args()
    duration = 2.0 if args.smoke else 8.0

    print(f"threaded tier: default mix, {duration}s")
    with TypedQueryService() as service:
        threaded = _steady(service, duration, args.seed)
    print(
        f"  {threaded['requests']} requests, {threaded['rps']} rps, "
        f"error_rate={threaded['error_rate']}"
    )

    print(f"pool tier ({args.workers} workers): same load")
    with PoolService(workers=args.workers) as service:
        pool = _steady(service, duration, args.seed)
    print(
        f"  {pool['requests']} requests, {pool['rps']} rps, "
        f"error_rate={pool['error_rate']}"
    )

    print("cache-pressure: LRU bound", PRESSURE_LRU_BOUND)
    with tempfile.TemporaryDirectory(prefix="replay-store-") as tmp:
        pressure = _pressure(max(duration / 2, 1.5), args.seed, Path(tmp))
    print(
        f"  evictions={pressure['evictions']} "
        f"store_hits={pressure['store_hits']} "
        f"reloads={pressure['reloads']} 5xx={pressure['errors_5xx']}"
    )

    point = {
        "bench": "replay",
        "smoke": bool(args.smoke),
        "seed": args.seed,
        "duration_s": duration,
        "mix": "default",
        "slo": BENCH_SLO.as_dict(),
        "threaded": threaded,
        "pool": pool,
        "cache_pressure": pressure,
    }
    Path(args.out).write_text(json.dumps(point, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    failures = []
    for tier, numbers in (("threaded", threaded), ("pool", pool)):
        if numbers["exit_code"] == 2:
            failures.append(f"{tier} tier violated the benchmark SLO")
        if numbers["errors_5xx"]:
            failures.append(f"{tier} tier saw {numbers['errors_5xx']} 5xx")
        if len(numbers["domains"]) < 10:
            failures.append(
                f"{tier} tier exercised only {len(numbers['domains'])} domains"
            )
    if pressure["evictions"] <= 0:
        failures.append("cache pressure produced no registry evictions")
    if pressure["store_hits"] <= 0:
        failures.append("cache pressure never reloaded from the store")
    if pressure["errors_5xx"]:
        failures.append(f"cache pressure saw {pressure['errors_5xx']} 5xx")
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("ok: both tiers and the cache-pressure loop clear the replay bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
