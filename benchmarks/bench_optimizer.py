"""Experiment O4.2 — Theorem 4.2: the adaptive optimal evaluator.

Paper claim: A_O, driven by schema+query+data-seen-so-far, minimizes the
number of edges explored; no correct deterministic algorithm of the model
beats it.  The headline *shape*: A_O explores a small, query-relevant
fraction of the document while the naive evaluator reads everything — the
gap widens with the amount of query-irrelevant ballast.

Each benchmark reports wall time via pytest-benchmark and prints the
edges-explored comparison (the paper's actual cost metric) so the harness
output regenerates the naive-vs-A_O series directly.
"""

import random

import pytest

from repro.apps import AdaptiveEvaluator, FlatPattern, NaiveEvaluator
from repro.data import parse_data
from repro.query import parse_query
from repro.workloads import random_instance, wide_document_schema

BALLAST = [2, 4, 8]


def build_instance(n_kinds: int, seed: int = 11):
    schema = wide_document_schema(n_kinds)
    rng = random.Random(seed)
    best = None
    for _ in range(10):
        graph = random_instance(schema, rng, max_depth=6, star_bias=0.7)
        if best is None or len(graph) > len(best):
            best = graph
    return schema, best


PATTERN = FlatPattern.from_query(
    parse_query("SELECT X WHERE Root = [kind0.payload -> X]")
)


@pytest.mark.parametrize("n_kinds", BALLAST)
def test_naive_cost(benchmark, n_kinds):
    """Baseline: the naive evaluator reads the whole document."""
    _schema, graph = build_instance(n_kinds)
    result = benchmark(lambda: NaiveEvaluator(PATTERN, graph).run())
    assert result.cost == graph.edge_count()
    print(f"\n[naive  n_kinds={n_kinds}] edges={result.cost} answers={len(result.answers())}")


@pytest.mark.parametrize("n_kinds", BALLAST)
def test_adaptive_cost(benchmark, n_kinds):
    """A_O prunes all junk-kind subtrees: cost tracks the payload, not the
    ballast."""
    schema, graph = build_instance(n_kinds)
    result = benchmark(lambda: AdaptiveEvaluator(PATTERN, graph, schema).run())
    naive = NaiveEvaluator(PATTERN, graph).run()
    assert result.answers() == naive.answers()
    assert result.cost <= naive.cost
    print(
        f"\n[A_O    n_kinds={n_kinds}] edges={result.cost} vs naive={naive.cost} "
        f"({100 * result.cost / max(1, naive.cost):.0f}%)"
    )


def test_paper_downwards_example(benchmark):
    """The Section 4.2 downwards-pruning example, DB3."""
    from repro.schema import parse_schema

    schema = parse_schema(
        "ROOT = [a -> AC | a -> AD | b -> BD];"
        "AC = [c -> LEAF]; AD = [d -> LEAF]; BD = [d -> LEAF]; LEAF = []"
    )
    graph = parse_data("o1 = [b -> o2]; o2 = [d -> o3]; o3 = []")
    pattern = FlatPattern.from_query(parse_query("SELECT X WHERE Root = [a.c -> X]"))
    result = benchmark(lambda: AdaptiveEvaluator(pattern, graph, schema).run())
    assert result.cost == 1  # the b edge only


def test_paper_sidewards_example(benchmark):
    """The Section 4.2 sidewards-pruning example, DB3."""
    from repro.schema import parse_schema

    schema = parse_schema(
        "ROOT = [a -> AE . c -> CH . c -> CD | a -> AE . c -> CH . c -> CH"
        "     | a -> AF . c -> CD . c -> CH | a -> AF . c -> CH . c -> CH];"
        "AE = [e -> LEAF . b -> LEAF]; AF = [f -> LEAF . b -> LEAF];"
        "CH = [h -> LEAF]; CD = [d -> LEAF]; LEAF = []"
    )
    graph = parse_data(
        "o1 = [a -> o2, c -> o3, c -> o4];"
        "o2 = [f -> o5, b -> o6]; o3 = [d -> o7]; o4 = [h -> o8];"
        "o5 = []; o6 = []; o7 = []; o8 = []"
    )
    pattern = FlatPattern.from_query(
        parse_query("SELECT X, Y WHERE Root = [a.b -> X, c.d -> Y]")
    )
    result = benchmark(lambda: AdaptiveEvaluator(pattern, graph, schema).run())
    naive = NaiveEvaluator(pattern, graph).run()
    assert result.cost < naive.cost
    assert result.answers() == naive.answers() == [("o6", "o7")]
