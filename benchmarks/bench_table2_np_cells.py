"""Experiments T2.a/T2.e — the NP-complete cells of Table 2.

Paper claim (Theorem 3.1 + Table 2): satisfiability is NP-complete in
general; the hardness needs only untagged unions + unordered data, and
survives all the query restrictions when order is dropped (rightmost
column).

Reproduction: run the checker on the executable 3SAT reduction
(:mod:`repro.reductions.threesat`) for growing formula sizes and observe
super-polynomial growth; cross-check every verdict against the DPLL
substrate.  Unsatisfiable formulas are the worst case (the whole space is
explored), so the sweep uses a forced-unsatisfiable family alongside
random ones.
"""

import random

import pytest

from conftest import run_once
from repro.reductions import Cnf, dpll, random_3sat, reduce_formula
from repro.typing import classify, is_satisfiable


def unsat_formula(n_vars: int) -> Cnf:
    """An unsatisfiable family: x1, x1->x2, ..., x_{n-1}->x_n, !x_n."""
    clauses = [(1,)]
    clauses += [(-v, v + 1) for v in range(1, n_vars)]
    clauses += [(-n_vars,)]
    return Cnf(n_vars, clauses)


@pytest.mark.parametrize("n_vars", [2, 3, 4, 5])
def test_reduction_random(benchmark, n_vars):
    """Arbitrary queries x unordered untagged schemas (the general case)."""
    formula = random_3sat(n_vars, n_clauses=max(2, n_vars + 1), rng=random.Random(7))
    schema, query = reduce_formula(formula)
    cell = classify(query, schema)
    assert not cell.polynomial
    verdict = run_once(benchmark, is_satisfiable, query, schema)
    assert verdict == (dpll(formula) is not None)


@pytest.mark.parametrize("n_vars", [2, 3, 4])
def test_reduction_unsatisfiable(benchmark, n_vars):
    """Worst case: the checker must exhaust the assignment space."""
    formula = unsat_formula(n_vars)
    schema, query = reduce_formula(formula)
    verdict = run_once(benchmark, is_satisfiable, query, schema)
    assert verdict is False
    assert dpll(formula) is None


@pytest.mark.parametrize("n_vars", [2, 3, 4])
def test_reduction_satisfiable_with_witness(benchmark, n_vars):
    """Satisfiable side: verdicts come with reconstructible certificates."""
    from repro.query import satisfies
    from repro.reductions import assignment_to_instance

    formula = Cnf(
        n_vars, [(v,) for v in range(1, n_vars + 1)]
    )  # trivially satisfiable: all-true
    schema, query = reduce_formula(formula)
    verdict = run_once(benchmark, is_satisfiable, query, schema)
    assert verdict
    model = dpll(formula)
    witness = assignment_to_instance(formula, model)
    assert satisfies(query, witness)


@pytest.mark.parametrize("width", [2, 3, 4, 5])
def test_unordered_join_free_constant_labels(benchmark, width):
    """T2.e: the rightmost column — join-free constant-label queries stay
    hard without order (cost grows with the overlap width)."""
    from repro.automata import Sym, concat
    from repro.query import PatternArm, PatternDef, PatternKind, Query
    from repro.workloads import unordered_schema

    schema = unordered_schema(width)
    arms = [
        PatternArm(concat(Sym(f"a{i}"), Sym(f"hit{i}")), f"X{i}")
        for i in range(1, width + 1)
    ]
    query = Query([], [PatternDef("Root", PatternKind.UNORDERED, arms=arms)])
    cell = classify(query, schema)
    assert cell.query_constant_labels and cell.query_join_free
    assert not cell.polynomial
    assert run_once(benchmark, is_satisfiable, query, schema)
