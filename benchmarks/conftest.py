"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one experiment row of DESIGN.md §5 (which
maps paper artifacts — Table 2 cells, Propositions 3.2/4.1, Theorem 4.2,
Section 4.3 — to code).  Absolute timings depend on the host; what must
reproduce is the *shape*: which cells scale polynomially, which blow up,
and who wins by what factor in the Section 4.2 cost model.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark expensive calls a single round (for the NP cells)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
