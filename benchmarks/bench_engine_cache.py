"""Engine benchmark — cold vs. warm compilation through the shared cache.

The compilation engine (``repro.engine``) memoizes Thompson automata,
content NFAs, reachability tables, and whole trace products behind
hash-consed regexes and schema fingerprints.  This benchmark quantifies
what that buys: each workload runs once against a *cold* engine (fresh
``Engine`` every repetition, so every automaton is rebuilt) and once
against a *warm* engine shared across repetitions.

Acceptance shape: the repeated trace-product workload must be at least
2x faster warm than cold, and the warm engine must record cache hits
from both the conformance path (``content-nfa``) and the traces path
(``trace-nfa`` / ``trace-product``).

Run standalone for a human-readable report (including the engine's
per-kind cache counters)::

    PYTHONPATH=src python benchmarks/bench_engine_cache.py
"""

import random
import time

from repro.automata.syntax import Sym, concat, star
from repro.engine import Engine
from repro.schema import conforms, parse_schema
from repro.typing.traces import trace_product
from repro.workloads import document_schema, random_instance

REPEATS = 20

QUERY_SCHEMA = """
ROOT = [(paper -> PAPER)*];
PAPER = [title -> TITLE . (author -> AUTHOR)*];
TITLE = string;
AUTHOR = string
"""


def _conformance_corpus():
    """One document schema plus a fixed batch of conforming instances."""
    schema = document_schema(2)
    rng = random.Random(7)
    graphs = [random_instance(schema, rng, max_depth=8) for _ in range(4)]
    return schema, graphs


_CORPUS_SCHEMA, _CORPUS_GRAPHS = _conformance_corpus()


def _conformance_workload(engine):
    """Validate the fixed instance batch; only validation is timed."""
    for graph in _CORPUS_GRAPHS:
        assert conforms(graph, _CORPUS_SCHEMA, engine)


def _trace_product_workload(engine):
    """The repeated-query pattern: the same flat patterns re-checked."""
    schema = parse_schema(QUERY_SCHEMA)
    patterns = [
        (("ROOT",), (Sym("paper"),), (("PAPER",),)),
        (("PAPER",), (Sym("title"),), (("TITLE",),)),
        (("PAPER",), (Sym("author"),), (("AUTHOR",),)),
        (
            ("ROOT",),
            (concat(Sym("paper"), Sym("title")), star(Sym("paper"))),
            (("TITLE",), ("PAPER",)),
        ),
    ]
    for root_types, arms, allowed in patterns:
        product = trace_product(schema, root_types, arms, allowed, engine=engine)
        assert product is not None


def _time_cold(workload, repeats=REPEATS):
    """Each repetition gets a fresh engine: nothing survives between runs."""
    started = time.perf_counter()
    for _ in range(repeats):
        workload(Engine())
    return time.perf_counter() - started


def _time_warm(workload, repeats=REPEATS):
    """One engine shared by every repetition; returns (seconds, engine)."""
    engine = Engine()
    started = time.perf_counter()
    for _ in range(repeats):
        workload(engine)
    return time.perf_counter() - started, engine


def test_trace_product_warm_speedup(benchmark):
    """A warm engine beats cold recompilation by >=2x on repeated products."""
    cold = _time_cold(_trace_product_workload)
    warm, engine = _time_warm(_trace_product_workload)
    benchmark.pedantic(
        _trace_product_workload, args=(engine,), rounds=1, iterations=1
    )
    by_kind = engine.stats().by_kind
    assert by_kind["trace-product"].hits > 0
    assert by_kind["trace-nfa"].hits > 0
    assert warm * 2 <= cold, f"warm={warm:.4f}s cold={cold:.4f}s"


def test_conformance_warm_hits(benchmark):
    """Repeated validation reuses content NFAs through the engine cache."""
    cold = _time_cold(_conformance_workload, repeats=4)
    warm, engine = _time_warm(_conformance_workload, repeats=4)
    benchmark.pedantic(
        _conformance_workload, args=(engine,), rounds=1, iterations=1
    )
    by_kind = engine.stats().by_kind
    assert by_kind["content-nfa"].hits > 0
    # Validation time is dominated by graph traversal, not compilation, so
    # the warm win here is modest; only guard against a regression.
    assert warm <= cold * 1.5, f"warm={warm:.4f}s cold={cold:.4f}s"


def main():
    for name, workload, repeats in [
        ("conformance", _conformance_workload, 4),
        ("trace-product", _trace_product_workload, REPEATS),
    ]:
        cold = _time_cold(workload, repeats)
        warm, engine = _time_warm(workload, repeats)
        speedup = cold / warm if warm else float("inf")
        print(f"== {name} x{repeats} ==")
        print(f"cold: {cold:.4f}s   warm: {warm:.4f}s   speedup: {speedup:.1f}x")
        print(engine.stats())
        print()


if __name__ == "__main__":
    main()
