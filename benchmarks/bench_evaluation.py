"""Query evaluation throughput (Definition 2.3 on real documents).

Not a paper table — the substrate the Section 4.2 comparison stands on.
Sweeps document size and query shape for the declarative evaluator.
"""

import random

import pytest

from repro.query import evaluate, parse_query
from repro.workloads import document_schema, random_instance


def document(seed: int, bias: float):
    schema = document_schema(2)
    return random_instance(schema, random.Random(seed), max_depth=8, star_bias=bias)


SINGLE_PATH = parse_query("SELECT T WHERE Root = [paper.title -> T]")
WILDCARD = parse_query("SELECT X WHERE Root = [paper.(_*).lastname -> X]")
TWO_ARMS = parse_query(
    "SELECT T, N WHERE Root = [paper.title -> T, paper.author.name -> N]"
)
NESTED = parse_query(
    "SELECT F, L WHERE Root = [paper.author.name -> N];"
    "N = [firstname -> F, lastname -> L]"
)


@pytest.mark.parametrize("bias", [0.3, 0.6, 0.8])
def test_single_path(benchmark, bias):
    graph = document(1, bias)
    results = benchmark(evaluate, SINGLE_PATH, graph)
    assert isinstance(results, list)


@pytest.mark.parametrize("bias", [0.3, 0.6, 0.8])
def test_wildcard_path(benchmark, bias):
    graph = document(2, bias)
    benchmark(evaluate, WILDCARD, graph)


@pytest.mark.parametrize("bias", [0.3, 0.6])
def test_two_ordered_arms(benchmark, bias):
    graph = document(3, bias)
    benchmark(evaluate, TWO_ARMS, graph)


def test_nested_definitions(benchmark):
    graph = document(4, 0.6)
    benchmark(evaluate, NESTED, graph)


def test_limit_short_circuits(benchmark):
    graph = document(5, 0.8)
    full = evaluate(WILDCARD, graph)
    limited = benchmark(evaluate, WILDCARD, graph, 1)
    if full:
        assert len(limited) == 1
