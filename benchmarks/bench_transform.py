"""Experiment X4.3 — Section 4.3: transformations.

Paper claims: output-schema inference for single-variable Skolem
functions is computable (exponential time in general; PSPACE-hard to beat
substantially), and restricting schemas/queries gives polynomial cases.

Reproduction: execution-cost sweep over input size, inference-cost sweep
over input-schema size (the exponential knob is the number of inferred
argument types per Skolem function), and the end-to-end type check.
"""

import random

import pytest

from repro.apps import (
    ConstructRule,
    SkolemTerm,
    TransformQuery,
    ValueOf,
    check_transformation,
    infer_output_schema,
)
from repro.automata import Sym, alt, star
from repro.query import parse_query
from repro.schema import Schema, TypeDef, TypeKind, parse_schema
from repro.workloads import random_instance

BIB_SCHEMA = parse_schema(
    "DOC = [(paper -> PAPER)*];"
    "PAPER = [title -> TITLE . (author -> AUTHOR)*];"
    "AUTHOR = [name -> NAME]; NAME = string; TITLE = string"
)


def author_index() -> TransformQuery:
    where = parse_query(
        "SELECT WHERE Root = [paper -> P];"
        "P = [title -> T, author.name -> N]; N = $n"
    )
    return TransformQuery(
        where,
        [
            ConstructRule(SkolemTerm("result"), "entry", SkolemTerm("byname", ("$n",))),
            ConstructRule(SkolemTerm("byname", ("$n",)), "who", ValueOf("$n")),
            ConstructRule(SkolemTerm("byname", ("$n",)), "wrote", SkolemTerm("paper", ("P",))),
            ConstructRule(SkolemTerm("paper", ("P",)), "title", ValueOf("T")),
        ],
    )


def union_schema(width: int) -> Schema:
    """Input schema where the Skolem argument has ``width`` possible types."""
    options = [Sym(("item", f"KIND{i}")) for i in range(width)]
    types = [TypeDef("ROOT", TypeKind.ORDERED, regex=star(alt(*options)))]
    for i in range(width):
        types.append(TypeDef(f"KIND{i}", TypeKind.ORDERED, regex=Sym((f"tag{i}", "S"))))
    types.append(TypeDef("S", TypeKind.ATOMIC, atomic="string"))
    return Schema(types)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_apply_random_documents(benchmark, seed):
    """Execution cost on random conforming bibliographies."""
    transform = author_index()
    graph = random_instance(BIB_SCHEMA, random.Random(seed), max_depth=8, star_bias=0.7)
    output = benchmark(transform.apply, graph)
    assert output.root_node is not None


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_inference_scales_with_argument_types(benchmark, width):
    """Output-schema inference: one output type per (function, arg type);
    the sweep grows the candidate-type pool."""
    schema = union_schema(width)
    where = parse_query("SELECT WHERE Root = [item -> X]")
    transform = TransformQuery(
        where,
        [
            ConstructRule(SkolemTerm("result"), "out", SkolemTerm("f", ("X",))),
            ConstructRule(SkolemTerm("f", ("X",)), "tagged", SkolemTerm("g", ("X",))),
        ],
    )
    inferred = benchmark(infer_output_schema, transform, schema)
    f_types = [tid for tid in inferred.tids() if tid.startswith("&F_")]
    assert len(f_types) == width


def test_end_to_end_type_check(benchmark):
    """Transformation type checking against a published target schema."""
    target = parse_schema(
        "&INDEX = {(entry -> &ENTRY)*};"
        "&ENTRY = {(who -> &STR | wrote -> &PAPER)*};"
        "&PAPER = {(title -> &STR)*};"
        "&STR = string"
    )
    assert benchmark(check_transformation, author_index(), BIB_SCHEMA, target)


def test_inference_soundness_spotcheck(benchmark):
    """Inferred schema admits every output (sound description)."""
    from repro.schema import conforms

    transform = author_index()
    inferred = infer_output_schema(transform, BIB_SCHEMA)

    def run():
        graph = random_instance(BIB_SCHEMA, random.Random(5), max_depth=8)
        output = transform.apply(graph)
        return conforms(output, inferred)

    assert benchmark(run)
