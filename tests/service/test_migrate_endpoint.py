"""Service-layer tests for schema evolution: migrate, history, unregister."""

import json

from repro.engine import ArtifactStore
from repro.service import SchemaRegistry
from repro.service.daemon import ServiceState

OLD = """
DOCUMENT = [(paper -> PAPER)*];
PAPER = [title -> TITLE . (author -> AUTHOR)*];
AUTHOR = [name -> NAME]; NAME = string; TITLE = string
"""

WIDE = """
DOCUMENT = [(paper -> PAPER)*];
PAPER = [title -> TITLE . (author -> AUTHOR)* . (year -> YEAR)?];
AUTHOR = [name -> NAME]; NAME = string; TITLE = string; YEAR = int
"""

NARROW = """
DOCUMENT = [(paper -> PAPER)*];
PAPER = [title -> TITLE];
AUTHOR = [name -> NAME]; NAME = string; TITLE = string
"""

QUERIES = [
    "SELECT X WHERE Root = [paper.author.name -> X]",
    "SELECT X WHERE Root = [paper.title -> X]",
]


def post(state, path, payload):
    return state.handle("POST", path, json.dumps(payload).encode())


def register(state, text=OLD):
    status, envelope = post(state, "/schemas", {"schema": text})
    assert status == 200
    return envelope["result"]["fingerprint"]


class TestMigrateAccepted:
    def test_widening_swaps_the_entry_in_place(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        state = ServiceState(registry=SchemaRegistry(store=store))
        fingerprint = register(state)
        status, envelope = post(
            state,
            f"/schemas/{fingerprint}/migrate",
            {"schema": WIDE, "queries": QUERIES, "policy": "compatible"},
        )
        assert status == 200
        result = envelope["result"]
        assert result["accepted"] is True
        assert result["compatibility"] == "widening"
        assert result["version"] == 2
        counts = result["report"]["counts"]
        assert counts == {"survives": 2, "retypes": 0, "breaks": 0, "invalid": 0}

        new_fingerprint = result["new_fingerprint"]
        assert new_fingerprint != fingerprint
        # The old entry is gone; the new one is resident and warm.
        status, _ = state.handle("GET", f"/schemas/{new_fingerprint}/history", b"")
        assert status == 200
        status, envelope = post(
            state,
            "/satisfiable",
            {"fingerprint": fingerprint, "query": QUERIES[0]},
        )
        assert status == 404
        status, envelope = post(
            state,
            "/satisfiable",
            {"fingerprint": new_fingerprint, "query": QUERIES[0]},
        )
        assert status == 200 and envelope["result"]["satisfiable"] is True

        # The store swapped blobs: new persisted, old deleted.
        assert store.contains(new_fingerprint)
        assert not store.contains(fingerprint)

    def test_migrated_artifact_survives_restart(self, tmp_path):
        state = ServiceState(
            registry=SchemaRegistry(store=ArtifactStore(root=tmp_path))
        )
        fingerprint = register(state)
        _, envelope = post(
            state, f"/schemas/{fingerprint}/migrate", {"schema": WIDE}
        )
        new_fingerprint = envelope["result"]["new_fingerprint"]

        restarted = ServiceState(
            registry=SchemaRegistry(store=ArtifactStore(root=tmp_path))
        )
        status, envelope = post(
            restarted,
            "/satisfiable",
            {"fingerprint": new_fingerprint, "query": QUERIES[0]},
        )
        assert status == 200
        assert envelope["result"]["satisfiable"] is True

    def test_history_chain_after_two_migrations(self):
        state = ServiceState()
        fingerprint = register(state)
        _, envelope = post(
            state, f"/schemas/{fingerprint}/migrate", {"schema": WIDE}
        )
        second = envelope["result"]["new_fingerprint"]
        _, envelope = post(
            state, f"/schemas/{second}/migrate", {"schema": OLD, "policy": "any"}
        )
        third = envelope["result"]["new_fingerprint"]
        assert third == fingerprint  # migrated back to the original text

        status, envelope = state.handle("GET", f"/schemas/{third}/history", b"")
        assert status == 200
        result = envelope["result"]
        assert result["version"] == 3
        assert [item["fingerprint"] for item in result["history"]] == [
            fingerprint,
            second,
        ]
        assert [item["version"] for item in result["history"]] == [1, 2]


class TestMigrateRejected:
    def test_narrowing_rejected_with_structured_report(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        state = ServiceState(registry=SchemaRegistry(store=store))
        fingerprint = register(state)
        status, envelope = post(
            state,
            f"/schemas/{fingerprint}/migrate",
            {"schema": NARROW, "queries": QUERIES, "policy": "compatible"},
        )
        assert status == 200  # analysis succeeded; the answer is "no"
        result = envelope["result"]
        assert result["accepted"] is False
        assert result["compatibility"] == "narrowing"
        report = result["report"]
        broken = [q for q in report["queries"] if q["status"] == "breaks"]
        assert len(broken) == 1
        assert broken[0]["query"] == QUERIES[0]
        assert broken[0]["counterexample"] == ["title->TITLE", "author->AUTHOR"]

        # The registry entry is untouched and the candidate blob was
        # cleaned up (a restart must not resurrect a rejected schema).
        status, _ = post(
            state, "/satisfiable", {"fingerprint": fingerprint, "query": QUERIES[0]}
        )
        assert status == 200
        assert store.contains(fingerprint)
        assert len(list(store.fingerprints())) == 1

    def test_any_policy_applies_even_narrowing(self):
        state = ServiceState()
        fingerprint = register(state)
        _, envelope = post(
            state,
            f"/schemas/{fingerprint}/migrate",
            {"schema": NARROW, "queries": QUERIES, "policy": "any"},
        )
        assert envelope["result"]["accepted"] is True
        assert envelope["result"]["version"] == 2

    def test_unknown_fingerprint_404s(self):
        state = ServiceState()
        status, envelope = post(
            state, "/schemas/deadbeef/migrate", {"schema": WIDE}
        )
        assert status == 404
        assert envelope["error"]["code"] == "unknown-schema"

    def test_bad_policy_400s(self):
        state = ServiceState()
        fingerprint = register(state)
        status, envelope = post(
            state,
            f"/schemas/{fingerprint}/migrate",
            {"schema": WIDE, "policy": "yolo"},
        )
        assert status == 400


class TestUnregister:
    def test_delete_removes_entry_and_blob(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        state = ServiceState(registry=SchemaRegistry(store=store))
        fingerprint = register(state)
        assert store.contains(fingerprint)
        status, envelope = state.handle("DELETE", f"/schemas/{fingerprint}", b"")
        assert status == 200
        assert envelope["result"]["evicted"] == fingerprint
        assert not store.contains(fingerprint)
        status, _ = state.handle("DELETE", f"/schemas/{fingerprint}", b"")
        assert status == 404

    def test_stats_counters(self, tmp_path):
        state = ServiceState(
            registry=SchemaRegistry(store=ArtifactStore(root=tmp_path))
        )
        fingerprint = register(state)
        post(state, f"/schemas/{fingerprint}/migrate", {"schema": WIDE})
        _, envelope = post(
            state,
            f"/schemas/{register(state, NARROW)}/migrate",
            {"schema": OLD, "policy": "strict", "queries": QUERIES},
        )
        assert envelope["result"]["accepted"] is False

        status, envelope = state.handle("GET", "/stats", b"")
        assert status == 200
        registry_stats = envelope["result"]["registry"]
        assert registry_stats["migrations"] == 1
        assert registry_stats["migrations_rejected"] == 1
        delta = envelope["result"]["service"]["delta"]
        assert delta["migrations"] == 2
        assert delta["accepted"] == 1
        assert delta["rejected"] == 1
        assert delta["queries_analyzed"] == 2
        assert delta["unregisters"] == 0
        assert registry_stats["store"]["deletes"] >= 1
