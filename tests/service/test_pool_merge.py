"""Regression tests for pool ``/stats`` merging and shutdown clocks.

`_merge_numeric` used to sum *every* numeric leaf across workers, which
corrupted the non-additive fields: per-worker latency means summed (a
2-worker pool reported ~2x the true mean), maxima summed, and the
histogram bucket *bounds* list would be element-wise doubled.  The unit
tests here fail against that pre-fix implementation; the integration
test boots a real 2-worker pool and asserts the merged numbers are
internally coherent.

`terminate_all` used to budget worker joins on the wall clock; an NTP
step mid-shutdown then either hung the join or expired it instantly.
The clock test steps the wall clock violently and asserts the join
budget stays sane (it is measured on ``time.monotonic`` now).
"""

import pytest

from repro.service import PoolService, ServiceClient
from repro.service.metrics import LATENCY_BUCKETS_MS
from repro.service.pool import CompilerPool, _merge_numeric

SCHEMA = """
DOCUMENT = [(paper -> PAPER)*];
PAPER = [title -> TITLE . (author -> AUTHOR)*];
AUTHOR = [name -> NAME]; NAME = string; TITLE = string
"""
QUERY = "SELECT X WHERE Root = [paper -> X]"

_BOUNDS = list(LATENCY_BUCKETS_MS) + ["inf"]


def _endpoint_payload(requests, mean, maximum, bucket_index):
    counts = [0] * len(_BOUNDS)
    counts[bucket_index] = requests
    return {
        "requests": requests,
        "errors": 0,
        "by_status": {"200": requests},
        "latency_ms": {
            "buckets": list(_BOUNDS),
            "counts": counts,
            "total": round(mean * requests, 3),
            "mean": mean,
            "max": maximum,
            "percentiles": {"p50": mean, "p95": maximum, "p99": maximum},
        },
    }


class TestMergeNumericSemantics:
    def test_mean_is_request_weighted_not_summed(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(10, 2.0, 4.0, 1),
                _endpoint_payload(30, 4.0, 6.0, 1),
            ]
        )
        latency = merged["latency_ms"]
        # 10 * 2.0 + 30 * 4.0 over 40 requests = 3.5 — the pre-fix sum
        # would have reported 6.0.
        assert latency["mean"] == pytest.approx(3.5)
        assert merged["requests"] == 40

    def test_max_is_max_of_maxima(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(5, 1.0, 4.0, 1),
                _endpoint_payload(5, 1.0, 6.0, 1),
            ]
        )
        assert merged["latency_ms"]["max"] == 6.0  # pre-fix: 10.0

    def test_bucket_bounds_survive_verbatim(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(3, 2.0, 3.0, 1),
                _endpoint_payload(3, 2.0, 3.0, 1),
            ]
        )
        # Pre-fix the bounds list would element-wise double.
        assert merged["latency_ms"]["buckets"] == _BOUNDS

    def test_counts_merge_elementwise(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(4, 2.0, 3.0, 1),
                _endpoint_payload(6, 7.0, 9.0, 2),
            ]
        )
        counts = merged["latency_ms"]["counts"]
        assert counts[1] == 4 and counts[2] == 6
        assert sum(counts) == 10

    def test_percentiles_recomputed_from_merged_histogram(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(90, 0.5, 0.9, 0),
                _endpoint_payload(10, 30.0, 42.0, 4),
            ]
        )
        pcts = merged["latency_ms"]["percentiles"]
        assert pcts["p50"] <= 1.0
        assert pcts["p95"] > 25.0
        assert pcts["p50"] <= pcts["p95"] <= pcts["p99"] <= 42.0

    def test_config_bounds_take_max_not_sum(self):
        merged = _merge_numeric(
            [
                {"max_schemas": 64, "resident": 3},
                {"max_schemas": 64, "resident": 2},
            ]
        )
        assert merged["max_schemas"] == 64  # pre-fix: 128
        assert merged["resident"] == 5

    def test_mean_and_total_stay_consistent(self):
        merged = _merge_numeric(
            [
                _endpoint_payload(7, 2.5, 4.0, 1),
                _endpoint_payload(13, 3.5, 5.0, 1),
            ]
        )
        latency = merged["latency_ms"]
        observations = sum(latency["counts"])
        assert latency["mean"] == round(latency["total"] / observations, 3)


class TestPoolMergedStats:
    @pytest.fixture(scope="class")
    def service(self):
        with PoolService(workers=2) as svc:
            yield svc

    def test_merged_worker_service_is_coherent(self, service):
        with ServiceClient(service.host, service.port) as client:
            fingerprint = client.register_schema(SCHEMA)["fingerprint"]
            for _ in range(8):
                client.satisfiable(fingerprint, QUERY)
            stats = client.stats()
        worker_service = stats["worker_service"]
        endpoint = worker_service["endpoints"]["POST /satisfiable"]
        latency = endpoint["latency_ms"]
        assert endpoint["requests"] >= 8
        assert latency["mean"] <= latency["max"]
        assert latency["buckets"] == _BOUNDS
        assert sum(latency["counts"]) == endpoint["requests"]
        pcts = latency["percentiles"]
        assert pcts["p50"] <= pcts["p95"] <= pcts["p99"] <= latency["max"]
        # Config bounds survive the merge un-inflated: two workers with
        # the same limit must not report double.
        from repro.service import ServiceLimits

        assert stats["registry"]["max_schemas"] == 64
        assert stats["limits"]["max_slots"] == ServiceLimits().max_slots


class _FakeProcess:
    def __init__(self):
        self.join_timeouts = []

    def join(self, timeout=None):
        self.join_timeouts.append(timeout)

    def is_alive(self):
        return False

    def terminate(self):  # pragma: no cover — only on stuck workers
        raise AssertionError("terminate() reached with a dead process")


class _FakeHandle:
    def __init__(self, process):
        self.process = process
        self.conn = None


class TestMonotonicShutdown:
    def test_join_budget_survives_wall_clock_step(self, monkeypatch):
        # Step the wall clock forward an hour on every call: a wall-clock
        # deadline would make every join expire instantly (the pre-fix
        # failure); the monotonic budget must keep joins near `timeout`.
        import repro.service.pool as pool_module

        wall = {"now": 1_700_000_000.0}

        def jumping_time():
            wall["now"] += 3600.0
            return wall["now"]

        monkeypatch.setattr(pool_module.time, "time", jumping_time)

        pool = object.__new__(CompilerPool)
        processes = [_FakeProcess(), _FakeProcess()]
        pool._workers = [_FakeHandle(process) for process in processes]
        pool.terminate_all(timeout=5.0)

        for process in processes:
            assert len(process.join_timeouts) == 1
            assert 1.0 < process.join_timeouts[0] <= 5.0
