"""Unit tests for `repro.service.metrics`: percentiles and consistency.

Pins the stats-correctness fixes: the ``percentiles`` block, the mean
derived from the *rounded* total the snapshot publishes (so a scraper
recomputing ``total / requests`` agrees exactly), and the negative-
elapsed clamp with its ``clock_skew`` counter.
"""

import pytest

from repro.service.metrics import (
    LATENCY_BUCKETS_MS,
    ServiceMetrics,
    bucket_percentiles,
)


class TestBucketPercentiles:
    def test_empty_histogram_is_all_zero(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        assert bucket_percentiles(counts) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_bucket_interpolates_within_bounds(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        counts[1] = 100  # all observations in (1, 5] ms
        result = bucket_percentiles(counts, max_value=5.0)
        for value in result.values():
            assert 1.0 <= value <= 5.0
        assert result["p50"] < result["p95"] <= result["p99"]

    def test_estimates_never_exceed_observed_max(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        counts[2] = 10  # bucket (5, 10] but the true max was 6.2
        result = bucket_percentiles(counts, max_value=6.2)
        assert all(value <= 6.2 for value in result.values())

    def test_unbounded_tail_closed_at_max(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        counts[-1] = 4  # everything beyond the last bound
        result = bucket_percentiles(counts, max_value=9000.0)
        assert all(
            LATENCY_BUCKETS_MS[-1] <= value <= 9000.0
            for value in result.values()
        )

    def test_zero_max_pins_all_estimates_to_zero(self):
        # Every observation was 0 ms: interpolating inside [0, 1] must
        # not invent latency above the observed maximum of 0.
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        counts[0] = 7
        result = bucket_percentiles(counts, max_value=0.0)
        assert result == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_split_histogram_orders_percentiles(self):
        counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        counts[0] = 90   # fast path <= 1ms
        counts[4] = 10   # slow tail (25, 50]
        result = bucket_percentiles(counts, max_value=42.0)
        assert result["p50"] <= 1.0
        assert result["p95"] > 25.0
        assert result["p50"] <= result["p95"] <= result["p99"] <= 42.0


class TestSnapshotConsistency:
    def test_mean_recomputable_from_published_total(self):
        metrics = ServiceMetrics()
        # Durations chosen so the unrounded sum has excess precision.
        for elapsed in (0.0011117, 0.0032229, 0.0054443):
            metrics.observe("POST /satisfiable", 200, elapsed)
        snap = metrics.snapshot()["endpoints"]["POST /satisfiable"]
        latency = snap["latency_ms"]
        assert latency["mean"] == round(
            latency["total"] / snap["requests"], 3
        )

    def test_percentiles_block_present_and_bounded(self):
        metrics = ServiceMetrics()
        for elapsed in (0.001, 0.002, 0.020, 0.200):
            metrics.observe("POST /infer", 200, elapsed)
        latency = metrics.snapshot()["endpoints"]["POST /infer"]["latency_ms"]
        pcts = latency["percentiles"]
        assert set(pcts) == {"p50", "p95", "p99"}
        assert pcts["p50"] <= pcts["p95"] <= pcts["p99"] <= latency["max"]

    def test_bucket_bounds_published_verbatim(self):
        metrics = ServiceMetrics()
        metrics.observe("POST /check", 200, 0.003)
        latency = metrics.snapshot()["endpoints"]["POST /check"]["latency_ms"]
        assert latency["buckets"] == list(LATENCY_BUCKETS_MS) + ["inf"]
        assert sum(latency["counts"]) == 1


class TestClockSkewGuard:
    def test_negative_elapsed_clamped_and_counted(self):
        metrics = ServiceMetrics()
        metrics.observe("POST /evaluate", 200, -0.5)
        metrics.observe("POST /evaluate", 200, 0.002)
        snap = metrics.snapshot()
        assert snap["clock_skew"] == 1
        latency = snap["endpoints"]["POST /evaluate"]["latency_ms"]
        assert latency["total"] >= 0.0
        assert latency["mean"] >= 0.0
        # The clamped sample landed in the fastest bucket, not nowhere.
        assert sum(latency["counts"]) == 2

    def test_negative_batch_elapsed_clamped(self):
        metrics = ServiceMetrics()
        metrics.record_batch(10, 0, -1.0)
        snap = metrics.snapshot()
        assert snap["clock_skew"] == 1
        assert snap["batch"]["latency_ms"]["total"] == 0.0
        assert snap["batch"]["latency_ms"]["mean"] == 0.0

    def test_no_skew_counter_without_negative_samples(self):
        metrics = ServiceMetrics()
        metrics.observe("POST /check", 200, 0.001)
        metrics.record_batch(2, 0, 0.004)
        assert metrics.snapshot()["clock_skew"] == 0
