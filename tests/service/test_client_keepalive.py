"""Regression tests for ``ServiceClient`` connection reuse.

The client used to open a fresh ``HTTPConnection`` per call — a TCP
handshake on every request against a keep-alive server, which was a
third of the warm-path latency.  It must now

* reuse one connection across sequential calls on the same thread,
* survive a server that closes the idle connection (exactly one retry
  on a fresh socket), and
* still tear the connection down on real errors so the next call
  starts clean.
"""

import json
import socket
import threading

import pytest

from repro.service import ServiceClient, TypedQueryService


@pytest.fixture(scope="module")
def service():
    with TypedQueryService(port=0) as svc:
        yield svc


class TestConnectionReuse:
    def test_sequential_calls_share_one_socket(self, service):
        client = ServiceClient(service.host, service.port)
        try:
            client.healthz()
            first = client._connection().sock
            port_before = first.getsockname()[1]
            client.healthz()
            client.stats()
            second = client._connection().sock
            assert second is first
            assert second.getsockname()[1] == port_before
        finally:
            client.close()

    def test_error_envelopes_do_not_burn_the_connection(self, service):
        """4xx responses are normal keep-alive traffic, not transport
        failures — the socket must survive them."""
        client = ServiceClient(service.host, service.port)
        try:
            client.healthz()
            sock = client._connection().sock
            status, envelope = client.request(
                "POST", "/satisfiable", {"fingerprint": "missing", "query": "x"}
            )
            assert status == 404
            assert envelope["error"]["code"] == "unknown-schema"
            assert client._connection().sock is sock
        finally:
            client.close()

    def test_close_is_idempotent_and_reconnects(self, service):
        client = ServiceClient(service.host, service.port)
        client.healthz()
        client.close()
        client.close()  # second close must be a no-op
        assert client.healthz()["status"] == "ok"  # lazily reconnects
        client.close()

    def test_threads_get_independent_connections(self, service):
        client = ServiceClient(service.host, service.port)
        sockets = {}

        def probe(name):
            client.healthz()
            sockets[name] = client._connection().sock
            client.close()

        thread = threading.Thread(target=probe, args=("other",))
        client.healthz()
        sockets["main"] = client._connection().sock
        thread.start()
        thread.join(timeout=10)
        assert sockets["other"] is not sockets["main"]
        client.close()


class _OneShotServer:
    """Speaks one valid keep-alive HTTP response per connection, then
    slams the connection shut — so the client's *second* request on the
    cached socket always hits a stale connection.  Counts connections."""

    def __init__(self):
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        self.sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            self.connections += 1
            with conn:
                conn.settimeout(5)
                try:
                    conn.recv(65536)  # the request; content is irrelevant
                except OSError:
                    continue
                body = json.dumps(
                    {
                        "version": 1,
                        "ok": True,
                        "command": "GET /healthz",
                        "result": {"status": "ok"},
                        "error": None,
                        "meta": {},
                    }
                ).encode()
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                # No "Connection: close" header was sent, so the client
                # legitimately caches the socket — and we close it anyway.

    def stop(self):
        self._stop.set()
        self.thread.join(timeout=5)
        self.sock.close()


class TestStaleSocketRetry:
    def test_request_after_server_side_close_retries_once(self):
        server = _OneShotServer()
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=5)
            assert client.healthz()["status"] == "ok"
            # The server closed the connection after answering; this call
            # hits the stale socket and must transparently retry on a
            # fresh connection instead of surfacing the transport error.
            assert client.healthz()["status"] == "ok"
            assert client.healthz()["status"] == "ok"
            assert server.connections == 3
            client.close()
        finally:
            server.stop()

    def test_connection_refused_still_raises(self):
        """A dead server is not a stale socket: the error must surface
        (after at most the initial connect attempt), not loop forever."""
        probe = socket.create_server(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient("127.0.0.1", dead_port, timeout=1)
        with pytest.raises(OSError):
            client.healthz()
