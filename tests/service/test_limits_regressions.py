"""Regression tests for two service-layer bugs.

1. **The detached-counter leak race in ``DeadlineRunner.call``.**  If the
   worker thread finished in the window between ``done.wait(timeout)``
   returning False and the caller taking the runner lock, the old code
   still counted a timeout and incremented ``_detached`` — but the
   worker's ``finally`` had already run and seen ``abandoned`` unset, so
   nobody ever decremented it: the counter leaked forever and the caller
   raised a spurious ``DeadlineExceeded`` even though the answer was
   sitting in the result box.  The fix decides the handshake under one
   lock; these tests pin the window open deterministically by making
   ``done.wait`` join the worker before reporting a timeout.

2. **Boolean deadlines.**  ``isinstance(True, int)`` holds in Python, so
   ``{"deadline": true}`` used to clamp to a silent 1-second deadline
   instead of a 400.  Same hole for every optional integer field
   (``limit``), now closed centrally in ``positive_int_field``.
"""

import threading
import time

import pytest

import repro.service.limits as limits_mod
from repro.service.envelope import ServiceError, positive_int_field
from repro.service.limits import DeadlineExceeded, DeadlineRunner, ServiceLimits


class _WorkerFinishesDuringWait(threading.Event):
    """An Event whose timed wait lets the compute thread finish first.

    Joining every ``repro-compute`` thread before reporting a timeout
    reproduces, deterministically, the schedule where the worker
    completes in the gap between the caller's wait expiring and the
    caller taking the runner lock.
    """

    def wait(self, timeout=None):
        if timeout is None:
            return super().wait()
        for thread in threading.enumerate():
            if thread.name == "repro-compute":
                thread.join(timeout=10)
        return False


class TestDetachedCounterRace:
    def test_worker_finishing_at_the_deadline_is_not_a_timeout(self, monkeypatch):
        """The caller must take the computed result, not leak a detached
        count and raise a spurious DeadlineExceeded."""
        monkeypatch.setattr(limits_mod.threading, "Event", _WorkerFinishesDuringWait)
        runner = DeadlineRunner(ServiceLimits(max_slots=2))
        assert runner.call(lambda: "answer", deadline_s=0.01) == "answer"
        assert runner.stats() == {"timeouts": 0, "detached": 0, "max_slots": 2}

    def test_worker_erroring_at_the_deadline_propagates_the_error(self, monkeypatch):
        monkeypatch.setattr(limits_mod.threading, "Event", _WorkerFinishesDuringWait)
        runner = DeadlineRunner(ServiceLimits(max_slots=2))
        with pytest.raises(KeyError):
            runner.call(lambda: {}["missing"], deadline_s=0.01)
        assert runner.stats()["detached"] == 0
        assert runner.stats()["timeouts"] == 0

    def test_no_slot_leak_across_racy_calls(self, monkeypatch):
        """Every slot must be released whichever side of the race wins —
        a leak would eventually starve the runner into ServiceBusy."""
        monkeypatch.setattr(limits_mod.threading, "Event", _WorkerFinishesDuringWait)
        runner = DeadlineRunner(ServiceLimits(max_slots=1, slot_wait_s=0.2))
        for i in range(5):
            assert runner.call(lambda i=i: i, deadline_s=0.01) == i
        assert runner.stats()["detached"] == 0

    def test_genuine_timeout_detaches_then_reconciles(self):
        """A real overrun: timeout + detach while the worker runs, and
        the worker pays the decrement when it finishes (no leak)."""
        release = threading.Event()
        runner = DeadlineRunner(ServiceLimits(max_slots=2))
        with pytest.raises(DeadlineExceeded):
            runner.call(lambda: release.wait(10), deadline_s=0.05)
        assert runner.stats()["timeouts"] == 1
        assert runner.stats()["detached"] == 1
        release.set()
        deadline = time.monotonic() + 5
        while runner.stats()["detached"] and time.monotonic() < deadline:
            time.sleep(0.01)
        assert runner.stats()["detached"] == 0
        assert runner.stats()["timeouts"] == 1


class TestBooleanNumericFields:
    def test_boolean_deadline_is_rejected(self):
        limits = ServiceLimits()
        with pytest.raises(ServiceError) as excinfo:
            limits.clamp_deadline(True)
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ServiceError):
            limits.clamp_deadline(False)

    def test_numeric_deadlines_still_clamp(self):
        limits = ServiceLimits(default_deadline_s=30.0, max_deadline_s=120.0)
        assert limits.clamp_deadline(None) == 30.0
        assert limits.clamp_deadline(1) == 1.0
        assert limits.clamp_deadline(2.5) == 2.5
        assert limits.clamp_deadline(500) == 120.0
        with pytest.raises(ServiceError):
            limits.clamp_deadline(0)
        with pytest.raises(ServiceError):
            limits.clamp_deadline("10")

    def test_boolean_limit_field_is_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            positive_int_field({"limit": True}, "limit")
        assert excinfo.value.code == "bad-request"
        with pytest.raises(ServiceError):
            positive_int_field({"limit": False}, "limit")

    def test_limit_field_accepts_positive_ints_only(self):
        assert positive_int_field({}, "limit") is None
        assert positive_int_field({"limit": None}, "limit") is None
        assert positive_int_field({"limit": 3}, "limit") == 3
        for bad in (0, -1, 2.5, "3"):
            with pytest.raises(ServiceError):
                positive_int_field({"limit": bad}, "limit")
